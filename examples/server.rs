//! A database "server" session demo on the **on-disk backend**: concurrent
//! clients over the WAL-backed, partitioned engine, a checkpoint that
//! flushes the enciphered pages and truncates the log, a crash in the
//! middle of a post-checkpoint workload, and a reopen *from the same
//! directory* that recovers by replaying only the WAL tail.
//!
//! ```text
//! cargo run --release --example server
//! ```

use sks_bench::workload::{prefill_engine, run_engine_workload, EngineWorkload};
use sks_btree::core::{Scheme, SchemeConfig, StorageBackend};
use sks_btree::engine::{EngineConfig, RecoveryPath, SksDb};
use sks_btree::storage::SyncPolicy;

const KEY_SPACE: u64 = 4_096;

fn main() {
    let dir = std::env::temp_dir().join(format!("sks_server_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let scheme = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 64)
        .partitions(8)
        .backend(StorageBackend::File {
            dir: dir.clone(), // re-rooted per partition by the engine
            pool_pages: 128,
        });
    let config = EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32));

    println!("== sks-engine server demo (file backend) ==");
    println!(
        "scheme=oval partitions=8 capacity={KEY_SPACE} sync=group-commit(32) pool=128 pages\ndir={}",
        dir.display()
    );

    // ---- phase 1: serve a mixed workload from concurrent sessions ------
    let db = SksDb::open(&dir, config.clone()).expect("open engine");
    prefill_engine(&db, KEY_SPACE / 2);
    println!("\nphase 1: preloaded {} records", db.len());

    for &(threads, read_pct) in &[(1usize, 90u8), (4, 90), (8, 90), (4, 50)] {
        let stats = run_engine_workload(
            &db,
            &EngineWorkload {
                threads,
                ops_per_thread: 4_000 / threads,
                read_pct,
                key_space: KEY_SPACE,
                seed: 0xFEED ^ threads as u64,
            },
        );
        println!(
            "  {threads} session(s), {read_pct:>3}% reads: {:>8.0} ops/s  ({} reads, {} writes, {:?})",
            stats.ops_per_sec(),
            stats.reads,
            stats.writes,
            stats.elapsed,
        );
    }
    let snap = db.snapshot();
    println!(
        "  partition fill: {:?}\n  wal: {} appends, {} fsyncs (group commit), {} bytes",
        db.partition_lens(),
        snap.wal_appends,
        snap.wal_fsyncs,
        snap.wal_bytes,
    );

    // ---- phase 2: checkpoint = flush enciphered pages + truncate WAL ----
    let before = db.wal_len_bytes();
    db.checkpoint().expect("checkpoint");
    println!(
        "\nphase 2: checkpoint flushed dirty pages to disk, wal {before} -> {} bytes",
        db.wal_len_bytes()
    );

    // A short post-checkpoint workload, then "crash" mid-flight (drop
    // without any shutdown protocol: the dirty page cache dies with the
    // process, only the WAL tail survives).
    let session = db.session();
    for k in 0..64u64 {
        session
            .insert(k, format!("post-checkpoint-{k}").into_bytes())
            .expect("insert");
    }
    let len_at_crash = db.len();
    drop(session);
    drop(db);
    println!("phase 3: process \"crashed\" holding {len_at_crash} records");

    // ---- phase 3: recovery from the same directory ----------------------
    let db = SksDb::open(&dir, config).expect("reopen after crash");
    let report = db.recovery_report();
    println!(
        "  recovery path: {:?} — {} records replayed (only the post-checkpoint tail), \
         torn_tail={}, {} bytes discarded",
        report.path, report.records_replayed, report.torn_tail, report.bytes_discarded
    );
    assert_eq!(report.path, RecoveryPath::TailReplay);
    assert_eq!(
        report.records_replayed, 64,
        "only the 64 tail writes are replayed, not the {len_at_crash}-record dataset"
    );
    assert_eq!(db.len(), len_at_crash, "recovery restored every record");
    let check = db.session();
    assert_eq!(
        check.get(10).expect("get").expect("present"),
        b"post-checkpoint-10"
    );
    db.validate()
        .expect("recovered trees are structurally sound");
    println!(
        "  verified: all {} records readable after an O(tail) restart ✓",
        db.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
