//! A database "server" session demo: concurrent clients over the
//! WAL-backed, partitioned engine, followed by a simulated crash and
//! recovery — the full life of the system the paper's scheme is meant to
//! slot into.
//!
//! ```text
//! cargo run --release --example server
//! ```

use sks_bench::workload::{prefill_engine, run_engine_workload, EngineWorkload};
use sks_btree::core::{Scheme, SchemeConfig};
use sks_btree::engine::{EngineConfig, SksDb};
use sks_btree::storage::SyncPolicy;

const KEY_SPACE: u64 = 4_096;

fn main() {
    let dir = std::env::temp_dir().join(format!("sks_server_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let scheme = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 64).partitions(8);
    let config = EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32));

    println!("== sks-engine server demo ==");
    println!(
        "scheme=oval partitions=8 capacity={KEY_SPACE} sync=group-commit(32)\ndir={}",
        dir.display()
    );

    // ---- phase 1: serve a mixed workload from concurrent sessions ------
    let db = SksDb::open(&dir, config.clone()).expect("open engine");
    prefill_engine(&db, KEY_SPACE / 2);
    println!("\nphase 1: preloaded {} records", db.len());

    for &(threads, read_pct) in &[(1usize, 90u8), (4, 90), (8, 90), (4, 50)] {
        let stats = run_engine_workload(
            &db,
            &EngineWorkload {
                threads,
                ops_per_thread: 4_000 / threads,
                read_pct,
                key_space: KEY_SPACE,
                seed: 0xFEED ^ threads as u64,
            },
        );
        println!(
            "  {threads} session(s), {read_pct:>3}% reads: {:>8.0} ops/s  ({} reads, {} writes, {:?})",
            stats.ops_per_sec(),
            stats.reads,
            stats.writes,
            stats.elapsed,
        );
    }
    let snap = db.snapshot();
    println!(
        "  partition fill: {:?}\n  wal: {} appends, {} fsyncs (group commit), {} bytes",
        db.partition_lens(),
        snap.wal_appends,
        snap.wal_fsyncs,
        snap.wal_bytes,
    );

    // ---- phase 2: checkpoint compaction ---------------------------------
    let before = db.wal_len_bytes();
    let live = db.checkpoint().expect("checkpoint");
    println!(
        "\nphase 2: checkpoint rewrote {live} live records, wal {before} -> {} bytes",
        db.wal_len_bytes()
    );

    // A few more writes after the checkpoint, then "crash" (drop without
    // any shutdown protocol).
    let session = db.session();
    for k in 0..64u64 {
        session
            .insert(k, format!("post-checkpoint-{k}").into_bytes())
            .expect("insert");
    }
    let len_at_crash = db.len();
    drop(session);
    drop(db);
    println!("phase 3: process \"crashed\" holding {len_at_crash} records");

    // ---- phase 3: recovery ----------------------------------------------
    let db = SksDb::open(&dir, config).expect("reopen after crash");
    let report = db.recovery_report();
    println!(
        "  recovery: {} records replayed, torn_tail={}, {} bytes discarded",
        report.records_replayed, report.torn_tail, report.bytes_discarded
    );
    assert_eq!(db.len(), len_at_crash, "recovery restored every record");
    let check = db.session();
    assert_eq!(
        check.get(10).expect("get").expect("present"),
        b"post-checkpoint-10"
    );
    db.validate()
        .expect("recovered trees are structurally sound");
    println!(
        "  verified: all {} records readable after recovery ✓",
        db.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
