//! Regenerates the worked examples of the paper in one shot: the
//! `(13,4,1)` lines→ovals table (§4.1), the exponentiation grid (§4.2),
//! the cumulative-sum column (§4.3), and the three figure B-trees —
//! straight from the public API (the `repro` binary in `sks-bench` does
//! the same plus the quantitative experiments).
//!
//! ```sh
//! cargo run --example paper_figures
//! ```

use sks_btree::core::disguise::{KeyDisguise, PaperExpSubstitution};
use sks_btree::core::{EncipheredBTree, OvalSubstitution, Scheme, SchemeConfig};
use sks_btree::designs::DifferenceSet;
use sks_btree::storage::OpCounters;

fn main() {
    let ds = DifferenceSet::paper_13_4_1();

    println!("== §4.1 table: lines vs ovals, (13,4,1), t = 7 ==\n");
    for y in 0..13 {
        let line = ds.line_in_base_order(y);
        let oval = ds.oval_in_base_order(y, 7);
        println!("  L{y:<2} {line:>2?}   ->   O{y:<2} {oval:>2?}");
    }

    println!("\n== §4.1 substitution (key -> 7·key mod 13) ==\n");
    let oval = OvalSubstitution::paper_example(OpCounters::new());
    let pairs: Vec<String> = (0..13)
        .map(|k| format!("{k}→{}", oval.disguise(k).unwrap()))
        .collect();
    println!("  {}", pairs.join("  "));

    println!("\n== §4.2 exponent grid (g = 7, N = 13) ==\n");
    let exp = PaperExpSubstitution::paper_example(OpCounters::new());
    let lines = exp.line_exponent_grid();
    let ovals = exp.oval_exponent_grid();
    for y in 0..13 {
        let l: Vec<String> = lines[y].iter().map(|e| format!("7^{e}")).collect();
        let o: Vec<String> = ovals[y].iter().map(|e| format!("7^{e}")).collect();
        println!("  {:<24} | {}", l.join(" "), o.join(" "));
    }

    println!("\n== §4.3 cumulative sums ==\n");
    for x in 0..13u64 {
        println!("  key {x:>2}  ->  k̂ = {}", ds.cumulative_sum(0, x));
    }

    println!("\n== Figures 1–3: the demonstration B-tree under each scheme ==");
    for (name, scheme) in [
        ("Figure 1 (oval)", Scheme::Oval),
        (
            "Figure 2 (exponentiation, literal)",
            Scheme::ExponentiationPaper,
        ),
        ("Figure 3 (sum of treatments)", Scheme::SumOfTreatments),
    ] {
        let cfg = SchemeConfig::demo(scheme);
        let mut tree = EncipheredBTree::create_in_memory(cfg).expect("demo");
        let keys: &[u64] = match scheme {
            Scheme::ExponentiationPaper => &[3, 4, 5, 6, 8, 9, 11],
            _ => &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        };
        for &k in keys {
            tree.insert(k, format!("rec{k}").into_bytes())
                .expect("insert");
        }
        println!("\n-- {name} --");
        println!("logical:\n{}", tree.render_logical().expect("render"));
        println!("on disk:\n{}", tree.render_disk_view().expect("render"));
    }
}
