//! Quickstart: create an enciphered B-tree with the paper's oval
//! substitution, store records, look them up, scan a range, and inspect
//! what actually hit the disk.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig};

fn main() {
    // Size the combinatorial design for up to 10k keys (v >> R, §4).
    let config = SchemeConfig::with_capacity(Scheme::Oval, 10_000);
    let mut tree = EncipheredBTree::create_in_memory(config).expect("build stack");

    println!(
        "scheme: {}  (block size {} bytes, fanout {})\n",
        tree.scheme().name(),
        tree.block_size(),
        tree.max_keys_per_node()
    );

    // Insert a few thousand records.
    for key in 0..5_000u64 {
        let record = format!("customer #{key} — balance ${}", key * 7 % 9973);
        tree.insert(key, record.into_bytes()).expect("insert");
    }
    println!(
        "inserted {} records, tree height {}",
        tree.len(),
        tree.height()
    );

    // Point lookups.
    let hit = tree.get(4242).expect("lookup").expect("present");
    println!("get(4242) -> {:?}", String::from_utf8_lossy(&hit));
    assert!(tree.get(9_999).expect("lookup").is_none());

    // Range scan — possible because triplet positions never depend on the
    // disguised values (§4.1).
    let window = tree.range(100, 110).expect("range");
    println!("range(100..=110) -> {} records", window.len());
    for (k, rec) in &window {
        println!("  {k}: {}", String::from_utf8_lossy(rec));
    }

    // Deletions rebalance without ever re-encrypting a search key.
    tree.counters().reset();
    for key in (0..1000).step_by(3) {
        tree.delete(key).expect("delete");
    }
    let stats = tree.snapshot();
    println!(
        "\nafter churn: merges={} borrows={} key-encrypts={} (keys are disguised, never encrypted)",
        stats.merges, stats.borrows, stats.key_encrypts
    );
    assert_eq!(stats.key_encrypts, 0);
    tree.validate().expect("structurally sound");

    // What the opponent sees: the first node block of the raw image.
    let image = tree.raw_node_image().expect("raw image");
    let first = image.iter().find(|b| b.iter().any(|&x| x != 0)).unwrap();
    println!("\nfirst non-empty raw node block (opponent's view, truncated):");
    for chunk in first.chunks(16).take(4) {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        println!("  {}", hex.join(" "));
    }
    println!("\nper-op ledger: {:#?}", tree.snapshot());
}
