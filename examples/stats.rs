//! Observability tour: run a small workload against the engine with full
//! tracing on, then read back everything the flight recorder and the
//! latency histograms captured — per-op p50/p99, the stage-attributed
//! write-path breakdown, cache hit ratios, and the recent-event timeline.
//!
//! Telemetry never carries key or value plaintext: events hold op kinds,
//! partition ids, byte counts and durations only.
//!
//! ```sh
//! cargo run --release --example stats
//! ```

use sks_btree::core::{ObsLevel, Scheme, SchemeConfig};
use sks_btree::engine::{EngineConfig, SksDb, Stage, WRITE_PATH_STAGES};

fn main() {
    let dir = std::env::temp_dir().join(format!("sks_stats_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // The one knob: Off / Counters (default) / Histograms / FullTrace.
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, 65_536)
        .partitions(2)
        .observability(ObsLevel::FullTrace);
    let db = SksDb::open(&dir, EngineConfig::new(scheme)).expect("open");

    // A mixed workload: inserts, a batch, hot gets, a range, deletes,
    // then maintenance.
    for k in 0..2_000u64 {
        db.insert(k, vec![k as u8; 64]).expect("insert");
    }
    db.insert_batch((2_000..2_500).map(|k| (k, vec![1u8; 64])).collect())
        .expect("batch");
    for i in 0..10_000u64 {
        db.get(i * 37 % 2_500).expect("get");
    }
    db.range(100, 400).expect("range");
    for k in (0..2_000u64).step_by(3) {
        db.delete(k).expect("delete");
    }
    db.compact(16).expect("compact");
    db.checkpoint().expect("checkpoint");

    // The whole surface in one snapshot.
    let stats = db.stats();

    println!("== per-op latency ==");
    for (name, hist) in &stats.ops {
        if hist.count == 0 {
            continue;
        }
        println!(
            "{name:>6}: n={:<6} p50={:>8} ns  p90={:>8} ns  p99={:>8} ns  max={:>9} ns",
            hist.count,
            hist.p50(),
            hist.p90(),
            hist.p99(),
            hist.max
        );
    }

    println!("\n== write-path breakdown (each nanosecond counted once) ==");
    let total = stats.write_path_ns().max(1);
    for stage in WRITE_PATH_STAGES {
        let ns = stats.stage_ns(stage);
        println!(
            "{:>12}: {:>12} ns  ({:>5.1}%)",
            stage.name(),
            ns,
            ns as f64 * 100.0 / total as f64
        );
    }
    println!("{:>12}: {total:>12} ns", "total");
    println!(
        "checkpoint flush: {} ns, wal cut: {} ns",
        stats.stage_ns(Stage::CheckpointFlush),
        stats.stage_ns(Stage::CheckpointCut)
    );

    println!("\n== caches ==");
    for (label, ratio) in [
        ("buffer pool", stats.pool_hit_ratio()),
        ("node cache", stats.node_cache_hit_ratio()),
        ("record cache", stats.record_cache_hit_ratio()),
    ] {
        match ratio {
            Some(r) => println!("{label:>12}: {:.1}% hits", r * 100.0),
            None => println!("{label:>12}: unused"),
        }
    }

    println!("\n== flight recorder (most recent events) ==");
    for event in db.recent_events().iter().rev().take(12).rev() {
        println!("  {}", event.render());
    }

    println!("\n== machine-readable ==");
    println!("{}", stats.to_json());

    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
