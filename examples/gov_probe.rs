//! SIGKILL probe for space governance: `write` churns forever with
//! dead-ratio compaction + node shrinking + global budgets on; `check`
//! reopens the killed directory, validates, and reports device usage.
use sks_btree::core::{Scheme, SchemeConfig, StorageBackend};
use sks_btree::engine::{EngineConfig, SksDb};
use sks_btree::storage::SyncPolicy;

fn config(dir: &std::path::Path) -> EngineConfig {
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, 16_384)
        .partitions(4)
        .backend(StorageBackend::File {
            dir: dir.to_path_buf(),
            pool_pages: 128,
        })
        .compaction(32)
        .global_dirty_budget(24)
        .global_record_cache(256);
    EngineConfig::new(scheme).sync(SyncPolicy::Always)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().expect("mode: write|check");
    let dir = std::path::PathBuf::from(args.next().expect("dir"));
    match mode.as_str() {
        "write" => {
            let db = SksDb::open(&dir, config(&dir)).unwrap();
            let s = db.session();
            println!("READY");
            let mut i = 0u64;
            loop {
                let k = i % 8_000;
                s.insert(k, vec![(k % 251) as u8; 900]).unwrap();
                if i.is_multiple_of(3) {
                    s.delete((i / 3) % 8_000).ok();
                }
                if i % 2_000 == 1_999 {
                    db.checkpoint().unwrap();
                    println!("CKPT {i} report {:?}", db.last_compaction_report());
                }
                i += 1;
            }
        }
        "check" => {
            let db = SksDb::open(&dir, config(&dir)).unwrap();
            println!("recovery: {:?}", db.recovery_report());
            db.validate().unwrap();
            let n = db.len();
            let usage = db.data_block_usage_per_partition();
            println!("records: {n}, data usage: {usage:?}");
            // Governance still runs post-recovery.
            let r = db.compact(1_000).unwrap();
            db.checkpoint().unwrap();
            println!("post-recovery compact: {r:?}");
            db.validate().unwrap();
            println!("OK");
        }
        other => panic!("unknown mode {other}"),
    }
}
