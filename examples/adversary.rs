//! The opponent of §4.1/§6: steal the disk, try to rebuild the B-tree.
//!
//! Builds the same database under four schemes, hands the raw node-block
//! image to the attack tooling, and prints how much of the true tree shape
//! each scheme leaks.
//!
//! ```sh
//! cargo run --release --example adversary
//! ```

use sks_btree::attack::{AttackReport, DiskImage, Edge, FormatKnowledge, GroundTruth};
use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig};

fn build(scheme: Scheme, n: u64) -> EncipheredBTree {
    let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
    cfg.block_size = 512;
    let mut tree = EncipheredBTree::create_in_memory(cfg).expect("stack");
    let start = match scheme {
        Scheme::Exponentiation | Scheme::ExponentiationPaper => 1,
        _ => 0,
    };
    for k in start..start + n {
        tree.insert(k, format!("patient-{k};diagnosis=redacted").into_bytes())
            .expect("insert");
    }
    tree
}

fn truth_of(tree: &EncipheredBTree) -> GroundTruth {
    let mut edges = Vec::new();
    let mut keys = Vec::new();
    let mut stack = vec![tree.tree().root_id()];
    while let Some(id) = stack.pop() {
        let node = tree.tree().inspect_node(id).expect("inspect");
        keys.extend_from_slice(&node.keys);
        for &c in &node.children {
            edges.push(Edge {
                parent: id.as_u32(),
                child: c.as_u32(),
            });
            stack.push(c);
        }
    }
    let key_pairs = match tree.disguise() {
        Some(d) => keys
            .iter()
            .filter_map(|&k| d.disguise(k).ok().map(|dk| (k, dk)))
            .collect(),
        None => vec![],
    };
    GroundTruth { edges, key_pairs }
}

fn main() {
    let n = 300u64;
    println!("adversary: stolen disk image, {n} records per scheme\n");
    println!("{}", AttackReport::header());
    for scheme in [
        Scheme::Plaintext,
        Scheme::SumOfTreatments,
        Scheme::Oval,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
    ] {
        let tree = build(scheme, n);
        let truth = truth_of(&tree);
        let image = DiskImage::new(tree.block_size(), tree.raw_node_image().expect("raw image"));
        let report = AttackReport::run(scheme.name(), &image, &FormatKnowledge::default(), &truth);
        println!("{}", report.row());
    }
    println!(
        "\nreading the table: 'recall' is the fraction of true parent→child edges the\n\
         attacker recovered. Plaintext and the (deliberately) order-preserving sum\n\
         scheme give the shape away; the oval substitution and both Bayer–Metzger\n\
         baselines do not. |tau| is rank correlation between real and visible keys —\n\
         the §4.3 trade-off in one number."
    );
}
