//! Transactions: move value between two accounts that live in
//! *different* partitions, atomically — then crash mid-flight and show
//! that recovery never exposes a half-applied transfer.
//!
//! ```sh
//! cargo run --example txn
//! ```

use sks_btree::core::{Scheme, SchemeConfig};
use sks_btree::engine::{EngineConfig, EngineError, SksDb};
use sks_btree::storage::SyncPolicy;

fn balance(v: &[u8]) -> u64 {
    u64::from_be_bytes(v.try_into().expect("8-byte balance"))
}

fn enc(n: u64) -> Vec<u8> {
    n.to_be_bytes().to_vec()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("sks_txn_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let make_config = || {
        EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, 4096).partitions(4))
            .sync(SyncPolicy::Always)
    };

    let db = SksDb::open(&dir, make_config()).expect("open");

    // Two accounts routed to different partitions (the router hashes the
    // *disguised* key, so we probe for a cross-partition pair).
    let alice = 1u64;
    let mut bob = 2u64;
    while db.partition_of(bob).unwrap() == db.partition_of(alice).unwrap() {
        bob += 1;
    }
    println!(
        "alice = key {alice} (partition {}), bob = key {bob} (partition {})",
        db.partition_of(alice).unwrap(),
        db.partition_of(bob).unwrap()
    );
    db.insert(alice, enc(1_000)).expect("fund alice");
    db.insert(bob, enc(1_000)).expect("fund bob");

    // A snapshot begun *before* the transfer keeps seeing the old world,
    // even while the transfer commits underneath it.
    let before = db.begin();

    // The transfer: both writes buffer in the Txn and hit the log as ONE
    // commit frame; first-committer-wins conflicts ask us to retry.
    let mut moved = false;
    while !moved {
        let mut txn = db.begin();
        let a = balance(&txn.get(alice).expect("read").expect("alice exists"));
        let b = balance(&txn.get(bob).expect("read").expect("bob exists"));
        txn.insert(alice, enc(a - 250)).expect("debit");
        txn.insert(bob, enc(b + 250)).expect("credit");
        match txn.commit() {
            Ok(()) => moved = true,
            Err(EngineError::Conflict { key, .. }) => {
                println!("conflict on key {key}, retrying");
            }
            Err(e) => panic!("commit failed: {e}"),
        }
    }
    println!(
        "after commit: alice={} bob={}",
        balance(&db.get(alice).unwrap().unwrap()),
        balance(&db.get(bob).unwrap().unwrap()),
    );
    println!(
        "the pre-transfer snapshot still reads: alice={} bob={}",
        balance(&before.get(alice).unwrap().unwrap()),
        balance(&before.get(bob).unwrap().unwrap()),
    );
    drop(before);

    let snap = db.snapshot();
    println!(
        "txn commits={} aborts={} conflicts={} wal txn frames={}",
        snap.txn_commits, snap.txn_aborts, snap.txn_conflicts, snap.wal_txn_frames
    );

    // "Crash": drop the engine with a second transfer buffered but never
    // committed. Buffered writes live only in the Txn — they touch
    // neither the trees nor the log until commit.
    {
        let mut doomed = db.begin();
        doomed.insert(alice, enc(0)).expect("debit");
        doomed.insert(bob, enc(9_999)).expect("credit");
        // ... power fails here: `doomed` is dropped un-committed.
    }
    drop(db);

    // Recovery replays the log; the committed transfer is intact and the
    // uncommitted one left no trace — the books still balance.
    let db = SksDb::open(&dir, make_config()).expect("recover");
    let a = balance(&db.get(alice).unwrap().unwrap());
    let b = balance(&db.get(bob).unwrap().unwrap());
    println!("after crash + recovery: alice={a} bob={b} (sum {})", a + b);
    assert_eq!((a, b), (750, 1_250));
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
