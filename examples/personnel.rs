//! The §4.3 deployment story: a *security filter* retrofitted in front of a
//! commercial off-the-shelf DBMS that offers no low-level access.
//!
//! A personnel database stores salary records. The DBMS below the filter is
//! a perfectly ordinary plaintext B-tree — it never sees a real employee id
//! or a plaintext salary — yet range queries still work because the
//! sum-of-treatments substitution preserves key order.
//!
//! ```sh
//! cargo run --example personnel
//! ```

use sks_btree::core::{FilterSecrets, KeyDisguise, SecurityFilter, SumSubstitution};
use sks_btree::designs::DifferenceSet;
use sks_btree::storage::OpCounters;

fn main() {
    // Secret material (the paper: small enough for a smartcard).
    let design = DifferenceSet::singer(31).expect("Singer design, v = 993");
    let substitution =
        SumSubstitution::new(design, 12, 900, OpCounters::new()).expect("w + R < v - 1");
    println!(
        "filter secret: (v,k,λ) = ({},{},1) design + starting line w=12 — {} bytes total",
        substitution.design().v(),
        substitution.design().k(),
        substitution.secret_size_bytes()
    );

    let mut filter = SecurityFilter::new(
        FilterSecrets {
            substitution,
            record_key: 0x0F1E_2D3C_4B5A_6978_8796_A5B4_C3D2_E1F0,
            checksum_key: 0x1357_9BDF_0246_8ACE,
        },
        1024,
    )
    .expect("filter");

    // HR inserts employee records through the filter.
    for emp in 0..400u64 {
        let record = format!(
            "name=Employee{emp:03};grade={};salary={}",
            emp % 9,
            42_000 + (emp * 577) % 30_000
        );
        filter.insert(emp, record.as_bytes()).expect("insert");
    }
    println!(
        "loaded {} personnel records through the filter\n",
        filter.len()
    );

    // Exact retrieval with checksum verification.
    let rec = filter.get(123).expect("verified get").expect("present");
    println!("get(123) -> {}", String::from_utf8_lossy(&rec));

    // Range query over employee ids 100..=109 — runs on the *unmodified*
    // DBMS because disguised keys preserve order.
    println!("\nrange(100..=109):");
    for (emp, rec) in filter.range(100, 109).expect("range") {
        println!("  {emp}: {}", String::from_utf8_lossy(&rec));
    }

    // What the DBMS administrator (or an attacker who owns the DBMS) sees.
    let visible = filter.dbms_visible_keys().expect("scan");
    println!(
        "\nDBMS-visible index keys (first 8 of {}): {:?}",
        visible.len(),
        &visible[..8]
    );
    assert!(
        visible.iter().all(|&k| k > 400),
        "no real employee id leaks"
    );

    // Tampering with a stored record is caught by the Denning-style
    // cryptographic checksum.
    filter.tamper_with(77).expect("simulate hostile DBA");
    match filter.get(77) {
        Err(e) => println!("\ntamper detection: {e}"),
        Ok(_) => unreachable!("tampering must be detected"),
    }
}
