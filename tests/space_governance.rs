//! Space & memory governance, proven by a fault-injection test layer:
//!
//! * crash probes — [`FailStore`] kills the stack mid reverse-index
//!   update, mid node-relocation and mid deadest-first compaction pass
//!   (plus a seeded kill-point sweep); every reopen recovers to a
//!   consistent image;
//! * the persistent reverse index ≡ the map a full tree scan rebuilds,
//!   under arbitrary insert/delete/compact/reopen churn, on both
//!   backends (`SKS_TEST_BACKEND` matrix);
//! * the compaction report counts victims freed through the tombstone
//!   fast path (the PR 4 under-count regression);
//! * sustained churn + shrink-to-10% keeps `nodes.sks` + `data.sks`
//!   within 2× a fresh build of the live set, with zero reverse-map
//!   full-scan rebuilds on the hot path;
//! * every logical counter reads identically with governance on vs off,
//!   for every measured scheme.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig};
use sks_btree::storage::{FailMode, FailPlan, FailStore, OpCounters, PagedFileStore};

const BLOCK: usize = 512;
static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sks_space_gov_{}_{}_{}",
        std::process::id(),
        name,
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(capacity: u64) -> SchemeConfig {
    let mut cfg = SchemeConfig::with_capacity(Scheme::Oval, capacity);
    cfg.block_size = BLOCK;
    cfg
}

fn rec(k: u64) -> Vec<u8> {
    format!("space-governance-record-{k:06}-{}", "x".repeat(64)).into_bytes()
}

/// The reverse index a full tree scan would rebuild, in snapshot shape.
fn scan_index(tree: &EncipheredBTree) -> Vec<(u32, u16, u64)> {
    let mut rows: Vec<(u32, u16, u64)> = tree
        .tree()
        .iter_range(0, u64::MAX)
        .map(|item| {
            let (k, ptr) = item.unwrap();
            (ptr.block().as_u32(), ptr.slot(), k)
        })
        .collect();
    rows.sort_unstable();
    rows
}

// ---------------------------------------------------------------------
// Fault-injection crash probes
// ---------------------------------------------------------------------

/// A file-backed stack whose node and data devices are wrapped in
/// [`FailStore`]s, built over journaled paged stores so a "kill" (fault +
/// drop without flush) recovers to the last checkpoint.
struct ProbeRig {
    dir: std::path::PathBuf,
    node_plan: FailPlan,
    data_plan: FailPlan,
}

impl ProbeRig {
    fn create(name: &str) -> (Self, EncipheredBTree) {
        let dir = tmpdir(name);
        std::fs::create_dir_all(&dir).unwrap();
        let counters = OpCounters::new();
        let nodes =
            PagedFileStore::create(dir.join("nodes.sks"), BLOCK, 128, counters.clone()).unwrap();
        let data =
            PagedFileStore::create(dir.join("data.sks"), BLOCK, 128, counters.clone()).unwrap();
        let (nodes, node_plan) = FailStore::new(nodes);
        let (data, data_plan) = FailStore::new(data);
        let tree = EncipheredBTree::create_on_stores(
            config(4_096),
            counters,
            Box::new(nodes),
            Box::new(data),
        )
        .unwrap();
        (
            ProbeRig {
                dir,
                node_plan,
                data_plan,
            },
            tree,
        )
    }

    /// "Reboot": reopen the same files through the normal recovery path
    /// (journal replay inside `PagedFileStore::open`).
    fn reopen(&self) -> EncipheredBTree {
        let counters = OpCounters::new();
        let nodes =
            PagedFileStore::open(self.dir.join("nodes.sks"), 128, counters.clone()).unwrap();
        let data = PagedFileStore::open(self.dir.join("data.sks"), 128, counters.clone()).unwrap();
        EncipheredBTree::open_on_stores(config(4_096), counters, Box::new(nodes), Box::new(data))
            .unwrap()
    }

    fn cleanup(&self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Checks a reopened probe tree against the model of committed state.
fn assert_consistent(tree: &mut EncipheredBTree, model: &std::collections::BTreeMap<u64, Vec<u8>>) {
    tree.validate().unwrap();
    for (k, v) in model {
        assert_eq!(tree.get(*k).unwrap().as_ref(), Some(v), "key {k}");
    }
    assert_eq!(tree.len(), model.len() as u64);
    // The reverse index the reopen loaded (or will rebuild) must agree
    // with the tree itself.
    if tree.reverse_index_complete() {
        assert_eq!(tree.reverse_index_snapshot(), scan_index(tree));
    }
    // And compaction still works after the crash.
    while tree.compact_step(64).unwrap().freed_blocks > 0 {}
    tree.compact_nodes(1_000).unwrap();
    tree.validate().unwrap();
    for (k, v) in model {
        assert_eq!(
            tree.get(*k).unwrap().as_ref(),
            Some(v),
            "key {k} post-compact"
        );
    }
}

/// Kill mid reverse-index update: the fault fires inside the sealed
/// index-chain rewrite that `flush` runs, after a committed checkpoint.
#[test]
fn crash_mid_reverse_index_update_recovers() {
    let (rig, mut tree) = ProbeRig::create("rindex_crash");
    let mut model = std::collections::BTreeMap::new();
    for k in 0..300u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    tree.flush().unwrap(); // committed image A, index chain included
    for k in 300..400u64 {
        tree.insert(k, rec(k)).unwrap();
    }
    // Fail an early write of the *data* device during the next flush —
    // the index chain rewrite is among the first things it does.
    rig.data_plan.arm_nth_write(1, FailMode::Error);
    assert!(tree.flush().is_err(), "injected fault must surface");
    drop(tree); // the kill: buffered epoch discarded
    let mut tree = rig.reopen();
    assert!(
        tree.reverse_index_complete(),
        "image A's persisted index is trusted after the crash"
    );
    assert_consistent(&mut tree, &model);
    rig.cleanup();
}

/// Kill mid node-relocation: the fault fires on a node-device write while
/// the sliding pass is repointing parents and moving sealed nodes.
#[test]
fn crash_mid_node_relocation_recovers() {
    let (rig, mut tree) = ProbeRig::create("reloc_crash");
    let mut model = std::collections::BTreeMap::new();
    for k in 0..600u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    // Shrink so the node device has interior free blocks to slide into.
    for k in 0..500u64 {
        tree.delete(k).unwrap();
        model.remove(&k);
    }
    while tree.compact_step(64).unwrap().freed_blocks > 0 {}
    tree.flush().unwrap(); // committed image A
    rig.node_plan.arm_nth_write(3, FailMode::Error);
    let err = tree.compact_nodes(1_000);
    assert!(err.is_err(), "relocation hit the injected fault");
    drop(tree);
    let mut tree = rig.reopen();
    // The pass completes fine after the reboot (before assert_consistent
    // packs the device itself).
    let moved = tree.compact_nodes(1_000).unwrap();
    assert!(
        moved.moved_nodes + moved.node_blocks_truncated > 0,
        "the re-run pass does the crashed pass's work: {moved:?}"
    );
    assert_consistent(&mut tree, &model);
    rig.cleanup();
}

/// Kill mid deadest-first pass: the fault fires on a data-device write
/// while victims are being rewritten.
#[test]
fn crash_mid_deadest_first_pass_recovers() {
    let (rig, mut tree) = ProbeRig::create("compact_crash");
    let mut model = std::collections::BTreeMap::new();
    for k in 0..400u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    for k in (0..400u64).step_by(2) {
        tree.delete(k).unwrap();
        model.remove(&k);
    }
    tree.flush().unwrap(); // committed image A, tombstones included
    rig.data_plan.arm_nth_write(5, FailMode::Error);
    assert!(tree.compact_step(1_000).is_err());
    drop(tree);
    let mut tree = rig.reopen();
    assert_consistent(&mut tree, &model);
    rig.cleanup();
}

/// Seeded kill-point sweep: a deterministic fault somewhere in a fixed
/// churn + governance workload, ten different seeds; every reopen is
/// consistent with the last committed image.
#[test]
fn seeded_kill_point_sweep_recovers_everywhere() {
    for seed in 0..10u64 {
        let (rig, mut tree) = ProbeRig::create(&format!("sweep_{seed}"));
        let mut model = std::collections::BTreeMap::new();
        for k in 0..200u64 {
            tree.insert(k, rec(k)).unwrap();
            model.insert(k, rec(k));
        }
        for k in (0..200u64).step_by(3) {
            tree.delete(k).unwrap();
            model.remove(&k);
        }
        tree.flush().unwrap(); // the committed image
                               // Everything after this flush dies with the kill.
        let plan = if seed % 2 == 0 {
            &rig.data_plan
        } else {
            &rig.node_plan
        };
        let nth = plan.arm_from_seed(seed, 40, FailMode::Error);
        // Post-commit workload racing toward the kill point.
        let result: Result<(), sks_btree::core::CoreError> = (|| {
            for k in 200..260u64 {
                tree.insert(k, rec(k))?;
            }
            for k in (100..200u64).step_by(2) {
                tree.delete(k)?;
            }
            tree.compact_step(64)?;
            tree.compact_nodes(64)?;
            tree.flush()?;
            Ok(())
        })();
        if result.is_ok() {
            // The kill point landed beyond the workload's writes (or the
            // flush committed image B); fold the survivors into the model.
            assert!(plan.tripped() || plan.writes_seen() < nth);
            for k in 200..260u64 {
                model.insert(k, rec(k));
            }
            for k in (100..200u64).step_by(2) {
                model.remove(&k);
            }
        }
        drop(tree);
        let mut tree = rig.reopen();
        assert_consistent(&mut tree, &model);
        rig.cleanup();
    }
}

// ---------------------------------------------------------------------
// Reverse index ≡ full tree scan (backend matrix proptest)
// ---------------------------------------------------------------------

/// Which backend the matrix axis selects (`SKS_TEST_BACKEND=memory|file`;
/// unset = memory).
fn file_backend() -> bool {
    match std::env::var("SKS_TEST_BACKEND").as_deref() {
        Ok("file") => true,
        Ok("memory") | Err(_) => false,
        Ok(other) => panic!("SKS_TEST_BACKEND must be 'memory' or 'file', got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn prop_reverse_index_equals_tree_scan_under_churn(seed in any::<u64>()) {
        let on_disk = file_backend();
        let dir = tmpdir(&format!("rindex_prop_{seed}"));
        let mut cfg = config(2_048);
        if on_disk {
            cfg = cfg.on_disk(&dir);
        }
        let mut tree = if on_disk {
            EncipheredBTree::create(cfg.clone()).unwrap()
        } else {
            EncipheredBTree::create_in_memory(cfg.clone()).unwrap()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..400 {
            let k = rng.gen_range(0..1_000u64);
            match rng.gen_range(0..10u32) {
                0..=5 => {
                    tree.insert(k, rec(k)).unwrap();
                    model.insert(k, rec(k));
                }
                6..=8 => {
                    let got = tree.delete(k).unwrap();
                    prop_assert_eq!(got, model.remove(&k));
                }
                _ => {
                    let r = tree.compact_step(rng.gen_range(1..16)).unwrap();
                    prop_assert_eq!(r.orphaned_records, 0);
                    tree.compact_nodes(8).unwrap();
                }
            }
            // File backend: occasionally checkpoint and reopen mid-churn.
            if on_disk && rng.gen_bool(0.02) {
                tree.flush().unwrap();
                drop(tree);
                tree = EncipheredBTree::open(cfg.clone()).unwrap();
                prop_assert!(
                    tree.reverse_index_complete(),
                    "clean reopen must trust the persisted index"
                );
            }
        }
        // The incrementally-maintained index ≡ the scan-rebuilt map.
        prop_assert!(tree.reverse_index_complete());
        prop_assert_eq!(tree.reverse_index_snapshot(), scan_index(&tree));
        // All-keyed churn: the O(dataset) fallback never ran.
        prop_assert_eq!(tree.snapshot().compact_index_fallbacks, 0);
        for (k, v) in &model {
            prop_assert_eq!(tree.get(*k).unwrap().as_ref(), Some(v));
        }
        drop(tree);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Delta-encoded index persistence: equivalence + crash probes
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// The delta-persisted reverse index ≡ the map a full tree scan
    /// rebuilds, under arbitrary churn, checkpoints, crashes (reopen to
    /// the last committed epoch) and clean reopens, on both backends —
    /// with a small rewrite period so full rewrites and delta segments
    /// interleave, and zero O(dataset) fallbacks throughout.
    #[test]
    fn prop_delta_persisted_index_equals_scan_under_crashes(seed in any::<u64>()) {
        let on_disk = file_backend();
        let dir = tmpdir(&format!("delta_prop_{seed}"));
        let mut cfg = config(2_048).index_delta(true).index_rewrite_period(4);
        if on_disk {
            cfg = cfg.on_disk(&dir);
        }
        let mut tree = if on_disk {
            EncipheredBTree::create(cfg.clone()).unwrap()
        } else {
            EncipheredBTree::create_in_memory(cfg.clone()).unwrap()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = std::collections::BTreeMap::new();
        let mut committed = model.clone();
        for _ in 0..400 {
            let k = rng.gen_range(0..1_000u64);
            match rng.gen_range(0..10u32) {
                0..=5 => {
                    tree.insert(k, rec(k)).unwrap();
                    model.insert(k, rec(k));
                }
                6..=8 => {
                    let got = tree.delete(k).unwrap();
                    prop_assert_eq!(got, model.remove(&k));
                }
                _ => {
                    let r = tree.compact_step(rng.gen_range(1..16)).unwrap();
                    prop_assert_eq!(r.orphaned_records, 0);
                    tree.compact_nodes(8).unwrap();
                }
            }
            if on_disk && rng.gen_bool(0.03) {
                // Checkpoint: the epoch — and its delta segment or
                // periodic full rewrite — commits.
                tree.flush().unwrap();
                committed = model.clone();
                if rng.gen_bool(0.5) {
                    drop(tree);
                    tree = EncipheredBTree::open(cfg.clone()).unwrap();
                    prop_assert!(
                        tree.reverse_index_complete(),
                        "clean reopen must trust the persisted chain"
                    );
                }
            } else if on_disk && rng.gen_bool(0.01) {
                // Crash: the buffered epoch dies; the reopen serves the
                // last committed image through its committed chain.
                drop(tree);
                tree = EncipheredBTree::open(cfg.clone()).unwrap();
                prop_assert!(
                    tree.reverse_index_complete(),
                    "crash reopen must trust the committed chain"
                );
                model = committed.clone();
            }
        }
        // Force one observable delta epoch: settle pending state, then
        // two small churn+persist rounds. Whatever the period counter
        // says, at most one of them can be a forced full rewrite (which
        // resets the period), so at least one must ride the delta path.
        tree.flush().unwrap();
        for round in 0..2u64 {
            for k in 0..5u64 {
                let key = 1_500 + round * 10 + k;
                tree.insert(key, rec(key)).unwrap();
                model.insert(key, rec(key));
            }
            tree.flush().unwrap();
        }
        prop_assert!(
            tree.snapshot().index_delta_flushes >= 1,
            "a small epoch must persist as a delta segment: {:?}",
            tree.snapshot()
        );
        // The delta-reassembled index ≡ the scan-rebuilt map.
        prop_assert!(tree.reverse_index_complete());
        prop_assert_eq!(tree.reverse_index_snapshot(), scan_index(&tree));
        // All-keyed maintenance: the O(dataset) fallback never ran.
        prop_assert_eq!(tree.snapshot().compact_index_fallbacks, 0);
        for (k, v) in &model {
            prop_assert_eq!(tree.get(*k).unwrap().as_ref(), Some(v));
        }
        drop(tree);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Builds a probe rig whose committed image B ends in a *delta* epoch
/// (proven by the counter), with a further uncommitted churn pending —
/// the setup both delta crash probes share.
fn delta_rig(
    name: &str,
) -> (
    ProbeRig,
    EncipheredBTree,
    std::collections::BTreeMap<u64, Vec<u8>>,
) {
    let (rig, mut tree) = ProbeRig::create(name);
    let mut model = std::collections::BTreeMap::new();
    for k in 0..300u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    tree.flush().unwrap(); // image A: the full index rewrite
    for k in 300..320u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    tree.flush().unwrap(); // image B: a small epoch
    assert!(
        tree.snapshot().index_delta_flushes >= 1,
        "image B's small epoch must persist as a delta segment"
    );
    // The doomed epoch: churn that only ever lives in the buffer.
    for k in 320..340u64 {
        tree.insert(k, rec(k)).unwrap();
    }
    for k in 0..10u64 {
        tree.delete(k).unwrap();
    }
    (rig, tree, model)
}

/// Kill mid delta-chain flush: the fault fires on a data-device write
/// while the doomed epoch's pages — its delta segment among them — are
/// going down. The reopen trusts image B's committed chain (full image
/// plus delta segment) and serves exactly image B.
#[test]
fn crash_mid_delta_chain_flush_recovers() {
    let (rig, mut tree, model) = delta_rig("delta_write_crash");
    rig.data_plan.arm_nth_write(1, FailMode::Error);
    assert!(tree.flush().is_err(), "injected fault must surface");
    drop(tree); // the kill: buffered epoch discarded
    let mut tree = rig.reopen();
    assert!(
        tree.reverse_index_complete(),
        "image B's full+delta chain is trusted after the crash"
    );
    assert_eq!(tree.reverse_index_snapshot(), scan_index(&tree));
    assert_consistent(&mut tree, &model);
    rig.cleanup();
}

/// Kill between the delta flush and the epoch stamp: every page write of
/// the doomed epoch lands, but the data device's commit — the journal
/// flush that stamps the epoch — dies. The reopen must serve image B as
/// if the delta flush never happened, and the next epoch must commit
/// cleanly on the recovered chain.
#[test]
fn crash_between_delta_flush_and_epoch_stamp_recovers() {
    let (rig, mut tree, mut model) = delta_rig("delta_stamp_crash");
    rig.data_plan.arm_nth_flush(1);
    assert!(tree.flush().is_err(), "the epoch stamp must fail");
    drop(tree);
    let mut tree = rig.reopen();
    assert!(
        tree.reverse_index_complete(),
        "the unstamped delta pages must not shadow image B's chain"
    );
    assert_eq!(tree.reverse_index_snapshot(), scan_index(&tree));
    assert_consistent(&mut tree, &model);
    // The next epoch commits cleanly on top of the recovered chain.
    for k in 400..410u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    tree.flush().unwrap();
    drop(tree);
    let mut tree = rig.reopen();
    assert_consistent(&mut tree, &model);
    rig.cleanup();
}

// ---------------------------------------------------------------------
// Compaction-report under-count regression
// ---------------------------------------------------------------------

/// A victim that is already fully dead is freed through the tombstone
/// fast path (no unseals, no moves) — and must still be counted, both in
/// the report and in the `compact_freed_blocks` counter (the PR 4 report
/// under-counted such blocks).
#[test]
fn report_counts_empty_victims_freed_via_tombstone_path() {
    let mut tree = EncipheredBTree::create_in_memory(config(2_048)).unwrap();
    let payload = vec![7u8; 200]; // 2 records per 512-byte page
    for k in 0..12u64 {
        tree.insert(k, payload.clone()).unwrap();
    }
    // Keys 0..=3 fill two whole blocks: delete all four → two fully dead
    // victims. Keys 4,6 half-kill two more blocks.
    for k in [0u64, 1, 2, 3, 4, 6] {
        tree.delete(k).unwrap();
    }
    let before = tree.snapshot();
    let mut report = sks_btree::core::CompactionReport::default();
    loop {
        let r = tree.compact_step(64).unwrap();
        if r.freed_blocks == 0 {
            break;
        }
        report.absorb(r);
    }
    let delta = tree.snapshot().delta(&before);
    assert!(
        report.freed_blocks >= 4,
        "two empty + two half-dead victims: {report:?}"
    );
    assert_eq!(
        report.freed_blocks, delta.compact_freed_blocks,
        "report and counter must agree"
    );
    // The two fully-dead blocks moved nothing — proof the fast path ran —
    // yet were counted above.
    assert_eq!(report.moved_records, 2, "only the half-dead blocks moved");
    assert_eq!(
        delta.compact_moved_records, 2,
        "tombstone path paid zero move-crypto for empty victims"
    );
    assert_eq!(report.orphaned_records, 0);
    tree.validate().unwrap();
    for k in [5u64, 7, 8, 9, 10, 11] {
        assert_eq!(tree.get(k).unwrap().unwrap(), payload, "key {k}");
    }
}

// ---------------------------------------------------------------------
// Churn space bound (file backend): devices ≤ 2× a fresh build
// ---------------------------------------------------------------------

fn file_len(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn prop_churn_and_shrink_bound_both_devices(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = tmpdir(&format!("churn_bound_{seed}"));
        let cfg = config(4_096).on_disk(&dir);
        let n = 1_000u64;
        let mut tree = EncipheredBTree::create(cfg).unwrap();
        // Sustained delete/reinsert churn…
        for k in 0..n {
            tree.insert(k, rec(k)).unwrap();
        }
        for _ in 0..3 {
            for k in 0..n {
                if rng.gen_bool(0.5) {
                    tree.delete(k).unwrap();
                    tree.insert(k, rec(k)).unwrap();
                }
            }
            // Governance + checkpoint, exactly as an engine checkpoint
            // runs it (the flush protocol commits the quarantined
            // reclaims so the next round can reuse them).
            while tree.compact_step(64).unwrap().freed_blocks > 0 {}
            tree.compact_nodes(10_000).unwrap();
            tree.flush().unwrap();
        }
        // …then shrink to 10% of the dataset.
        let live: Vec<u64> = (0..n).filter(|k| k % 10 == 0).collect();
        for k in 0..n {
            if k % 10 != 0 {
                tree.delete(k).unwrap();
            }
        }
        // Compact-and-checkpoint to quiescence: tail truncation can only
        // release frees committed by an earlier flush, so convergence
        // takes a few checkpoint cycles (as it does in the engine).
        loop {
            let mut did = 0u64;
            loop {
                let r = tree.compact_step(64).unwrap();
                if r.freed_blocks == 0 {
                    break;
                }
                did += r.freed_blocks;
            }
            let moved = tree.compact_nodes(10_000).unwrap();
            did += moved.moved_nodes + moved.node_blocks_truncated;
            let before = tree.data_block_usage().0;
            tree.flush().unwrap();
            did += (before - tree.data_block_usage().0) as u64;
            if did == 0 {
                break;
            }
        }
        // O(victims) held throughout: the full-scan fallback never ran.
        prop_assert_eq!(tree.snapshot().compact_index_fallbacks, 0);
        for &k in &live {
            prop_assert_eq!(tree.get(k).unwrap().unwrap(), rec(k));
        }
        tree.validate().unwrap();
        drop(tree);

        // A fresh build of exactly the live set.
        let fresh_dir = tmpdir(&format!("churn_fresh_{seed}"));
        let fresh_cfg = config(4_096).on_disk(&fresh_dir);
        let items: Vec<(u64, Vec<u8>)> = live.iter().map(|&k| (k, rec(k))).collect();
        let mut fresh = EncipheredBTree::bulk_create(fresh_cfg, &items).unwrap();
        fresh.flush().unwrap();
        drop(fresh);

        for name in ["nodes.sks", "data.sks"] {
            let churned = file_len(&dir.join(name));
            let built = file_len(&fresh_dir.join(name));
            prop_assert!(
                churned <= built * 2,
                "{name}: churned {churned} > 2x fresh {built}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&fresh_dir).ok();
    }
}

// ---------------------------------------------------------------------
// Governance on vs off: logical counters pinned, every measured scheme
// ---------------------------------------------------------------------

/// With full space governance on (dead-ratio compaction, node-device
/// sliding, tail truncation, both caches) every *logical* operation
/// counter reads exactly as it does with governance off, for every
/// measured scheme — the paper's cost model is untouched by maintenance.
#[test]
fn governance_preserves_logical_counters_exactly() {
    for scheme in Scheme::MEASURED {
        let n = 240u64;
        let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
        cfg.block_size = 512;
        let keys: Vec<u64> = (1..n).collect();
        let run = |governed: bool| {
            let cfg = cfg.clone();
            let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
            for &k in &keys {
                tree.insert(k, vec![k as u8; 40]).unwrap();
            }
            for &k in keys.iter().filter(|k| *k % 3 == 0) {
                tree.delete(k).unwrap();
            }
            if governed {
                // The whole governance suite runs between the write phase
                // and the measured read phase.
                while tree.compact_step(32).unwrap().freed_blocks > 0 {}
                while tree.compact_nodes(1_000).unwrap().moved_nodes > 0 {}
            }
            tree.counters().reset();
            for _ in 0..3 {
                for &k in keys.iter().step_by(5) {
                    let want = k % 3 != 0;
                    assert_eq!(tree.get(k).unwrap().is_some(), want, "key {k}");
                }
                assert!(!tree.range(n / 4, n / 2).unwrap().is_empty());
            }
            tree.snapshot()
        };
        let off = run(false);
        let on = run(true);
        // Physical telemetry may differ (that is the point); every
        // logical field must not.
        let mut on_masked = on;
        on_masked.block_reads = off.block_reads;
        on_masked.cache_hits = off.cache_hits;
        on_masked.cache_misses = off.cache_misses;
        on_masked.node_cache_hits = off.node_cache_hits;
        on_masked.node_cache_misses = off.node_cache_misses;
        on_masked.record_cache_hits = off.record_cache_hits;
        on_masked.record_cache_misses = off.record_cache_misses;
        assert_eq!(
            on_masked,
            off,
            "{}: governance changed the logical cost model",
            scheme.name()
        );
    }
}

/// The cross-device window the flush protocol closes: after a compaction
/// pass, the data device commits (copies + index, victims still
/// allocated) and then the *node* checkpoint dies. The reopened stack
/// reads every committed record through its old pointers — the victims'
/// content is intact because quarantined reclaims are never freed before
/// the node device commits.
#[test]
fn crash_between_device_checkpoints_after_compaction_keeps_reads_safe() {
    let (rig, mut tree) = ProbeRig::create("cross_device");
    let mut model = std::collections::BTreeMap::new();
    for k in 0..300u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    for k in (0..300u64).step_by(2) {
        tree.delete(k).unwrap();
        model.remove(&k);
    }
    tree.flush().unwrap(); // image A committed on both devices
    let r = tree.compact_step(1_000).unwrap();
    assert!(r.moved_records > 0, "the pass moved live records: {r:?}");
    // The node device's checkpoint dies: the data device commits image B
    // (copies present, victims still allocated), the tree stays at A.
    rig.node_plan.arm_nth_flush(1);
    assert!(tree.flush().is_err(), "node checkpoint must fail");
    drop(tree);
    let mut tree = rig.reopen();
    // Old pointers, intact victims: every committed read is correct.
    assert_consistent(&mut tree, &model);
    rig.cleanup();
}

/// The leak window after both devices committed but before the deferred
/// frees did: the quarantined victims are exactly the allocated blocks
/// the committed index does not describe, and the next trusted open
/// reclaims them.
#[test]
fn leaked_quarantine_blocks_are_reclaimed_on_reopen() {
    let (rig, mut tree) = ProbeRig::create("leak_reclaim");
    let mut model = std::collections::BTreeMap::new();
    for k in 0..300u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    for k in (0..300u64).step_by(2) {
        tree.delete(k).unwrap();
        model.remove(&k);
    }
    tree.flush().unwrap();
    let r = tree.compact_step(1_000).unwrap();
    assert!(r.freed_blocks > 0);
    // Data flush #1 (copies + index) and the node flush succeed; data
    // flush #2 — the one that commits the quarantined frees — dies.
    rig.data_plan.arm_nth_flush(2);
    assert!(tree.flush().is_err(), "free-commit flush must fail");
    drop(tree);
    let mut tree = rig.reopen();
    assert!(tree.reverse_index_complete(), "index trusted after crash");
    let (_, free) = tree.data_block_usage();
    assert!(
        free as u64 >= r.freed_blocks,
        "reopen reconciled the leaked victims: {free} free vs {} quarantined",
        r.freed_blocks
    );
    assert_consistent(&mut tree, &model);
    // Churn must reuse the reclaimed blocks instead of growing.
    let (total_before, _) = tree.data_block_usage();
    for k in 0..100u64 {
        tree.insert(k, rec(k)).unwrap();
        model.insert(k, rec(k));
    }
    let (total_after, _) = tree.data_block_usage();
    assert!(
        total_after <= total_before + 2,
        "reinserts must reuse reconciled blocks: {total_before} -> {total_after}"
    );
    assert_consistent(&mut tree, &model);
    rig.cleanup();
}
