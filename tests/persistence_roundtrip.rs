//! Property tests for the file backend: arbitrary workloads built on disk,
//! dropped, reopened, and compared key-for-key against a model — plus the
//! fail-closed guarantee for wrong keys, and tail-only recovery through
//! the engine.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig, StorageBackend};
use sks_btree::engine::{EngineConfig, RecoveryPath, SksDb};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sks_persist_prop_{}_{}_{}",
        std::process::id(),
        tag,
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn value_for(key: u64, vlen: usize) -> Vec<u8> {
    let mut v = format!("value-{key}-").into_bytes();
    let fill = v.len() + vlen;
    v.resize(fill, 0xA0 ^ key as u8);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any insert/overwrite/delete workload persisted on the file backend
    /// and reopened equals the in-memory model, record for record — and a
    /// reopen under a wrong key (either key) fails closed.
    #[test]
    fn file_backend_roundtrip_equals_model(
        ops in proptest::collection::vec((0u8..3, 0u64..280, 1usize..40), 1..120),
        pool in 2usize..48,
    ) {
        let dir = tmpdir("core");
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, 300).backend(
            StorageBackend::File { dir: dir.clone(), pool_pages: pool },
        );
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        {
            let mut tree = EncipheredBTree::create(cfg.clone()).unwrap();
            for &(op, key, vlen) in &ops {
                if op < 2 {
                    let v = value_for(key, vlen);
                    tree.insert(key, v.clone()).unwrap();
                    model.insert(key, v);
                } else {
                    let got = tree.delete(key).unwrap();
                    prop_assert_eq!(got, model.remove(&key), "delete {}", key);
                }
            }
            tree.flush().unwrap();
            // Dropped: only the checkpointed files survive.
        }
        {
            let tree = EncipheredBTree::open(cfg.clone()).unwrap();
            tree.validate().unwrap();
            prop_assert_eq!(tree.len(), model.len() as u64);
            for (&k, v) in &model {
                prop_assert_eq!(tree.get(k).unwrap().as_ref(), Some(v), "key {}", k);
            }
            // Full ordered scan equality (also proves no phantom keys).
            let got = tree.range(0, 300).unwrap();
            let want: Vec<(u64, Vec<u8>)> =
                model.iter().map(|(&k, v)| (k, v.clone())).collect();
            prop_assert_eq!(got, want);
        }
        for flip in [1u128, 1u128 << 77] {
            let mut bad = cfg.clone();
            bad.data_key ^= flip;
            prop_assert!(
                EncipheredBTree::open(bad).is_err(),
                "wrong data key must fail closed"
            );
        }
        let mut bad = cfg.clone();
        bad.tree_key ^= 0xFFFF;
        prop_assert!(
            EncipheredBTree::open(bad).is_err(),
            "wrong tree key must fail closed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Through the engine: a checkpoint plus an arbitrary tail, crashed
    /// and reopened, recovers the model state by replaying exactly the
    /// tail.
    #[test]
    fn engine_file_backend_tail_replay_equals_model(
        base in proptest::collection::vec((0u64..200, 1usize..24), 1..60),
        tail in proptest::collection::vec((0u8..3, 0u64..200, 1usize..24), 1..40),
    ) {
        let dir = tmpdir("engine");
        let config = EngineConfig::new(
            SchemeConfig::with_capacity(Scheme::Oval, 256)
                .partitions(2)
                .backend(StorageBackend::File { dir: dir.clone(), pool_pages: 32 }),
        );
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        {
            let db = SksDb::open(&dir, config.clone()).unwrap();
            let s = db.session();
            for &(key, vlen) in &base {
                let v = value_for(key, vlen);
                s.insert(key, v.clone()).unwrap();
                model.insert(key, v);
            }
            db.checkpoint().unwrap();
            let mut tail_ops = 0u64;
            for &(op, key, vlen) in &tail {
                if op < 2 {
                    let v = value_for(key, vlen ^ 1);
                    s.insert(key, v.clone()).unwrap();
                    model.insert(key, v);
                } else {
                    s.delete(key).unwrap();
                    model.remove(&key);
                }
                tail_ops += 1;
            }
            prop_assert_eq!(tail_ops, tail.len() as u64);
            // Crash: no flush, no checkpoint — the tail lives in the WAL.
        }
        {
            let db = SksDb::open(&dir, config).unwrap();
            let report = db.recovery_report();
            prop_assert_eq!(report.path, RecoveryPath::TailReplay);
            prop_assert_eq!(
                report.records_replayed,
                tail.len() as u64,
                "exactly the tail is replayed"
            );
            db.validate().unwrap();
            let s = db.session();
            prop_assert_eq!(db.len(), model.len() as u64);
            for (&k, v) in &model {
                prop_assert_eq!(s.get(k).unwrap().as_ref(), Some(v), "key {}", k);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
