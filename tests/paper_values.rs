//! Every concrete number printed in the paper, verified through the public
//! facade. If any of these fail, the reproduction has drifted from the
//! source.

use sks_btree::core::disguise::{KeyDisguise, PaperExpSubstitution, SumSubstitution};
use sks_btree::core::OvalSubstitution;
use sks_btree::designs::arith::pow_mod;
use sks_btree::designs::DifferenceSet;
use sks_btree::storage::OpCounters;

/// p. 53, left-hand block design (lines) — all 13 rows.
#[test]
fn page53_lines_table() {
    let ds = DifferenceSet::paper_13_4_1();
    let expected: [[u64; 4]; 13] = [
        [0, 1, 3, 9],
        [1, 2, 4, 10],
        [2, 3, 5, 11],
        [3, 4, 6, 12],
        [4, 5, 7, 0],
        [5, 6, 8, 1],
        [6, 7, 9, 2],
        [7, 8, 10, 3],
        [8, 9, 11, 4],
        [9, 10, 12, 5],
        [10, 11, 0, 6],
        [11, 12, 1, 7],
        [12, 0, 2, 8],
    ];
    for (y, row) in expected.iter().enumerate() {
        assert_eq!(ds.line_in_base_order(y as u64), row.to_vec(), "L{y}");
    }
}

/// p. 53, right-hand block design (ovals, t = 7) — all 13 rows.
#[test]
fn page53_ovals_table() {
    let ds = DifferenceSet::paper_13_4_1();
    let expected: [[u64; 4]; 13] = [
        [0, 7, 8, 11],
        [7, 1, 2, 5],
        [1, 8, 9, 12],
        [8, 2, 3, 6],
        [2, 9, 10, 0],
        [9, 3, 4, 7],
        [3, 10, 11, 1],
        [10, 4, 5, 8],
        [4, 11, 12, 2],
        [11, 5, 6, 9],
        [5, 12, 0, 3],
        [12, 6, 7, 10],
        [6, 0, 1, 4],
    ];
    for (y, row) in expected.iter().enumerate() {
        assert_eq!(ds.oval_in_base_order(y as u64, 7), row.to_vec(), "O{y}");
    }
}

/// §4.1's prose: "the search key 1 is substituted by 7, 2 by 1, 3 by 8,
/// 4 by 2 and so on".
#[test]
fn section_4_1_substitution_prose() {
    let d = OvalSubstitution::paper_example(OpCounters::new());
    assert_eq!(d.disguise(1).unwrap(), 7);
    assert_eq!(d.disguise(2).unwrap(), 1);
    assert_eq!(d.disguise(3).unwrap(), 8);
    assert_eq!(d.disguise(4).unwrap(), 2);
}

/// §4.1's secrecy claim: only {v,k,λ}, L₀ and the mapping are secret —
/// constant-size material, no conversion tables.
#[test]
fn section_4_1_secret_material_is_constant_size() {
    let d = OvalSubstitution::paper_example(OpCounters::new());
    // 3 params + 4 base treatments + t, all u64.
    assert_eq!(d.secret_size_bytes(), 3 * 8 + 4 * 8 + 8);
}

/// §4.2's example parameters: g = 7 is a primitive element of Z₁₃, and the
/// printed grid rows hold.
#[test]
fn section_4_2_grid() {
    assert!(sks_btree::designs::primes::is_primitive_root(7, 13));
    let d = PaperExpSubstitution::paper_example(OpCounters::new());
    let lines = d.line_exponent_grid();
    let ovals = d.oval_exponent_grid();
    // Printed row 0: 7^0 7^1 7^3 7^9 | 7^0 7^7 7^8 7^11.
    assert_eq!(lines[0], vec![0, 1, 3, 9]);
    assert_eq!(ovals[0], vec![0, 7, 8, 11]);
    // Printed row 8: 7^8 7^9 7^11 7^4 | 7^4 7^11 7^12 7^2.
    assert_eq!(lines[8], vec![8, 9, 11, 4]);
    assert_eq!(ovals[8], vec![4, 11, 12, 2]);
    // Substitution of an actual key: k = 7^2 mod 13 = 10 has treatment 2,
    // oval exponent 14 mod 13 = 1, so k̂ = 7^1 = 7.
    assert_eq!(d.disguise(10).unwrap(), 7);
    assert_eq!(pow_mod(7, 2, 13), 10);
}

/// §4.3's printed k̂ column: 13, 30, 51, 76, 92, 112, 136, 164, 196, 232,
/// 259, 290, 312.
#[test]
fn section_4_3_cumulative_sums() {
    let ds = DifferenceSet::paper_13_4_1();
    let expected: [u128; 13] = [13, 30, 51, 76, 92, 112, 136, 164, 196, 232, 259, 290, 312];
    for (x, &want) in expected.iter().enumerate() {
        assert_eq!(ds.cumulative_sum(0, x as u64), want, "key {x}");
    }
}

/// §4.3's ordering claim: "the corresponding substitute search keys derived
/// through the summation of treatments is a set of integers maintaining
/// that ascending order".
#[test]
fn section_4_3_order_preservation() {
    let d = SumSubstitution::paper_example(OpCounters::new());
    let subs: Vec<u64> = (0..11).map(|k| d.disguise(k).unwrap()).collect();
    assert!(subs.windows(2).all(|w| w[0] < w[1]));
    assert!(d.order_preserving());
}

/// §4's structural requirement `v > R` (the design must out-size the
/// record count) is enforced.
#[test]
fn v_much_greater_than_r_enforced() {
    use sks_btree::core::{Scheme, SchemeConfig};
    for r in [100u64, 5_000, 200_000] {
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, r);
        let ds = cfg.build_design().unwrap();
        assert!(ds.v() > r, "v = {} for R = {r}", ds.v());
    }
}

/// The (13,4,1) design is the projective plane of order 3 (v = n²+n+1,
/// k = n+1, λ = 1 with n = 3), as §4 sets up.
#[test]
fn design_is_projective_plane_order_3() {
    let ds = DifferenceSet::paper_13_4_1();
    let n = 3u64;
    assert_eq!(ds.v(), n * n + n + 1);
    assert_eq!(ds.k(), n + 1);
    assert_eq!(ds.lambda(), 1);
    let dev = sks_btree::designs::BlockDesign::develop(&ds);
    dev.verify_bibd().unwrap();
}
