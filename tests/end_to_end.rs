//! Cross-crate integration: the full stack (design → disguise → codec →
//! B-tree → data blocks) exercised through the public facade.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig};

fn rand_ops(seed: u64, n_ops: usize, key_space: u64) -> Vec<(u8, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_ops)
        .map(|_| (rng.gen_range(0..10u8), rng.gen_range(1..key_space)))
        .collect()
}

/// Every measured scheme must behave exactly like a BTreeMap on the same
/// operation sequence — inserts, upserts, deletes, point and range queries.
#[test]
fn all_schemes_agree_with_model_under_churn() {
    let key_space = 700u64;
    let ops = rand_ops(2024, 1_500, key_space);
    for scheme in Scheme::MEASURED {
        let mut cfg = SchemeConfig::with_capacity(scheme, key_space + 2);
        cfg.block_size = 512;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (i, &(op, key)) in ops.iter().enumerate() {
            match op {
                0..=5 => {
                    let rec = format!("{}:{}", scheme.name(), i).into_bytes();
                    let want = model.insert(key, rec.clone());
                    let got = tree.insert(key, rec).unwrap();
                    assert_eq!(got, want, "{}: insert {key} @{i}", scheme.name());
                }
                6..=8 => {
                    let want = model.remove(&key);
                    let got = tree.delete(key).unwrap();
                    assert_eq!(got, want, "{}: delete {key} @{i}", scheme.name());
                }
                _ => {
                    let want = model.get(&key).cloned();
                    let got = tree.get(key).unwrap();
                    assert_eq!(got, want, "{}: get {key} @{i}", scheme.name());
                }
            }
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), model.len() as u64, "{}", scheme.name());
        // Full ordered agreement.
        let got: Vec<(u64, Vec<u8>)> = tree.range(0, key_space).unwrap();
        let want: Vec<(u64, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(got, want, "{}", scheme.name());
    }
}

/// Range scans across schemes return identical contents for identical data.
#[test]
fn schemes_agree_pairwise_on_ranges() {
    let n = 400u64;
    let mut trees: Vec<(Scheme, EncipheredBTree)> = Scheme::MEASURED
        .iter()
        .map(|&scheme| {
            let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
            cfg.block_size = 1024;
            let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
            for k in 1..=n {
                tree.insert(k, k.to_be_bytes().to_vec()).unwrap();
            }
            (scheme, tree)
        })
        .collect();
    let reference = trees.remove(0).1.range(50, 250).unwrap();
    for (scheme, tree) in &trees {
        assert_eq!(
            tree.range(50, 250).unwrap(),
            reference,
            "{} disagrees with plaintext reference",
            scheme.name()
        );
    }
}

/// The decryption-count separation of §3/§6 at integration scale.
#[test]
fn decryption_cost_ordering_holds() {
    let n = 1_200u64;
    let mut per_scheme = Vec::new();
    for scheme in [Scheme::Oval, Scheme::BayerMetzger, Scheme::BayerMetzgerPage] {
        let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
        cfg.block_size = 1024;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        for k in 0..n {
            tree.insert(k, vec![7]).unwrap();
        }
        tree.counters().reset();
        for k in (0..n).step_by(11) {
            let _ = tree.get_pointer(k).unwrap();
        }
        let s = tree.snapshot();
        per_scheme.push((scheme, s.total_decrypts()));
    }
    let oval = per_scheme[0].1;
    let bm = per_scheme[1].1;
    let page = per_scheme[2].1;
    assert!(oval < bm, "substitution {oval} !< search-and-decrypt {bm}");
    assert!(bm < page, "search-and-decrypt {bm} !< whole-page {page}");
}

/// Records survive intact through splits, merges and re-encipherment.
#[test]
fn payload_integrity_through_rebalancing() {
    let mut cfg = SchemeConfig::with_capacity(Scheme::SumOfTreatments, 1_000);
    cfg.block_size = 512;
    let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
    // Large-ish distinctive payloads.
    let payload = |k: u64| {
        let mut v = format!("record-{k}-").into_bytes();
        v.extend((0..100).map(|i| ((k + i) % 251) as u8));
        v
    };
    for k in 0..800u64 {
        tree.insert(k, payload(k)).unwrap();
    }
    for k in (0..800u64).step_by(2) {
        tree.delete(k).unwrap();
    }
    for k in 0..800u64 {
        let want = if k % 2 == 0 { None } else { Some(payload(k)) };
        assert_eq!(tree.get(k).unwrap(), want, "key {k}");
    }
    tree.validate().unwrap();
}

/// Deleting everything shrinks the tree back to a single empty leaf, for
/// every scheme.
#[test]
fn drain_to_empty_all_schemes() {
    for scheme in Scheme::MEASURED {
        let mut cfg = SchemeConfig::with_capacity(scheme, 300);
        cfg.block_size = 512;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        for k in 1..=250u64 {
            tree.insert(k, vec![k as u8]).unwrap();
        }
        for k in 1..=250u64 {
            assert!(tree.delete(k).unwrap().is_some(), "{}: {k}", scheme.name());
        }
        assert!(tree.is_empty(), "{}", scheme.name());
        assert_eq!(tree.height(), 1, "{}", scheme.name());
        tree.validate().unwrap();
    }
}
