//! Durability and fault injection: enciphered trees on real files, trees
//! behind the block cache, and corrupted media producing typed errors
//! instead of garbage or panics.

use sks_btree::btree::{BTree, CodecError, RecordPtr, TreeError};
use sks_btree::core::{Scheme, SchemeConfig};
use sks_btree::storage::{BlockId, BlockStore, FileDisk, MemDisk, OpCounters, PagedFileStore};

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sks_it_{}_{}", std::process::id(), name));
    p
}

/// A fully enciphered (oval-substituted, DES-sealed) B-tree persisted to a
/// real file survives process "restart": reopen with the same secrets and
/// read everything back.
#[test]
fn enciphered_tree_persists_on_file_disk() {
    let path = tmpfile("enc_persist");
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, 600);
    let counters = OpCounters::new();
    {
        let (codec, _) = cfg.build_codec(&counters).unwrap();
        let disk = FileDisk::create(&path, cfg.block_size).unwrap();
        let mut tree = BTree::create(disk, codec).unwrap();
        for k in 0..500u64 {
            tree.insert(k, RecordPtr(k * 7)).unwrap();
        }
        tree.flush().unwrap();
        // Dropping the tree simulates process exit.
    }
    {
        // "Restart": rebuild the codec from the same (secret) config.
        let (codec, _) = cfg.build_codec(&counters).unwrap();
        let disk = FileDisk::open(&path).unwrap();
        let tree = BTree::open(disk, codec).unwrap();
        assert_eq!(tree.len(), 500);
        for k in (0..500u64).step_by(37) {
            assert_eq!(tree.get(k).unwrap(), Some(RecordPtr(k * 7)), "key {k}");
        }
        tree.validate().unwrap();
    }
    std::fs::remove_file(&path).ok();
}

/// Reopening with the wrong tree key must fail loudly (binding mismatch or
/// corrupt-node error), never return wrong data.
#[test]
fn wrong_key_cannot_read_the_file() {
    let path = tmpfile("wrong_key");
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, 100);
    let counters = OpCounters::new();
    {
        let (codec, _) = cfg.build_codec(&counters).unwrap();
        let disk = FileDisk::create(&path, cfg.block_size).unwrap();
        let mut tree = BTree::create(disk, codec).unwrap();
        for k in 0..80u64 {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        tree.flush().unwrap();
    }
    {
        let mut bad_cfg = cfg.clone();
        bad_cfg.tree_key ^= 0xFFFF; // attacker guesses the wrong K_E
        let (codec, _) = bad_cfg.build_codec(&counters).unwrap();
        let disk = FileDisk::open(&path).unwrap();
        let tree = BTree::open(disk, codec).unwrap(); // superblock is plaintext
                                                      // Any traversal must error out on the first sealed pointer.
        let err = tree.get(40).unwrap_err();
        assert!(matches!(err, TreeError::Codec(_)), "got: {err}");
    }
    std::fs::remove_file(&path).ok();
}

/// The same enciphered tree works unchanged behind the checkpointing
/// paged file store, and repeated lookups stop hitting the physical
/// device while still paying decryptions (the cache sits *below* the
/// crypto, like the paper's hardware unit).
#[test]
fn enciphered_tree_behind_paged_file_store() {
    let path = tmpfile("paged_cache");
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, 600);
    let counters = OpCounters::new();
    let (codec, _) = cfg.build_codec(&counters).unwrap();
    let store = PagedFileStore::create(&path, cfg.block_size, 64, counters.clone()).unwrap();
    let mut tree = BTree::create(store, codec).unwrap();
    for k in 0..500u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    tree.flush().unwrap(); // checkpoint: pages reach the file, frames go clean
    counters.reset();
    for _ in 0..50 {
        assert_eq!(tree.get(123).unwrap(), Some(RecordPtr(123)));
    }
    let s = counters.snapshot();
    assert!(s.cache_hits >= 90, "cache hits {}", s.cache_hits);
    assert!(
        s.block_reads <= 5,
        "physical reads {} despite cache",
        s.block_reads
    );
    assert!(
        s.ptr_decrypts >= 50,
        "decryptions still happen above the cache: {}",
        s.ptr_decrypts
    );
    tree.validate().unwrap();
    std::fs::remove_file(&path).ok();
}

/// Flipping bytes anywhere in a node block is detected as a typed error on
/// the next read — no panic, no silent wrong answer.
#[test]
fn corrupted_node_blocks_yield_typed_errors() {
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, 300);
    let counters = OpCounters::new();
    let (codec, _) = cfg.build_codec(&counters).unwrap();
    let disk = MemDisk::with_counters(cfg.block_size, counters.clone());
    let mut tree = BTree::create(disk, codec).unwrap();
    for k in 0..250u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    let mut store = tree.into_store().unwrap();

    // Corrupt every non-superblock block in a different byte position.
    let n = store.num_blocks();
    for (i, block) in (1..n).enumerate() {
        let mut page = store.read_block_vec(BlockId(block)).unwrap();
        let pos = 8 + (i * 13) % (page.len() - 8); // past the header
        page[pos] ^= 0x80;
        store.write_block(BlockId(block), &page).unwrap();
    }

    let (codec, _) = cfg.build_codec(&counters).unwrap();
    let tree = BTree::open(store, codec).unwrap();
    let mut failures = 0;
    for k in 0..250u64 {
        match tree.get(k) {
            Err(TreeError::Codec(
                CodecError::BindingMismatch { .. }
                | CodecError::Corrupt(_)
                | CodecError::Overflow(_)
                | CodecError::KeyDomain { .. },
            )) => failures += 1,
            // A corrupted (but well-formed) pointer cryptogram decrypts to a
            // garbage block number; the storage layer rejects it.
            Err(TreeError::Storage(_)) => failures += 1,
            Err(other) => panic!("unexpected error class: {other}"),
            Ok(_) => {} // a flipped key byte may still parse; pointer seals catch the rest
        }
    }
    // A lookup only touches ~height pointer seals and ~log(n) key fields,
    // so a single flipped byte per block is caught exactly when the probe
    // path crosses it — a third of lookups at this scale. What matters is
    // that every detection is a *typed error* (asserted above) and none is
    // a panic or a wrong record.
    assert!(
        failures > 30,
        "corruption detected on only {failures}/250 lookups"
    );
}

/// Bulk-created enciphered trees are equivalent to insert-built ones.
#[test]
fn bulk_create_equivalence() {
    use sks_btree::core::EncipheredBTree;
    let items: Vec<(u64, Vec<u8>)> = (0..800u64)
        .map(|k| (k, format!("bulk-{k}").into_bytes()))
        .collect();
    for scheme in [Scheme::Oval, Scheme::SumOfTreatments, Scheme::BayerMetzger] {
        let mut cfg = SchemeConfig::with_capacity(scheme, 900);
        cfg.block_size = 512;
        let bulk = EncipheredBTree::bulk_create(cfg.clone(), &items).unwrap();
        bulk.validate().unwrap();
        assert_eq!(bulk.len(), 800, "{}", scheme.name());
        let mut incr = EncipheredBTree::create_in_memory(cfg).unwrap();
        for (k, rec) in &items {
            incr.insert(*k, rec.clone()).unwrap();
        }
        assert_eq!(
            bulk.range(0, 900).unwrap(),
            incr.range(0, 900).unwrap(),
            "{}",
            scheme.name()
        );
        // Bulk load must be cheaper in encipherment operations.
        let b = bulk.snapshot();
        let i = incr.snapshot();
        assert!(
            b.total_encrypts() < i.total_encrypts() / 2,
            "{}: bulk {} vs incremental {}",
            scheme.name(),
            b.total_encrypts(),
            i.total_encrypts()
        );
    }
}
