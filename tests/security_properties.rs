//! Security-facing integration tests: what leaks, what doesn't, and what
//! the attack tooling concludes — §4.1, §5 and §6 claims end to end.

use sks_btree::attack::{AttackReport, DiskImage, Edge, FormatKnowledge, GroundTruth};
use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig};

fn build(scheme: Scheme, n: u64, block_size: usize) -> EncipheredBTree {
    let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
    cfg.block_size = block_size;
    let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
    let start = matches!(scheme, Scheme::Exponentiation) as u64;
    for k in start..start + n {
        tree.insert(k, format!("secret-{k}").into_bytes()).unwrap();
    }
    tree
}

fn truth_of(tree: &EncipheredBTree) -> GroundTruth {
    let mut edges = Vec::new();
    let mut keys = Vec::new();
    let mut stack = vec![tree.tree().root_id()];
    while let Some(id) = stack.pop() {
        let node = tree.tree().inspect_node(id).unwrap();
        keys.extend_from_slice(&node.keys);
        for &c in &node.children {
            edges.push(Edge {
                parent: id.as_u32(),
                child: c.as_u32(),
            });
            stack.push(c);
        }
    }
    let key_pairs = tree
        .disguise()
        .map(|d| {
            keys.iter()
                .filter_map(|&k| d.disguise(k).ok().map(|dk| (k, dk)))
                .collect()
        })
        .unwrap_or_default();
    GroundTruth { edges, key_pairs }
}

/// No plaintext key bytes appear in node images under any enciphered scheme
/// (keys are disguised or sealed), and no record plaintext ever appears in
/// either image.
#[test]
fn raw_images_never_contain_plaintext() {
    for scheme in [
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
    ] {
        let tree = build(scheme, 200, 512);
        let needle = b"secret-";
        for image in [
            tree.raw_node_image().expect("raw image"),
            tree.raw_data_image().expect("raw image"),
        ] {
            let hit = image
                .iter()
                .any(|b| b.windows(needle.len()).any(|w| w == needle));
            assert!(!hit, "{}: record plaintext leaked", scheme.name());
        }
    }
}

/// The §4.1 headline: the opponent cannot recreate the tree shape under the
/// oval substitution, but can under plaintext.
#[test]
fn shape_recovery_separation() {
    let plain = build(Scheme::Plaintext, 250, 512);
    let oval = build(Scheme::Oval, 250, 512);
    let report = |tree: &EncipheredBTree, name: &str| {
        let truth = truth_of(tree);
        let image = DiskImage::new(tree.block_size(), tree.raw_node_image().expect("raw image"));
        AttackReport::run(name, &image, &FormatKnowledge::default(), &truth)
    };
    let rp = report(&plain, "plaintext");
    let ro = report(&oval, "oval");
    assert!(
        rp.shape.recall > 0.8,
        "plaintext recall {}",
        rp.shape.recall
    );
    assert!(ro.shape.recall < 0.2, "oval recall {}", ro.shape.recall);
}

/// §2's page-key property carried through: identical logical content in
/// different blocks yields different cryptograms, so the image contains no
/// repeated 16-byte cryptogram chunks to frequency-analyse.
#[test]
fn no_repeated_cryptograms_across_blocks() {
    for scheme in [Scheme::BayerMetzger, Scheme::BayerMetzgerPage, Scheme::Oval] {
        let tree = build(scheme, 400, 512);
        let image = DiskImage::new(512, tree.raw_node_image().expect("raw image"));
        let (distinct, _) = sks_btree::attack::repeated_chunks(&image, 16);
        // The paper's point is that the *sealed* material never repeats. A
        // handful of collisions can occur in plaintext header areas for the
        // substitution scheme; sealed content must not repeat at scale.
        assert!(
            distinct < 5,
            "{}: {distinct} repeated cryptogram chunks",
            scheme.name()
        );
    }
}

/// Moving a node block to a different disk position is detected on read —
/// the `b` bound inside every pointer cryptogram (§3's format).
#[test]
fn block_relocation_detected() {
    use sks_btree::btree::NodeCodec;
    use sks_btree::storage::OpCounters;

    let counters = OpCounters::new();
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, 100);
    let (codec, _) = cfg.build_codec(&counters).unwrap();
    let node = sks_btree::btree::Node {
        id: sks_btree::storage::BlockId(5),
        keys: vec![1, 2, 3],
        data_ptrs: vec![
            sks_btree::btree::RecordPtr(10),
            sks_btree::btree::RecordPtr(20),
            sks_btree::btree::RecordPtr(30),
        ],
        children: vec![],
    };
    let mut page = vec![0u8; cfg.block_size];
    codec.encode(&node, &mut page).unwrap();
    // An adversary copies the page to block 9 and fixes up the visible
    // header; the sealed binding still snitches.
    page[4..8].copy_from_slice(&9u32.to_be_bytes());
    let err = codec
        .decode(sks_btree::storage::BlockId(9), &page)
        .unwrap_err();
    assert!(matches!(
        err,
        sks_btree::btree::CodecError::BindingMismatch { .. }
    ));
}

/// Order leakage is a deliberate dial: τ ≈ 0 (oval) vs τ = 1 (sum).
#[test]
fn order_leakage_dial() {
    let oval = build(Scheme::Oval, 300, 512);
    let sum = build(Scheme::SumOfTreatments, 300, 512);
    let tau =
        |tree: &EncipheredBTree| sks_btree::attack::kendall_tau(&truth_of(tree).key_pairs).unwrap();
    assert!(tau(&oval).abs() < 0.2, "oval tau {}", tau(&oval));
    assert!((tau(&sum) - 1.0).abs() < 1e-9, "sum tau {}", tau(&sum));
}

/// The multilevel hierarchy of §5: a level-3 clearance can open level-3
/// data but not level-1 data.
#[test]
fn multilevel_key_hierarchy_integration() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sks_btree::crypto::modes::{cbc_decrypt, cbc_encrypt};
    use sks_btree::crypto::{Des, KeyHierarchy};

    let mut rng = StdRng::seed_from_u64(77);
    let hierarchy = KeyHierarchy::generate(&mut rng, 128, 4);

    // Authority encrypts one record per level.
    let records: Vec<(u32, Vec<u8>)> = (1..=4u32)
        .map(|level| {
            let key = hierarchy.clearance(level).unwrap().cipher_key64();
            let ct = cbc_encrypt(
                &Des::new(key),
                level as u64,
                format!("level-{level} dossier").as_bytes(),
            );
            (level, ct)
        })
        .collect();

    // A user cleared at level 3 derives keys for levels 3 and 4 only.
    let user = hierarchy.clearance(3).unwrap();
    for (level, ct) in &records {
        let derived = user.derive(*level);
        match level {
            3 | 4 => {
                let key = derived.unwrap().cipher_key64();
                let pt = cbc_decrypt(&Des::new(key), *level as u64, ct).unwrap();
                assert_eq!(pt, format!("level-{level} dossier").into_bytes());
            }
            _ => assert!(derived.is_err(), "level {level} must be out of reach"),
        }
    }
}
