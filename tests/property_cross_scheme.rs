//! Property-based cross-crate tests: randomised workloads and randomised
//! design parameters through the full public stack.

use proptest::prelude::*;

use sks_btree::core::disguise::KeyDisguise;
use sks_btree::core::{EncipheredBTree, OvalSubstitution, Scheme, SchemeConfig, SumSubstitution};
use sks_btree::designs::arith::coprime;
use sks_btree::designs::DifferenceSet;
use sks_btree::storage::OpCounters;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Oval substitution is a bijection for any Singer design and any unit
    /// multiplier, and never preserves order for non-trivial multipliers.
    #[test]
    fn oval_bijective_over_random_singer_designs(
        q_idx in 0usize..3,
        t_seed in 2u64..10_000,
    ) {
        let q = [7u64, 13, 31][q_idx];
        let ds = DifferenceSet::singer(q).unwrap();
        let v = ds.v();
        let mut t = t_seed % v;
        while !coprime(t, v) || t <= 1 {
            t = (t + 1) % v.max(2);
        }
        let d = OvalSubstitution::new(ds, t, OpCounters::new()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in (0..v).step_by((v / 64).max(1) as usize) {
            let dk = d.disguise(k).unwrap();
            prop_assert!(seen.insert(dk), "collision at {k}");
            prop_assert_eq!(d.recover(dk).unwrap(), k);
        }
    }

    /// Sum substitution is strictly monotone for any valid (w, capacity).
    #[test]
    fn sum_monotone_over_random_parameters(
        w in 0u64..40,
        cap_extra in 1u64..60,
    ) {
        let ds = DifferenceSet::singer(11).unwrap(); // v = 133
        let capacity = cap_extra.min(133 - 2 - w);
        prop_assume!(capacity >= 1 && w + capacity < 132);
        let d = SumSubstitution::new(ds, w, capacity, OpCounters::new()).unwrap();
        let mut prev = None;
        for k in 0..capacity {
            let dk = d.disguise(k).unwrap();
            if let Some(p) = prev {
                prop_assert!(dk > p, "not monotone at {k}");
            }
            prev = Some(dk);
            prop_assert_eq!(d.recover(dk).unwrap(), k);
        }
    }

    /// A random insert/delete/get workload agrees with BTreeMap under the
    /// oval scheme (the heaviest moving parts: disguise + seals + CLRS
    /// rebalancing together).
    #[test]
    fn oval_tree_matches_model_random_ops(
        ops in proptest::collection::vec((0u8..3, 0u64..150), 1..120),
    ) {
        let mut cfg = SchemeConfig::with_capacity(Scheme::Oval, 160);
        cfg.block_size = 512;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (i, &(op, k)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let rec = vec![(i % 256) as u8; 4];
                    let want = model.insert(k, rec.clone());
                    let got = tree.insert(k, rec).unwrap();
                    prop_assert_eq!(got, want);
                }
                1 => {
                    let want = model.remove(&k);
                    let got = tree.delete(k).unwrap();
                    prop_assert_eq!(got, want);
                }
                _ => {
                    prop_assert_eq!(tree.get(k).unwrap(), model.get(&k).cloned());
                }
            }
        }
        tree.validate().unwrap();
        prop_assert_eq!(tree.len(), model.len() as u64);
    }

    /// Range results equal filtered full scans for every measured scheme on
    /// a random key set.
    #[test]
    fn ranges_equal_filtered_scans(
        keys in proptest::collection::btree_set(1u64..200, 1..60),
        lo in 0u64..200,
        width in 0u64..100,
    ) {
        let hi = lo.saturating_add(width);
        for scheme in [Scheme::Oval, Scheme::SumOfTreatments, Scheme::BayerMetzger] {
            let mut cfg = SchemeConfig::with_capacity(scheme, 220);
            cfg.block_size = 512;
            let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
            for &k in &keys {
                tree.insert(k, k.to_be_bytes().to_vec()).unwrap();
            }
            let got: Vec<u64> = tree.range(lo, hi).unwrap().iter().map(|&(k, _)| k).collect();
            let want: Vec<u64> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
            prop_assert_eq!(got, want, "{}", scheme.name());
        }
    }
}
