//! Backend sweep for the attack harness: the opponent's view of the
//! medium must be *the same medium* whether the enciphered blocks live in
//! simulated RAM or in `nodes.sks` on disk — and the plaintext node cache
//! must leak nothing into either. Leakage metrics computed from the file
//! backend's raw image must match the MemDisk image's.

use sks_btree::attack::{AttackReport, DiskImage, Edge, FormatKnowledge, GroundTruth};
use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig};

const N_KEYS: u64 = 250;
const BLOCK: usize = 512;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_atk_sweep_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn build(scheme: Scheme, dir: Option<&std::path::Path>) -> EncipheredBTree {
    let mut cfg = SchemeConfig::with_capacity(scheme, N_KEYS + 2);
    cfg.block_size = BLOCK;
    if let Some(dir) = dir {
        cfg = cfg.on_disk(dir);
    }
    let mut tree = if dir.is_some() {
        EncipheredBTree::create(cfg).unwrap()
    } else {
        EncipheredBTree::create_in_memory(cfg).unwrap()
    };
    let start = matches!(scheme, Scheme::Exponentiation) as u64;
    for k in start..start + N_KEYS {
        tree.insert(k, format!("secret-{k}").into_bytes()).unwrap();
    }
    // Exercise the plaintext node cache so its (RAM-only) entries exist
    // while the images are taken.
    for k in (start..start + N_KEYS).step_by(3) {
        assert!(tree.get(k).unwrap().is_some());
    }
    // The stolen disk holds the *flushed* state: checkpoint the file
    // backend so both images describe the same dataset.
    tree.flush().unwrap();
    tree
}

fn truth_of(tree: &EncipheredBTree) -> GroundTruth {
    let mut edges = Vec::new();
    let mut keys = Vec::new();
    let mut stack = vec![tree.tree().root_id()];
    while let Some(id) = stack.pop() {
        let node = tree.tree().inspect_node(id).unwrap();
        keys.extend_from_slice(&node.keys);
        for &c in &node.children {
            edges.push(Edge {
                parent: id.as_u32(),
                child: c.as_u32(),
            });
            stack.push(c);
        }
    }
    let key_pairs = tree
        .disguise()
        .map(|d| {
            keys.iter()
                .filter_map(|&k| d.disguise(k).ok().map(|dk| (k, dk)))
                .collect()
        })
        .unwrap_or_default();
    GroundTruth { edges, key_pairs }
}

/// The file backend's `nodes.sks` image is block-for-block the MemDisk
/// image: identical insertion order drives identical allocation and
/// deterministic encipherment, and nothing RAM-side (buffer pool frames,
/// plaintext node cache) dribbles extra state onto either medium.
#[test]
fn file_backend_node_image_matches_memdisk() {
    for scheme in [Scheme::Oval, Scheme::SumOfTreatments, Scheme::BayerMetzger] {
        let dir = tmpdir(scheme.name());
        let mem = build(scheme, None);
        let file = build(scheme, Some(&dir));
        let mem_img = mem.raw_node_image().unwrap();
        let file_img = file.raw_node_image().unwrap();
        assert_eq!(
            mem_img.len(),
            file_img.len(),
            "{}: device lengths differ",
            scheme.name()
        );
        for (i, (m, f)) in mem_img.iter().zip(&file_img).enumerate() {
            assert_eq!(m, f, "{}: block {i} differs across backends", scheme.name());
        }
        drop(file);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Full attack run against both backends: every leakage metric the
/// harness computes must agree — the backend changes *where* the
/// opponent's view lives, never what it contains (ROADMAP PR-2 open
/// item).
#[test]
fn leakage_metrics_agree_across_backends() {
    for scheme in [Scheme::Oval, Scheme::SumOfTreatments] {
        let dir = tmpdir(&format!("metrics_{}", scheme.name()));
        let mem = build(scheme, None);
        let file = build(scheme, Some(&dir));
        let report = |tree: &EncipheredBTree, name: &str| {
            let image = DiskImage::new(BLOCK, tree.raw_node_image().unwrap());
            AttackReport::run(name, &image, &FormatKnowledge::default(), &truth_of(tree))
        };
        let rm = report(&mem, "memory");
        let rf = report(&file, "file");
        assert_eq!(
            rm.shape.recall,
            rf.shape.recall,
            "{}: shape recall diverged",
            scheme.name()
        );
        assert_eq!(
            rm.shape.precision,
            rf.shape.precision,
            "{}: shape precision diverged",
            scheme.name()
        );
        // The paper's scheme resists shape recovery on disk exactly as it
        // does in RAM.
        if scheme == Scheme::Oval {
            assert!(rf.shape.recall < 0.2, "oval recall {}", rf.shape.recall);
        }
        drop(file);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// No plaintext record bytes or raw key-field plaintext in the on-disk
/// files, with the node cache enabled and warm — cached plaintext is
/// RAM-only.
#[test]
fn warm_cache_leaks_nothing_to_the_files() {
    let dir = tmpdir("warm_cache_files");
    let tree = build(Scheme::Oval, Some(&dir));
    assert!(tree.cached_nodes() > 0, "cache should be warm");
    for name in ["nodes.sks", "data.sks", "manifest.sks"] {
        let raw = std::fs::read(dir.join(name)).unwrap();
        assert!(
            !raw.windows(7).any(|w| w == b"secret-"),
            "record plaintext leaked into {name}"
        );
    }
    drop(tree);
    std::fs::remove_dir_all(&dir).ok();
}
