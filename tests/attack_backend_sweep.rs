//! Backend sweep for the attack harness: the opponent's view of the
//! medium must be *the same medium* whether the enciphered blocks live in
//! simulated RAM or in `nodes.sks` on disk — and the plaintext node cache
//! must leak nothing into either. Leakage metrics computed from the file
//! backend's raw image must match the MemDisk image's.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sks_btree::attack::{AttackReport, DiskImage, Edge, FormatKnowledge, GroundTruth};
use sks_btree::core::{EncipheredBTree, Scheme, SchemeConfig};

const N_KEYS: u64 = 250;
const BLOCK: usize = 512;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sks_atk_sweep_{}_{}_{}",
        std::process::id(),
        name,
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn build(scheme: Scheme, dir: Option<&std::path::Path>) -> EncipheredBTree {
    let mut cfg = SchemeConfig::with_capacity(scheme, N_KEYS + 2);
    cfg.block_size = BLOCK;
    if let Some(dir) = dir {
        cfg = cfg.on_disk(dir);
    }
    let mut tree = if dir.is_some() {
        EncipheredBTree::create(cfg).unwrap()
    } else {
        EncipheredBTree::create_in_memory(cfg).unwrap()
    };
    let start = matches!(scheme, Scheme::Exponentiation) as u64;
    for k in start..start + N_KEYS {
        tree.insert(k, format!("secret-{k}").into_bytes()).unwrap();
    }
    // Exercise the plaintext node cache so its (RAM-only) entries exist
    // while the images are taken.
    for k in (start..start + N_KEYS).step_by(3) {
        assert!(tree.get(k).unwrap().is_some());
    }
    // The stolen disk holds the *flushed* state: checkpoint the file
    // backend so both images describe the same dataset.
    tree.flush().unwrap();
    tree
}

fn truth_of(tree: &EncipheredBTree) -> GroundTruth {
    let mut edges = Vec::new();
    let mut keys = Vec::new();
    let mut stack = vec![tree.tree().root_id()];
    while let Some(id) = stack.pop() {
        let node = tree.tree().inspect_node(id).unwrap();
        keys.extend_from_slice(&node.keys);
        for &c in &node.children {
            edges.push(Edge {
                parent: id.as_u32(),
                child: c.as_u32(),
            });
            stack.push(c);
        }
    }
    let key_pairs = tree
        .disguise()
        .map(|d| {
            keys.iter()
                .filter_map(|&k| d.disguise(k).ok().map(|dk| (k, dk)))
                .collect()
        })
        .unwrap_or_default();
    GroundTruth { edges, key_pairs }
}

/// The file backend's `nodes.sks` image is block-for-block the MemDisk
/// image: identical insertion order drives identical allocation and
/// deterministic encipherment, and nothing RAM-side (buffer pool frames,
/// plaintext node cache) dribbles extra state onto either medium.
#[test]
fn file_backend_node_image_matches_memdisk() {
    for scheme in [Scheme::Oval, Scheme::SumOfTreatments, Scheme::BayerMetzger] {
        let dir = tmpdir(scheme.name());
        let mem = build(scheme, None);
        let file = build(scheme, Some(&dir));
        let mem_img = mem.raw_node_image().unwrap();
        let file_img = file.raw_node_image().unwrap();
        assert_eq!(
            mem_img.len(),
            file_img.len(),
            "{}: device lengths differ",
            scheme.name()
        );
        for (i, (m, f)) in mem_img.iter().zip(&file_img).enumerate() {
            assert_eq!(m, f, "{}: block {i} differs across backends", scheme.name());
        }
        drop(file);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Full attack run against both backends: every leakage metric the
/// harness computes must agree — the backend changes *where* the
/// opponent's view lives, never what it contains (ROADMAP PR-2 open
/// item).
#[test]
fn leakage_metrics_agree_across_backends() {
    for scheme in [Scheme::Oval, Scheme::SumOfTreatments] {
        let dir = tmpdir(&format!("metrics_{}", scheme.name()));
        let mem = build(scheme, None);
        let file = build(scheme, Some(&dir));
        let report = |tree: &EncipheredBTree, name: &str| {
            let image = DiskImage::new(BLOCK, tree.raw_node_image().unwrap());
            AttackReport::run(name, &image, &FormatKnowledge::default(), &truth_of(tree))
        };
        let rm = report(&mem, "memory");
        let rf = report(&file, "file");
        assert_eq!(
            rm.shape.recall,
            rf.shape.recall,
            "{}: shape recall diverged",
            scheme.name()
        );
        assert_eq!(
            rm.shape.precision,
            rf.shape.precision,
            "{}: shape precision diverged",
            scheme.name()
        );
        // The paper's scheme resists shape recovery on disk exactly as it
        // does in RAM.
        if scheme == Scheme::Oval {
            assert!(rf.shape.recall < 0.2, "oval recall {}", rf.shape.recall);
        }
        drop(file);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// One deterministic delete/reinsert churn workload with compaction and
/// the record cache enabled; compacts every `COMPACT_EVERY` ops and to
/// quiescence at the end, then checkpoints.
fn churn(tree: &mut EncipheredBTree, ops: &[(u8, u64, usize)]) -> BTreeMap<u64, Vec<u8>> {
    const COMPACT_EVERY: usize = 40;
    let mut model = BTreeMap::new();
    for (i, &(op, key, vlen)) in ops.iter().enumerate() {
        if op < 2 {
            let mut v = format!("churn-{key}-").into_bytes();
            let fill = v.len() + vlen;
            v.resize(fill, 0xC3 ^ key as u8);
            tree.insert(key, v.clone()).unwrap();
            model.insert(key, v);
        } else {
            assert_eq!(tree.delete(key).unwrap(), model.remove(&key));
        }
        if i % COMPACT_EVERY == COMPACT_EVERY - 1 {
            tree.compact_step(8).unwrap();
        }
    }
    // Roll the open fill block before the final sweep: compaction never
    // touches the block currently being filled, so a delete that landed
    // there would otherwise survive every pass. A max-size sentinel
    // record (key 285, outside the ops' 0..280 key range) forces a fresh
    // fill block; the old one becomes an ordinary compaction victim.
    let sentinel = vec![0x5E; tree.max_record_len()];
    tree.insert(285, sentinel.clone()).unwrap();
    model.insert(285, sentinel);
    while tree.compact_step(64).unwrap().freed_blocks > 0 {}
    tree.flush().unwrap();
    model
}

fn churn_config(scheme: Scheme, dir: Option<&std::path::Path>) -> SchemeConfig {
    let mut cfg = SchemeConfig::with_capacity(scheme, 300)
        .node_cache(512)
        .record_cache(512)
        .compaction(8);
    cfg.block_size = BLOCK;
    if let Some(dir) = dir {
        cfg = cfg.on_disk(dir);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Delete/reinsert-heavy workloads on the file backend: compaction
    /// keeps the data device bounded by the live set (tombstones are
    /// reclaimed, reclaimed blocks are reused), the logical contents
    /// equal the model, and the medium never holds record plaintext.
    #[test]
    fn compaction_bounds_file_backend_space(
        ops in proptest::collection::vec((0u8..4, 0u64..280, 1usize..60), 50..400),
    ) {
        let dir = tmpdir("space_bound");
        let mut tree = EncipheredBTree::create(churn_config(Scheme::Oval, Some(&dir))).unwrap();
        let model = churn(&mut tree, &ops);
        prop_assert_eq!(tree.pending_tombstones().unwrap(), 0,
            "full compaction leaves no reclaimable garbage");
        // Bounded space: a fully compacted store is at worst ~2x as many
        // live blocks as a fresh bulk build of the same live set (packing
        // slack), plus the superblock and one open fill block.
        let (total, free) = tree.data_block_usage();
        let used = total - free;
        let fresh_cfg = churn_config(Scheme::Oval, None);
        let mut fresh = EncipheredBTree::create_in_memory(fresh_cfg).unwrap();
        for (&k, v) in &model {
            fresh.insert(k, v.clone()).unwrap();
        }
        let (fresh_total, fresh_free) = fresh.data_block_usage();
        let fresh_used = fresh_total - fresh_free;
        prop_assert!(used <= 2 * fresh_used + 2,
            "space leak: {} used blocks for a live set a fresh build stores in {}",
            used, fresh_used);
        // Contents equal the model, byte for byte.
        for (&k, v) in &model {
            prop_assert_eq!(tree.get(k).unwrap().as_ref(), Some(v), "key {}", k);
        }
        tree.validate().unwrap();
        // The stolen files still leak no record plaintext.
        for name in ["nodes.sks", "data.sks"] {
            let raw = std::fs::read(dir.join(name)).unwrap();
            prop_assert!(!raw.windows(6).any(|w| w == b"churn-"),
                "record plaintext leaked into {}", name);
        }
        drop(tree);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// With the record cache and compaction enabled, the raw images stay
/// identical across backends on every *live* block, and the free sets
/// coincide — the backend changes where the opponent's view lives, never
/// what the live medium contains. (Freed blocks are masked: MemDisk
/// models a non-scrubbing medium that keeps stale ciphertext, while the
/// file backend rewrites its intrusive free chain through them; neither
/// ever holds plaintext, which the sweep above pins.)
#[test]
fn images_agree_across_backends_with_compaction_and_record_cache() {
    // Deterministic churn: build, delete a stripe, reinsert a stripe.
    let ops: Vec<(u8, u64, usize)> = (0..N_KEYS)
        .map(|k| (0u8, k, 20 + (k % 30) as usize))
        .chain((0..N_KEYS).filter(|k| k % 3 != 0).map(|k| (2u8, k, 0)))
        .chain((0..N_KEYS).filter(|k| k % 6 == 1).map(|k| (1u8, k, 45)))
        .collect();
    let dir = tmpdir("image_agree");
    let mut mem = EncipheredBTree::create_in_memory(churn_config(Scheme::Oval, None)).unwrap();
    let mut file = EncipheredBTree::create(churn_config(Scheme::Oval, Some(&dir))).unwrap();
    let model_mem = churn(&mut mem, &ops);
    let model_file = churn(&mut file, &ops);
    assert_eq!(model_mem, model_file);

    let (mem_node_free, mem_data_free) = mem.free_block_ids();
    let (file_node_free, file_data_free) = file.free_block_ids();
    let sorted = |mut v: Vec<u32>| {
        v.sort_unstable();
        v
    };
    assert_eq!(
        sorted(mem_node_free.clone()),
        sorted(file_node_free),
        "node free sets diverged"
    );
    assert_eq!(
        sorted(mem_data_free.clone()),
        sorted(file_data_free),
        "data free sets diverged"
    );
    assert!(
        !mem_data_free.is_empty(),
        "the workload must actually exercise compaction"
    );

    for (label, mem_img, file_img, free) in [
        (
            "nodes",
            mem.raw_node_image().unwrap(),
            file.raw_node_image().unwrap(),
            sorted(mem_node_free),
        ),
        (
            "data",
            mem.raw_data_image().unwrap(),
            file.raw_data_image().unwrap(),
            sorted(mem_data_free),
        ),
    ] {
        assert_eq!(
            mem_img.len(),
            file_img.len(),
            "{label}: device lengths differ"
        );
        for (i, (m, f)) in mem_img.iter().zip(&file_img).enumerate() {
            if free.binary_search(&(i as u32)).is_ok() {
                continue;
            }
            assert_eq!(m, f, "{label}: live block {i} differs across backends");
        }
    }
    drop(file);
    std::fs::remove_dir_all(&dir).ok();
}

/// No plaintext record bytes or raw key-field plaintext in the on-disk
/// files, with the node cache enabled and warm — cached plaintext is
/// RAM-only.
#[test]
fn warm_cache_leaks_nothing_to_the_files() {
    let dir = tmpdir("warm_cache_files");
    let tree = build(Scheme::Oval, Some(&dir));
    assert!(tree.cached_nodes() > 0, "cache should be warm");
    for name in ["nodes.sks", "data.sks", "manifest.sks"] {
        let raw = std::fs::read(dir.join(name)).unwrap();
        assert!(
            !raw.windows(7).any(|w| w == b"secret-"),
            "record plaintext leaked into {name}"
        );
    }
    drop(tree);
    std::fs::remove_dir_all(&dir).ok();
}
