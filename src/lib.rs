//! # sks-btree — Search Key Substitution in the Encipherment of B-Trees
//!
//! A reproduction of Hardjono & Seberry, *"Search Key Substitution in the
//! Encipherment of B-Trees"*, VLDB 1990. This facade crate re-exports the
//! whole workspace:
//!
//! * [`designs`] — combinatorial block designs (difference sets, projective
//!   planes, ovals) and the number-theoretic substrate.
//! * [`crypto`] — from-scratch DES, RSA, cipher modes, page-key derivation,
//!   and the multilevel key hierarchy of §5.
//! * [`storage`] — simulated block devices, buffer pool, and I/O counters.
//! * [`btree`] — the disk B-tree of `[search key, data pointer, tree pointer]`
//!   triplets with pluggable node codecs.
//! * [`core`] — the paper's contribution: key disguises (§4.1–§4.3), node
//!   encipherment codecs (§3, §5), the [`core::EncipheredBTree`] API and the
//!   high-level [`core::SecurityFilter`].
//! * [`attack`] — the opponent of §4.1/§6: shape reconstruction from raw
//!   disk images and how well each scheme resists it.
//!
//! ## Quickstart
//!
//! ```
//! use sks_btree::core::{EncipheredBTree, SchemeConfig, Scheme};
//!
//! // A design sized for up to 2048 keys (v >> R, §4 of the paper).
//! let config = SchemeConfig::with_capacity(Scheme::Oval, 2048);
//! let mut tree = EncipheredBTree::create_in_memory(config).unwrap();
//! for key in [17u64, 3, 250, 99, 1024] {
//!     tree.insert(key, format!("record-{key}").into_bytes()).unwrap();
//! }
//! assert_eq!(tree.get(99).unwrap().unwrap(), b"record-99");
//! assert_eq!(tree.len(), 5);
//! ```
//!
//! **Security warning:** the DES and RSA implementations exist to reproduce a
//! 1990 paper faithfully. Do not use them to protect real data.

pub use sks_attack as attack;
pub use sks_btree_core as btree;
pub use sks_core as core;
pub use sks_crypto as crypto;
pub use sks_designs as designs;
pub use sks_engine as engine;
pub use sks_storage as storage;
