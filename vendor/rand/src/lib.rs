//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no registry access, so the
//! real crate is replaced by this vendored, deterministic stand-in:
//! xoshiro256** seeded via splitmix64, the same generator family the real
//! `rand::rngs::SmallRng` uses.
//!
//! Covered surface: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool, fill_bytes}`, `seq::SliceRandom`.
//! Anything else the real crate offers is intentionally absent so that new
//! uses fail loudly at compile time rather than silently diverging.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible uniformly over their whole value range (the shim's
/// analogue of sampling from `rand::distributions::Standard`).
pub trait SampleStandard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_ints {
    ($($t:ty),+) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_ints {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply range reduction; bias is < 2^-64 per
                // draw, irrelevant for test workloads.
                let x = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + x) as $t
            }
        }
    )+};
}
uniform_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + u128::sample(rng) % (hi - lo)
    }
}

/// The user-facing convenience trait, blanket-implemented for every
/// [`RngCore`] just like the real crate.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding; only the `seed_from_u64` entry point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.gen_range(0..3);
            assert!(y < 3);
            let z: u128 = rng.gen_range(5..1 << 100);
            assert!((5..1 << 100).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_fills_oddly_sized_buffers() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
