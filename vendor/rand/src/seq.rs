//! Slice helpers (`rand::seq` subset).

use crate::{RngCore, SampleUniform};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
