//! Collection strategies: `vec` and `btree_set` with a size range.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vector of `element` samples with a length drawn from `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}

pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_size(rng, &self.sizes);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Ordered set of `element` samples; duplicates collapse, so the resulting
/// set can be smaller than the drawn size (same contract as the real
/// crate's post-dedup behaviour).
pub fn btree_set<S>(element: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, sizes }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_size(rng, &self.sizes);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

fn sample_size(rng: &mut TestRng, sizes: &Range<usize>) -> usize {
    assert!(sizes.start < sizes.end, "empty size range");
    sizes.start + rng.below((sizes.end - sizes.start) as u64) as usize
}
