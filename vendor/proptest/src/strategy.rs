//! The [`Strategy`] trait and the primitive strategies.
//!
//! Unlike the real crate there is no value tree and no shrinking: a
//! strategy is just a deterministic sampler over the case RNG.

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRng;

/// A sampler of test-case values. Object safe so `prop_oneof!` can erase
/// heterogeneous strategy types.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

/// Integer types samplable from range strategies.
pub trait RangeValue: Copy {
    const MIN: Self;
    const MAX: Self;

    fn from_offset(lo: Self, offset: u128) -> Self;

    /// `hi - lo` as a width, `None` when the span covers the whole domain
    /// (so a raw draw is uniform already).
    fn span(lo: Self, hi_inclusive: Self) -> Option<u128>;
}

macro_rules! range_value {
    ($($t:ty),+) => {$(
        impl RangeValue for $t {
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;

            fn from_offset(lo: Self, offset: u128) -> Self {
                ((lo as i128) + offset as i128) as $t
            }

            fn span(lo: Self, hi_inclusive: Self) -> Option<u128> {
                let w = (hi_inclusive as i128).wrapping_sub(lo as i128) as u128;
                w.checked_add(1)
            }
        }
    )+};
}
range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for u128 {
    const MIN: Self = u128::MIN;
    const MAX: Self = u128::MAX;

    fn from_offset(lo: Self, offset: u128) -> Self {
        lo.wrapping_add(offset)
    }

    fn span(lo: Self, hi_inclusive: Self) -> Option<u128> {
        (hi_inclusive - lo).checked_add(1)
    }
}

fn sample_inclusive<T: RangeValue>(rng: &mut TestRng, lo: T, hi: T) -> T {
    match T::span(lo, hi) {
        None => T::from_offset(T::MIN, rng.next_u128()),
        Some(span) => {
            // Double-width reduction keeps u128 spans uniform enough.
            let draw = rng.next_u128() % span;
            T::from_offset(lo, draw)
        }
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let span = T::span(self.start, self.end).expect("non-degenerate range");
        assert!(span > 1, "empty range strategy");
        T::from_offset(self.start, rng.next_u128() % (span - 1))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        sample_inclusive(rng, *self.start(), *self.end())
    }
}

impl<T: RangeValue> Strategy for RangeFrom<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        sample_inclusive(rng, self.start, T::MAX)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);
