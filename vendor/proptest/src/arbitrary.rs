//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
