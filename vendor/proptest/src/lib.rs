//! Offline shim implementing the subset of the `proptest` 1.x API this
//! workspace uses. The build environment has no registry access, so the
//! real crate is replaced by this vendored stand-in: deterministic seeded
//! random sampling without shrinking (a failing case prints its inputs via
//! the panic message; there is no minimisation pass).
//!
//! Covered surface: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `any::<T>()`, integer range strategies,
//! tuple strategies, `Just`, `prop_oneof!`, `proptest::collection::{vec,
//! btree_set}`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `ProptestConfig::with_cases`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Property-test harness macro. Each generated `#[test]` runs
/// `config.cases` deterministic cases; the case body runs inside a closure
/// so `prop_assume!` can skip a case with an early return.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __body = || {
                        $body
                    };
                    __body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold. Only valid
/// inside a `proptest!` body (it returns from the per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __choices: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::strategy::OneOf::new(__choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(a in 3u64..17, b in 0u8..4, c in 1u128..) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 4);
            prop_assert!(c >= 1);
        }

        #[test]
        fn tuples_and_collections(
            ops in crate::collection::vec((any::<bool>(), 0u64..50), 1..40),
            keys in crate::collection::btree_set(0u64..100, 0..20),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 40);
            prop_assert!(ops.iter().all(|&(_, k)| k < 50));
            prop_assert!(keys.len() < 20);
            prop_assert!(keys.iter().all(|&k| k < 100));
        }

        #[test]
        fn oneof_and_just(size in prop_oneof![Just(128usize), Just(256), Just(512)]) {
            prop_assert!([128, 256, 512].contains(&size));
        }

        #[test]
        fn assume_skips(v in 0u64..10) {
            prop_assume!(v != 3);
            prop_assert!(v != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_compiles(x in 0u64..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn any_covers_value_space_roughly() {
        let mut rng = crate::test_runner::TestRng::deterministic("coverage");
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..64 {
            match Strategy::sample(&any::<bool>(), &mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
        }
        assert!(seen_true && seen_false);
    }
}
