//! Test-run configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim trades depth for suite
        // wall-clock since there is no shrinking to amortise.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic per-property RNG: seeded from the property name so every
/// run of the suite exercises the same cases (reproducible CI).
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}
