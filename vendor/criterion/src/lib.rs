//! Offline shim implementing the subset of the `criterion` 0.5 API this
//! workspace uses. The build environment has no registry access, so the
//! real harness is replaced by a small timing loop: per benchmark it warms
//! up, runs `sample_size` samples sized to fit the configured measurement
//! time, and prints mean/min per-iteration wall-clock (plus throughput when
//! configured). There are no statistical comparisons, plots or saved
//! baselines.
//!
//! Covered surface: `criterion_group!` (both forms), `criterion_main!`,
//! `Criterion::{default, sample_size, measurement_time, warm_up_time,
//! benchmark_group}`, `BenchmarkGroup::{bench_function, throughput,
//! finish}`, `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Hard ceiling per benchmark so shim runs stay interactive even when a
/// caller configures multi-second measurement windows. Override with the
/// `SKS_BENCH_MEASURE_MS` environment variable.
fn measurement_cap() -> Duration {
    std::env::var("SKS_BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(300))
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2);
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for CLI compatibility; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: discover a per-iteration estimate.
        let warmup_deadline = Instant::now() + self.criterion.warm_up_time.min(measurement_cap());
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        while Instant::now() < warmup_deadline {
            bencher.iters = 1;
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;

        // Measurement: `sample_size` samples filling the measurement window.
        let budget = self
            .criterion
            .measurement_time
            .min(measurement_cap())
            .as_nanos();
        let samples = self.criterion.sample_size as u128;
        let iters_per_sample = (budget / samples / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut means: Vec<f64> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            means.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let best = means[0];
        let median = means[means.len() / 2];

        let mut line = String::new();
        let _ = write!(
            line,
            "  {:<40} median {:>12}  best {:>12}",
            format!("{}/{}", self.name, id.label),
            format_ns(median),
            format_ns(best),
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 / (median / 1e9);
            let _ = write!(line, "  thrpt {:>12.0} {unit}", rate);
        }
        println!("{line}");
        self
    }

    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter("add"), |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        group.bench_function(BenchmarkId::new("named", 7), |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn harness_runs_quickly() {
        std::env::set_var("SKS_BENCH_MEASURE_MS", "20");
        let start = Instant::now();
        let mut c = Criterion::default().sample_size(3);
        trivial_bench(&mut c);
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn group_macro_produces_runner() {
        std::env::set_var("SKS_BENCH_MEASURE_MS", "20");
        smoke();
    }
}
