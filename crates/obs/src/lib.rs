//! # sks-obs — physical observability for the enciphered B-tree stack
//!
//! The paper's *logical* cost model (decrypts per visit, re-encipherments
//! per reorganisation) is counted exactly by `OpCounters` in `sks-storage`.
//! This crate adds the *physical* side: where wall-clock time goes on the
//! write path (seal → WAL append → fsync → node re-seal), per-operation
//! latency distributions, and a bounded flight recorder of recent events
//! for post-mortem dumps.
//!
//! Design constraints, in order:
//!
//! 1. **Telemetry never leaks plaintext.** Events carry op kinds, partition
//!    ids, block ids, byte counts and durations — never key or value bytes.
//! 2. **Off is near-zero.** [`Obs`] is an `Option<Arc<..>>`; at
//!    [`Level::Off`] every probe is a `None` check, no clock reads, no
//!    allocation, no locks.
//! 3. **Counting stays exact.** Nothing here touches the logical paper
//!    counters; toggling the level must (and, by test, does) leave every
//!    `OpCounters` field byte-identical.
//!
//! The histogram is the classic log-linear (HDR-style) layout: buckets
//! index by `(exponent, 3-bit sub-bucket)`, giving ≤ 12.5 % relative error
//! per bucket over the full `u64` range in 512 lock-free atomic cells.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much observability the stack pays for.
///
/// Levels are cumulative: each one includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// No clocks, no events, no histograms. Probes compile down to a
    /// `None` check on an `Option`.
    Off,
    /// Logical + physical counters only (the pre-existing `OpCounters`
    /// behaviour) plus *rare* flight-recorder events — checkpoints,
    /// recovery, compaction, fault scrubs. No per-op clock reads.
    #[default]
    Counters,
    /// Adds stage/latency histograms: every probe point reads the
    /// monotonic clock and records into a lock-free histogram.
    Histograms,
    /// Adds hot-path flight-recorder events (one per engine operation),
    /// behind a mutex-guarded ring buffer.
    FullTrace,
}

impl Level {
    /// Stable lower-case name (used in stats JSON and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Counters => "counters",
            Level::Histograms => "histograms",
            Level::FullTrace => "full_trace",
        }
    }

    /// Parses [`Level::name`] output (and a few obvious aliases).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "counters" => Some(Level::Counters),
            "histograms" | "hist" => Some(Level::Histograms),
            "full_trace" | "fulltrace" | "trace" => Some(Level::FullTrace),
            _ => None,
        }
    }

    /// All levels, lowest to highest (for sweeping tests).
    pub const ALL: [Level; 4] = [
        Level::Off,
        Level::Counters,
        Level::Histograms,
        Level::FullTrace,
    ];
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Enough for the full u64 range: exponent 60 → index 488..=495.
const BUCKETS: usize = 512;

/// A lock-free log-linear histogram of `u64` samples (nanoseconds, bytes —
/// any non-negative magnitude). Recording is wait-free (`fetch_add`);
/// snapshots are racy-but-consistent-enough, as histogram snapshots are.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample. Values below 8 map 1:1; above, the top
/// `1 + SUB_BITS` bits select the bucket, so relative error ≤ 1/8.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let exp = msb - SUB_BITS;
        let sub = ((v >> exp) as usize) & (SUBS - 1);
        (((exp + 1) as usize) << SUB_BITS) | sub
    }
}

/// Lowest sample value mapping to bucket `idx` (inverse of
/// [`bucket_index`]); the snapshot reports the bucket midpoint.
fn bucket_low(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let exp = (idx >> SUB_BITS) as u32 - 1;
        let sub = (idx & (SUBS - 1)) as u64;
        (SUBS as u64 + sub) << exp
    }
}

fn bucket_mid(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let exp = (idx >> SUB_BITS) as u32 - 1;
        bucket_low(idx) + (1u64 << exp) / 2
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds another histogram into this one (mergeability: per-partition
    /// histograms combine into the engine-wide view).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Owned point-in-time copy, sparse (only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((idx as u16, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Owned, mergeable snapshot of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded samples (exact, from the sum).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]` — the midpoint of the bucket
    /// holding the `ceil(q·count)`-th sample, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx as usize).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (snapshot-level merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u16, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(ai, an)), Some(&(bi, bn))) => {
                    if ai == bi {
                        merged.push((ai, an + bn));
                        i += 1;
                        j += 1;
                    } else if ai < bi {
                        merged.push((ai, an));
                        i += 1;
                    } else {
                        merged.push((bi, bn));
                        j += 1;
                    }
                }
                (Some(&a), None) => {
                    merged.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// Named timing points on the storage/engine paths. One histogram per
/// stage; the write-path breakdown in `stats()` is built from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Physical block read from a device.
    BlockRead,
    /// Physical block write to a device.
    BlockWrite,
    /// Device fsync outside the WAL (checkpoint flushes).
    StoreFsync,
    /// Enciphering a B-tree node into its sealed page (`write_node`).
    NodeSeal,
    /// Deciphering a sealed page into a node (`read_node` cache miss).
    NodeUnseal,
    /// Sealing a record into its data block (insert path).
    RecordSeal,
    /// Unsealing a record from its data block (get-path cache miss).
    RecordUnseal,
    /// Building + buffering one WAL frame (append and tail write).
    WalAppend,
    /// WAL commit fsync (one per group-commit batch).
    WalFsync,
    /// Record-store compaction pass (data blocks).
    CompactData,
    /// Node-device compaction pass.
    CompactNodes,
    /// Checkpoint phase 2: per-partition flush work.
    CheckpointFlush,
    /// Checkpoint phase 3: WAL cut + swap.
    CheckpointCut,
    /// Sealing one staged group-commit batch into its WAL frame (one
    /// Speck-CTR pass over the whole batch body instead of per record).
    SealBatch,
    /// Waiting for a free swap buffer in the double-buffered WAL writer
    /// (back-pressure from the in-flight write/fsync of the other buffer).
    WalSwap,
    /// Persisting the reverse index (delta segment or full rewrite) at
    /// flush/checkpoint time.
    IndexFlush,
    /// Applying one grouped replay batch through the bulk-fill path
    /// during recovery.
    ReplayBatch,
    /// One multi-key transaction commit end to end: lock acquisition,
    /// conflict check, WAL frame, durability wait, and tree apply. Not
    /// part of the write-path breakdown sum — it *contains* WalAppend /
    /// WalFsync time, which the breakdown already attributes.
    TxnCommit,
}

impl Stage {
    pub const COUNT: usize = 18;

    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::BlockRead,
        Stage::BlockWrite,
        Stage::StoreFsync,
        Stage::NodeSeal,
        Stage::NodeUnseal,
        Stage::RecordSeal,
        Stage::RecordUnseal,
        Stage::WalAppend,
        Stage::WalFsync,
        Stage::CompactData,
        Stage::CompactNodes,
        Stage::CheckpointFlush,
        Stage::CheckpointCut,
        Stage::SealBatch,
        Stage::WalSwap,
        Stage::IndexFlush,
        Stage::ReplayBatch,
        Stage::TxnCommit,
    ];

    /// Stable snake_case name (stats JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::BlockRead => "block_read",
            Stage::BlockWrite => "block_write",
            Stage::StoreFsync => "store_fsync",
            Stage::NodeSeal => "node_seal",
            Stage::NodeUnseal => "node_unseal",
            Stage::RecordSeal => "record_seal",
            Stage::RecordUnseal => "record_unseal",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::CompactData => "compact_data",
            Stage::CompactNodes => "compact_nodes",
            Stage::CheckpointFlush => "checkpoint_flush",
            Stage::CheckpointCut => "checkpoint_cut",
            Stage::SealBatch => "seal_batch",
            Stage::WalSwap => "wal_swap",
            Stage::IndexFlush => "index_flush",
            Stage::ReplayBatch => "replay_batch",
            Stage::TxnCommit => "txn_commit",
        }
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// What a flight-recorder [`Event`] describes. Hot-path kinds (engine ops)
/// are recorded only at [`Level::FullTrace`]; the rest are rare enough to
/// record from [`Level::Counters`] up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Engine point read. `a` = sealed value bytes returned (0 on miss).
    Get,
    /// Engine insert. `a` = value bytes.
    Put,
    /// Engine delete. `a` = 1 if the key existed.
    Delete,
    /// Engine range scan. `a` = records yielded.
    Range,
    /// Engine batch. `a` = operations in the batch.
    Batch,
    /// Checkpoint started. `a` = WAL records at the mark.
    CheckpointBegin,
    /// One checkpoint phase finished. `a` = phase ordinal (1-based).
    CheckpointPhase,
    /// Checkpoint finished. `a` = WAL records carried over the cut.
    CheckpointEnd,
    /// Compaction pass finished. `a` = records moved, `b` = blocks freed.
    Compaction,
    /// Orphan sweep inside a compaction pass. `a` = slots examined,
    /// `b` = orphans collected.
    OrphanSweep,
    /// Background worker fired. `a` = 0 checkpoint, 1 flush-dirtiest.
    AutoWork,
    /// Recovery began. `a` = WAL blocks on disk.
    RecoveryStart,
    /// One WAL record replayed (FullTrace) — `a` = seq, `b` = bytes.
    RecoveryReplay,
    /// Recovery finished. `a` = records replayed, `b` = records skipped.
    RecoveryEnd,
    /// A torn WAL tail was scrubbed. `a` = byte offset of the cut,
    /// `b` = bytes discarded.
    TornTailScrub,
    /// WAL group commit forced a sync. `a` = commits in the batch.
    GroupCommit,
    /// Buffer-pool eviction wrote back a dirty frame. `a` = block id.
    Eviction,
    /// Transaction began. `a` = snapshot epoch it reads at.
    TxnBegin,
    /// Transaction committed. `a` = keys written, `b` = partitions spanned.
    TxnCommit,
    /// Transaction aborted (explicitly or by drop). `a` = keys buffered.
    TxnAbort,
    /// A commit lost first-committer-wins validation. Carries the
    /// conflicting *partition* only — never the key, like every event.
    TxnConflict,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Get => "get",
            EventKind::Put => "put",
            EventKind::Delete => "delete",
            EventKind::Range => "range",
            EventKind::Batch => "batch",
            EventKind::CheckpointBegin => "checkpoint_begin",
            EventKind::CheckpointPhase => "checkpoint_phase",
            EventKind::CheckpointEnd => "checkpoint_end",
            EventKind::Compaction => "compaction",
            EventKind::OrphanSweep => "orphan_sweep",
            EventKind::AutoWork => "auto_work",
            EventKind::RecoveryStart => "recovery_start",
            EventKind::RecoveryReplay => "recovery_replay",
            EventKind::RecoveryEnd => "recovery_end",
            EventKind::TornTailScrub => "torn_tail_scrub",
            EventKind::GroupCommit => "group_commit",
            EventKind::Eviction => "eviction",
            EventKind::TxnBegin => "txn_begin",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnAbort => "txn_abort",
            EventKind::TxnConflict => "txn_conflict",
        }
    }

    /// Hot-path kinds are FullTrace-only; everything else records from
    /// Counters up.
    fn hot(self) -> bool {
        matches!(
            self,
            EventKind::Get
                | EventKind::Put
                | EventKind::Delete
                | EventKind::Range
                | EventKind::Batch
                | EventKind::RecoveryReplay
                | EventKind::GroupCommit
                | EventKind::Eviction
                | EventKind::TxnBegin
                | EventKind::TxnCommit
        )
    }
}

/// Marker for "no partition" in [`Event::partition`].
pub const NO_PARTITION: u32 = u32::MAX;

/// One structured flight-recorder entry. Carries magnitudes and ids only —
/// never key or value plaintext (enforced by the attack-sweep test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the recorder's epoch (process-relative).
    pub at_micros: u64,
    pub kind: EventKind,
    /// Partition index, or [`NO_PARTITION`].
    pub partition: u32,
    /// Kind-specific magnitude (bytes, counts, ordinals — see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific magnitude.
    pub b: u64,
    /// Duration of the event in nanoseconds (0 when instantaneous).
    pub dur_ns: u64,
}

impl Event {
    /// One-line human rendering, e.g.
    /// `+12.345ms checkpoint_end p=* a=3 b=0 (1.2ms)`.
    pub fn render(&self) -> String {
        let part = if self.partition == NO_PARTITION {
            "*".to_string()
        } else {
            self.partition.to_string()
        };
        format!(
            "+{:.3}ms {} p={} a={} b={} ({:.3}ms)",
            self.at_micros as f64 / 1000.0,
            self.kind.name(),
            part,
            self.a,
            self.b,
            self.dur_ns as f64 / 1_000_000.0,
        )
    }
}

/// Bounded ring buffer of recent [`Event`]s.
#[derive(Debug)]
struct FlightRecorder {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
}

impl FlightRecorder {
    fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    fn push(&self, ev: Event) {
        let mut ring = self.ring.lock().expect("flight recorder");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    fn dump(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("flight recorder")
            .iter()
            .copied()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Obs handle
// ---------------------------------------------------------------------------

/// Default flight-recorder depth.
pub const RECORDER_CAPACITY: usize = 256;

#[derive(Debug)]
struct ObsInner {
    level: Level,
    epoch: Instant,
    stages: [Histogram; Stage::COUNT],
    recorder: FlightRecorder,
}

/// Cheaply cloneable observability handle. At [`Level::Off`] it holds no
/// allocation at all and every probe is a branch on `None`.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    pub fn new(level: Level) -> Self {
        match level {
            Level::Off => Obs { inner: None },
            _ => Obs {
                inner: Some(Arc::new(ObsInner {
                    level,
                    epoch: Instant::now(),
                    stages: std::array::from_fn(|_| Histogram::new()),
                    recorder: FlightRecorder::new(RECORDER_CAPACITY),
                })),
            },
        }
    }

    pub fn level(&self) -> Level {
        self.inner.as_ref().map_or(Level::Off, |i| i.level)
    }

    /// True when stage timing is on (Histograms or FullTrace).
    #[inline]
    pub fn timing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.level >= Level::Histograms)
    }

    /// Starts a stage clock — `None` (free) unless timing is on.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.timing() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a stage clock opened by [`Obs::start`], recording the
    /// elapsed nanoseconds into the stage's histogram.
    #[inline]
    pub fn stage(&self, stage: Stage, started: Option<Instant>) {
        if let (Some(t), Some(inner)) = (started, self.inner.as_ref()) {
            inner.stages[stage as usize].record(t.elapsed().as_nanos() as u64);
        }
    }

    /// Records a pre-measured duration into a stage histogram.
    #[inline]
    pub fn stage_ns(&self, stage: Stage, ns: u64) {
        if let Some(inner) = self.inner.as_ref() {
            if inner.level >= Level::Histograms {
                inner.stages[stage as usize].record(ns);
            }
        }
    }

    /// Microseconds since this handle's epoch (0 when Off).
    pub fn now_micros(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Records a flight-recorder event. Rare kinds (checkpoints, recovery,
    /// compaction, scrubs) record from [`Level::Counters`] up; hot kinds
    /// (per-op traffic) only at [`Level::FullTrace`].
    pub fn note(&self, kind: EventKind, partition: u32, a: u64, b: u64, dur_ns: u64) {
        if let Some(inner) = self.inner.as_ref() {
            if kind.hot() && inner.level < Level::FullTrace {
                return;
            }
            inner.recorder.push(Event {
                at_micros: inner.epoch.elapsed().as_micros() as u64,
                kind,
                partition,
                a,
                b,
                dur_ns,
            });
        }
    }

    /// The flight recorder's current contents, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.recorder.dump())
    }

    /// Snapshot of every stage histogram (empty ones included so the
    /// stats surface has a stable shape).
    pub fn stages_snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        match self.inner.as_ref() {
            None => Stage::ALL
                .iter()
                .map(|&s| (s, HistogramSnapshot::default()))
                .collect(),
            Some(inner) => Stage::ALL
                .iter()
                .map(|&s| (s, inner.stages[s as usize].snapshot()))
                .collect(),
        }
    }

    /// Renders the flight recorder as one string per event — the dump
    /// format attached to recovery reports and maintenance errors.
    pub fn render_events(&self) -> Vec<String> {
        self.recent_events().iter().map(Event::render).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        // Exponential ladder of strictly increasing samples.
        let mut values = vec![0u64];
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            values.push(v);
            values.push(v + v / 4);
            v = v.saturating_mul(2);
        }
        values.push(u64::MAX);
        values.sort_unstable();
        values.dedup();
        let mut prev = 0usize;
        for &v in &values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "monotone at v={v}: {idx} < {prev}");
            prev = idx;
        }
    }

    #[test]
    fn bucket_low_inverts_bucket_index() {
        for idx in 0..BUCKETS {
            let lo = bucket_low(idx);
            // Indexes past the u64 range collapse; only check representable.
            if bucket_index(lo) == idx {
                assert!(bucket_mid(idx) >= lo);
                if idx > 0 && bucket_index(lo - 1) == idx - 1 {
                    // boundary is exact: lo-1 falls in the previous bucket
                }
            }
        }
        // Small values map 1:1.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn histogram_quantiles_track_uniform_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.p50();
        assert!((400..=600).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((900..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000, "q=1 clamps to the observed max");
        assert!((450..=550).contains(&s.mean()), "mean={}", s.mean());
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            a.record(v);
            c.record(v);
        }
        for v in [5u64, 50, 500_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), c.snapshot());
        // Snapshot-level merge agrees too.
        let mut sa = Histogram::new().snapshot();
        for v in [1u64, 10, 100, 1000, 10_000] {
            let h = Histogram::new();
            h.record(v);
            sa.merge(&h.snapshot());
        }
        let all = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            all.record(v);
        }
        assert_eq!(sa, all.snapshot());
    }

    #[test]
    fn off_level_is_inert() {
        let obs = Obs::new(Level::Off);
        assert_eq!(obs.level(), Level::Off);
        assert!(obs.start().is_none());
        obs.stage(Stage::WalAppend, None);
        obs.note(EventKind::CheckpointEnd, NO_PARTITION, 1, 2, 3);
        assert!(obs.recent_events().is_empty());
        assert!(obs.stages_snapshot().iter().all(|(_, s)| s.is_empty()));
        // No allocation behind the handle at all.
        assert!(obs.inner.is_none());
    }

    #[test]
    fn counters_level_records_rare_events_only() {
        let obs = Obs::new(Level::Counters);
        assert!(obs.start().is_none(), "no clocks below Histograms");
        obs.note(EventKind::Put, 0, 10, 0, 0); // hot: dropped
        obs.note(EventKind::TornTailScrub, NO_PARTITION, 4096, 128, 0);
        let events = obs.recent_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::TornTailScrub);
        assert_eq!(events[0].a, 4096);
    }

    #[test]
    fn histograms_level_times_stages() {
        let obs = Obs::new(Level::Histograms);
        let t = obs.start();
        assert!(t.is_some());
        obs.stage(Stage::NodeSeal, t);
        obs.stage_ns(Stage::WalFsync, 1_500);
        let stages = obs.stages_snapshot();
        let seal = &stages
            .iter()
            .find(|(s, _)| *s == Stage::NodeSeal)
            .unwrap()
            .1;
        assert_eq!(seal.count, 1);
        let fsync = &stages
            .iter()
            .find(|(s, _)| *s == Stage::WalFsync)
            .unwrap()
            .1;
        assert_eq!(fsync.count, 1);
        assert_eq!(fsync.sum, 1_500);
    }

    #[test]
    fn full_trace_records_hot_events_in_a_bounded_ring() {
        let obs = Obs::new(Level::FullTrace);
        for i in 0..(RECORDER_CAPACITY as u64 + 50) {
            obs.note(EventKind::Put, 0, i, 0, 0);
        }
        let events = obs.recent_events();
        assert_eq!(events.len(), RECORDER_CAPACITY, "ring is bounded");
        assert_eq!(
            events[0].a, 50,
            "oldest entries evicted, newest {RECORDER_CAPACITY} kept"
        );
        assert!(events.last().unwrap().a > events[0].a, "oldest first");
    }

    #[test]
    fn event_render_is_structured_and_plaintext_free() {
        let obs = Obs::new(Level::FullTrace);
        obs.note(EventKind::Get, 3, 128, 0, 2_000);
        let lines = obs.render_events();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("get"), "{}", lines[0]);
        assert!(lines[0].contains("p=3"), "{}", lines[0]);
        assert!(lines[0].contains("a=128"), "{}", lines[0]);
    }

    #[test]
    fn level_names_round_trip() {
        for level in Level::ALL {
            assert_eq!(Level::parse(level.name()), Some(level));
        }
        assert!(Level::parse("bogus").is_none());
        assert!(Level::Off < Level::Counters);
        assert!(Level::Histograms < Level::FullTrace);
    }

    #[test]
    fn clones_share_state() {
        let a = Obs::new(Level::Histograms);
        let b = a.clone();
        b.stage_ns(Stage::BlockRead, 10);
        let stages = a.stages_snapshot();
        assert_eq!(stages[Stage::BlockRead as usize].1.count, 1);
    }
}
