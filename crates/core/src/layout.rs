//! Node-layout arithmetic for experiment E3.
//!
//! §4.2: "the encryption of the search keys … will result in triplets that
//! consume large storage spaces on the node blocks. Fewer triplets can be
//! fitted onto a given node block, and the depth of the B-Tree would then
//! increase substantially." This module turns each scheme's on-disk triplet
//! width into fanout and expected tree depth so the claim can be tabulated.

use sks_btree_core::{NodeCodec, NODE_HEADER_LEN};
use sks_storage::OpCounters;

use crate::config::{Scheme, SchemeConfig, SealerKind};
use crate::error::CoreError;

/// Static layout facts for one scheme at one page size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeLayout {
    pub scheme: Scheme,
    /// Bytes the key field occupies on disk.
    pub key_field_bytes: usize,
    /// Bytes of cryptogram accompanying each triplet (pointer seal or whole
    /// triplet seal).
    pub seal_bytes: usize,
    /// Total bytes per triplet.
    pub triplet_bytes: usize,
    /// Page size used.
    pub page_size: usize,
    /// Maximum triplets per node block.
    pub max_keys: usize,
}

impl SchemeLayout {
    /// Computes the layout by asking the actual codec (so the numbers can
    /// never drift from the implementation).
    pub fn for_config(config: &SchemeConfig) -> Result<Self, CoreError> {
        let counters = OpCounters::new();
        let (codec, _) = config.build_codec(&counters)?;
        let max_keys = codec.max_keys(config.block_size);
        let (key_field_bytes, seal_bytes) = match config.scheme {
            Scheme::Plaintext => (8, 8 + 4), // key + data ptr + child ptr
            Scheme::BayerMetzger => (0, 24), // key inside the 24-byte seal
            Scheme::BayerMetzgerPage => (8, 12),
            _ => (
                8,
                match config.sealer {
                    SealerKind::Des | SealerKind::Speck => 16,
                    SealerKind::Rsa(bits) => bits / 8,
                },
            ),
        };
        Ok(SchemeLayout {
            scheme: config.scheme,
            key_field_bytes,
            seal_bytes,
            triplet_bytes: key_field_bytes + seal_bytes,
            page_size: config.block_size,
            max_keys,
        })
    }

    /// Worst-case height of a CLRS B-tree with this fanout holding `r`
    /// keys: `1 + ⌊log_t((r+1)/2)⌋` with `t = (max_keys+1)/2`.
    pub fn worst_case_height(&self, r: u64) -> u32 {
        if r == 0 {
            return 1;
        }
        let t = self.max_keys.div_ceil(2).max(2) as f64;
        let h = 1.0 + (((r + 1) as f64) / 2.0).ln() / t.ln();
        h.floor() as u32
    }

    /// Best-case height: every node full — `⌈log_{m+1}(r+1)⌉`.
    pub fn best_case_height(&self, r: u64) -> u32 {
        if r == 0 {
            return 1;
        }
        let m = (self.max_keys + 1) as f64;
        (((r + 1) as f64).ln() / m.ln()).ceil() as u32
    }

    /// Bytes of node storage per stored key at full occupancy, including
    /// amortised header overhead.
    pub fn bytes_per_key(&self) -> f64 {
        if self.max_keys == 0 {
            return f64::INFINITY;
        }
        (self.triplet_bytes as f64) + (NODE_HEADER_LEN as f64) / (self.max_keys as f64)
    }
}

/// Convenience: layouts for all measured schemes at a page size.
pub fn layouts_at(page_size: usize) -> Result<Vec<SchemeLayout>, CoreError> {
    Scheme::MEASURED
        .iter()
        .map(|&scheme| {
            let mut cfg = SchemeConfig::demo(scheme);
            cfg.block_size = page_size;
            SchemeLayout::for_config(&cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_beats_bayer_metzger_on_fanout() {
        // 8 + 16 = 24 bytes/triplet for substitution wins over BM only via
        // the leftmost-pointer bookkeeping... verify with actual codecs: at
        // 4096-byte pages the substitution layout must fit at least as many
        // triplets as BM.
        let mut sub = SchemeConfig::demo(Scheme::Oval);
        sub.block_size = 4096;
        let mut bm = SchemeConfig::demo(Scheme::BayerMetzger);
        bm.block_size = 4096;
        let sub_layout = SchemeLayout::for_config(&sub).unwrap();
        let bm_layout = SchemeLayout::for_config(&bm).unwrap();
        assert!(sub_layout.max_keys >= bm_layout.max_keys);
    }

    #[test]
    fn rsa_seals_shrink_fanout_dramatically() {
        // §4.2's storage complaint: RSA-sized fields mean few triplets/node.
        let mut des = SchemeConfig::demo(Scheme::Oval);
        des.block_size = 4096;
        let mut rsa = des.clone();
        rsa.sealer = SealerKind::Rsa(512);
        let l_des = SchemeLayout::for_config(&des).unwrap();
        let l_rsa = SchemeLayout::for_config(&rsa).unwrap();
        assert!(l_rsa.max_keys * 2 < l_des.max_keys);
        assert!(l_rsa.best_case_height(1_000_000) >= l_des.best_case_height(1_000_000));
    }

    #[test]
    fn heights_are_monotone_in_r() {
        let mut cfg = SchemeConfig::demo(Scheme::Oval);
        cfg.block_size = 1024;
        let l = SchemeLayout::for_config(&cfg).unwrap();
        let mut prev = 0;
        for r in [0u64, 10, 1_000, 100_000, 10_000_000] {
            let h = l.worst_case_height(r);
            assert!(h >= prev);
            prev = h;
            assert!(l.best_case_height(r) <= h.max(1));
        }
    }

    #[test]
    fn bytes_per_key_ordering() {
        let layouts = layouts_at(4096).unwrap();
        let get = |s: Scheme| {
            layouts
                .iter()
                .find(|l| l.scheme == s)
                .unwrap()
                .bytes_per_key()
        };
        assert!(get(Scheme::Plaintext) <= get(Scheme::Oval));
        assert!(get(Scheme::Oval) <= get(Scheme::BayerMetzger) + 1e-9);
    }

    #[test]
    fn layout_matches_codec_reality() {
        // triplet_bytes must be consistent with the codec's max_keys:
        // max_keys ≈ (page - fixed) / triplet_bytes.
        for scheme in [Scheme::Oval, Scheme::SumOfTreatments, Scheme::BayerMetzger] {
            let mut cfg = SchemeConfig::demo(scheme);
            cfg.block_size = 4096;
            let l = SchemeLayout::for_config(&cfg).unwrap();
            let approx = (cfg.block_size - NODE_HEADER_LEN - l.seal_bytes) / l.triplet_bytes;
            assert!(
                (l.max_keys as i64 - approx as i64).abs() <= 1,
                "{}: {} vs {approx}",
                scheme.name(),
                l.max_keys
            );
        }
    }
}
