//! [`EncipheredBTree`] — the end-to-end system of the paper: an enciphered
//! node-block B-tree over one block device, enciphered data blocks (with
//! an independent cipher, §5) over another, a single configuration switch
//! between the paper's scheme and both Bayer–Metzger baselines, and exact
//! operation accounting throughout.
//!
//! The devices are pluggable ([`crate::config::StorageBackend`]): the
//! paper's simulated in-RAM medium, or an on-disk [`PagedFileStore`] pair
//! under a directory — `nodes.sks`, `data.sks` and a sealed `manifest.sks`
//! whose key-check lets a reopen with the wrong keys fail closed *before*
//! any page is touched. Either way only enciphered bytes reach the store.

use std::path::Path;
use std::sync::Arc;

use sks_btree_core::{render_with, BTree, RecordPtr};
use sks_crypto::modes::ctr_xor;
use sks_crypto::speck::Speck64;
use sks_storage::{
    BlockId, BlockStore, DynBlockStore, MemDisk, OpCounters, OpSnapshot, PagedFileStore, Stage,
};

use crate::codec::AnyCodec;
use crate::config::{Scheme, SchemeConfig, StorageBackend};
use crate::disguise::KeyDisguise;
use crate::error::CoreError;
use crate::records::RecordStore;

const NODES_FILE: &str = "nodes.sks";
const DATA_FILE: &str = "data.sks";
const MANIFEST_FILE: &str = "manifest.sks";

/// Orphan-sweep budget per compaction budget unit: each victim block the
/// caller pays for also buys this many reverse-index slots of sweeping.
const SWEEP_SLOTS_PER_BLOCK: usize = 4;

const MANIFEST_MAGIC: &[u8; 8] = b"SKSMANF1";
const MANIFEST_VERSION: u32 = 1;
/// Sealed under the manifest key at create; a wrong-key open deciphers it
/// to garbage and is refused before any tree page is read or written.
const KEYCHECK_PLAIN: &[u8; 16] = b"SKS-BACKEND-KEY1";
const KEYCHECK_NONCE: u64 = 0x4B45_5943_4845_434B; // "KEYCHECK"

/// Domain-separated key for the manifest's key-check sentinel: binds both
/// the tree key and the independent data key, so changing either fails the
/// check.
fn manifest_key(config: &SchemeConfig) -> u128 {
    config.data_key
        ^ (((config.tree_key as u128) << 64) | config.tree_key as u128)
        ^ 0x4D41_4E49_4645_5354_u128 // "MANIFEST"
}

fn scheme_id(scheme: Scheme) -> u8 {
    Scheme::ALL
        .iter()
        .position(|&s| s == scheme)
        .expect("every scheme is in ALL") as u8
}

fn write_manifest(dir: &Path, config: &SchemeConfig) -> Result<(), CoreError> {
    let cipher = Speck64::from_u128(manifest_key(config));
    let sealed = ctr_xor(&cipher, KEYCHECK_NONCE, KEYCHECK_PLAIN);
    let mut buf = Vec::with_capacity(8 + 4 + 8 + 1 + sealed.len());
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_be_bytes());
    buf.extend_from_slice(&(config.block_size as u64).to_be_bytes());
    buf.push(scheme_id(config.scheme));
    buf.extend_from_slice(&sealed);
    let path = dir.join(MANIFEST_FILE);
    let io = |e: std::io::Error| CoreError::Config(format!("write {}: {e}", path.display()));
    use std::io::Write;
    let mut file = std::fs::File::create(&path).map_err(io)?;
    file.write_all(&buf).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    Ok(sks_storage::sync_dir(dir)?)
}

fn verify_manifest(dir: &Path, config: &SchemeConfig) -> Result<(), CoreError> {
    let path = dir.join(MANIFEST_FILE);
    let buf = std::fs::read(&path)
        .map_err(|e| CoreError::Config(format!("no enciphered tree at {}: {e}", dir.display())))?;
    if buf.len() != 8 + 4 + 8 + 1 + 16 || &buf[0..8] != MANIFEST_MAGIC {
        return Err(CoreError::Config(format!(
            "{} is not an sks-tree manifest",
            path.display()
        )));
    }
    let version = u32::from_be_bytes(buf[8..12].try_into().expect("fixed width"));
    if version != MANIFEST_VERSION {
        return Err(CoreError::Config(format!(
            "unknown manifest version {version}"
        )));
    }
    let block_size = u64::from_be_bytes(buf[12..20].try_into().expect("fixed width")) as usize;
    if block_size != config.block_size {
        return Err(CoreError::Config(format!(
            "directory holds {block_size}-byte blocks, config wants {}",
            config.block_size
        )));
    }
    if buf[20] != scheme_id(config.scheme) {
        return Err(CoreError::Config(format!(
            "directory holds a different scheme (id {}) than the configured {}",
            buf[20],
            config.scheme.name()
        )));
    }
    let cipher = Speck64::from_u128(manifest_key(config));
    if ctr_xor(&cipher, KEYCHECK_NONCE, &buf[21..37]) != KEYCHECK_PLAIN[..] {
        return Err(CoreError::Config(
            "key mismatch: the stored tree was enciphered under different tree/data keys".into(),
        ));
    }
    Ok(())
}

/// What one [`EncipheredBTree::compact_step`] /
/// [`EncipheredBTree::compact_nodes`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Live records rewritten into fresh blocks (tree pointers updated).
    pub moved_records: u64,
    /// Data blocks returned to the storage free list — including victims
    /// that were already fully dead and were freed through the tombstone
    /// fast path without moving anything.
    pub freed_blocks: u64,
    /// Live slots no tree pointer referenced (should be 0; counted, not
    /// fatal).
    pub orphaned_records: u64,
    /// Orphaned copies tombstoned by this pass — both the move-then-
    /// discover path (an orphan surfacing inside a victim block) and the
    /// reverse-index sweep. Their space returns through later passes.
    pub orphans_collected: u64,
    /// Reverse-index slots the orphan sweep examined (its bounded work).
    pub sweep_slots: u64,
    /// Live sealed nodes slid into lower free slots by node-device
    /// compaction.
    pub moved_nodes: u64,
    /// Node blocks released from the node device's tail (the device
    /// physically shrank).
    pub node_blocks_truncated: u64,
    /// Data blocks released from the data device's tail.
    pub data_blocks_truncated: u64,
}

impl CompactionReport {
    /// Component-wise accumulation (the engine sums per-partition passes).
    pub fn absorb(&mut self, other: CompactionReport) {
        self.moved_records += other.moved_records;
        self.freed_blocks += other.freed_blocks;
        self.orphaned_records += other.orphaned_records;
        self.orphans_collected += other.orphans_collected;
        self.sweep_slots += other.sweep_slots;
        self.moved_nodes += other.moved_nodes;
        self.node_blocks_truncated += other.node_blocks_truncated;
        self.data_blocks_truncated += other.data_blocks_truncated;
    }
}

/// An enciphered B-tree with attached data blocks, over any block backend.
pub struct EncipheredBTree {
    config: SchemeConfig,
    counters: OpCounters,
    tree: BTree<DynBlockStore, AnyCodec>,
    records: RecordStore<DynBlockStore>,
    disguise: Option<Arc<dyn KeyDisguise>>,
    /// Orphan-sweep resume point: the last `(block, slot)` examined. The
    /// sweep round-robins the reverse index across compaction passes.
    sweep_cursor: (u32, u16),
}

/// One node-store/data-store pair, built per the configured backend.
fn build_stores(
    config: &SchemeConfig,
    counters: &OpCounters,
    create: bool,
) -> Result<(DynBlockStore, DynBlockStore), CoreError> {
    match &config.backend {
        StorageBackend::Memory => {
            if !create {
                return Err(CoreError::Config(
                    "the memory backend has no persisted tree to open".into(),
                ));
            }
            Ok((
                Box::new(MemDisk::with_counters(config.block_size, counters.clone())),
                Box::new(MemDisk::with_counters(config.block_size, counters.clone())),
            ))
        }
        StorageBackend::File { dir, pool_pages } => {
            let pool_pages = (*pool_pages).max(1);
            if create {
                std::fs::create_dir_all(dir)
                    .map_err(|e| CoreError::Config(format!("create {}: {e}", dir.display())))?;
                // A stale manifest from an older incarnation must not make
                // a later open trust half-truncated stores.
                std::fs::remove_file(dir.join(MANIFEST_FILE)).ok();
                let nodes = PagedFileStore::create(
                    dir.join(NODES_FILE),
                    config.block_size,
                    pool_pages,
                    counters.clone(),
                )?;
                let data = PagedFileStore::create(
                    dir.join(DATA_FILE),
                    config.block_size,
                    pool_pages,
                    counters.clone(),
                )?;
                Ok((Box::new(nodes), Box::new(data)))
            } else {
                verify_manifest(dir, config)?;
                let nodes =
                    PagedFileStore::open(dir.join(NODES_FILE), pool_pages, counters.clone())?;
                let data = PagedFileStore::open(dir.join(DATA_FILE), pool_pages, counters.clone())?;
                Ok((Box::new(nodes), Box::new(data)))
            }
        }
    }
}

impl EncipheredBTree {
    /// Builds the whole stack in memory from a [`SchemeConfig`] (the
    /// paper's simulated-device setup; ignores `config.backend`).
    pub fn create_in_memory(config: SchemeConfig) -> Result<Self, CoreError> {
        let counters = OpCounters::with_observability(config.observability);
        Self::create_in_memory_with_counters(config, counters)
    }

    /// [`EncipheredBTree::create_in_memory`] sharing an existing counter
    /// set — an engine running several tree partitions aggregates them all
    /// into one account this way.
    pub fn create_in_memory_with_counters(
        config: SchemeConfig,
        counters: OpCounters,
    ) -> Result<Self, CoreError> {
        let config = SchemeConfig {
            backend: StorageBackend::Memory,
            ..config
        };
        Self::create_with_counters(config, counters)
    }

    /// Builds a fresh stack on whatever backend `config.backend` names
    /// (truncating any previous on-disk state for the file backend).
    pub fn create(config: SchemeConfig) -> Result<Self, CoreError> {
        let counters = OpCounters::with_observability(config.observability);
        Self::create_with_counters(config, counters)
    }

    /// [`EncipheredBTree::create`] sharing an existing counter set.
    pub fn create_with_counters(
        config: SchemeConfig,
        counters: OpCounters,
    ) -> Result<Self, CoreError> {
        Self::create_with_shared_disguise(config, counters, None)
    }

    /// [`EncipheredBTree::create_with_counters`] reusing a prebuilt key
    /// disguise (see [`SchemeConfig::build_codec_with`]). An engine's
    /// partitions all use an identical disguise, so the engine builds
    /// the difference-set design once and shares it instead of paying
    /// the construction per partition.
    pub fn create_with_shared_disguise(
        config: SchemeConfig,
        counters: OpCounters,
        disguise: Option<Arc<dyn KeyDisguise>>,
    ) -> Result<Self, CoreError> {
        let (node_store, data_store) = build_stores(&config, &counters, true)?;
        let mut this = Self::assemble(config, counters, node_store, data_store, true, disguise)?;
        this.seal_backend()?;
        Ok(this)
    }

    /// Shared assembly for every constructor: codec → tree → caches →
    /// record store, plus the post-open cross-device sync check.
    fn assemble(
        config: SchemeConfig,
        counters: OpCounters,
        node_store: DynBlockStore,
        data_store: DynBlockStore,
        create: bool,
        shared_disguise: Option<Arc<dyn KeyDisguise>>,
    ) -> Result<Self, CoreError> {
        let (codec, disguise) = config.build_codec_with(&counters, shared_disguise)?;
        let mut tree = if create {
            BTree::create(node_store, codec)?
        } else {
            BTree::open(node_store, codec)?
        };
        tree.enable_node_cache(config.node_cache);
        tree.enable_write_behind(config.write_behind);
        let mut records = if create {
            RecordStore::create(data_store, config.data_key, config.record_cache)?
        } else {
            RecordStore::open(data_store, config.data_key, config.record_cache)?
        };
        records.set_delta_config(config.index_delta, config.index_rewrite_period);
        let mut this = EncipheredBTree {
            config,
            counters,
            tree,
            records,
            disguise,
            sweep_cursor: (0, 0),
        };
        if !create {
            this.sync_devices_after_open()?;
        }
        Ok(this)
    }

    /// Reopens a tree persisted by the file backend. Fails closed — before
    /// any page is read — when the directory was sealed under different
    /// keys, a different scheme, or a different block size.
    pub fn open(config: SchemeConfig) -> Result<Self, CoreError> {
        let counters = OpCounters::with_observability(config.observability);
        Self::open_with_counters(config, counters)
    }

    /// [`EncipheredBTree::open`] sharing an existing counter set.
    pub fn open_with_counters(
        config: SchemeConfig,
        counters: OpCounters,
    ) -> Result<Self, CoreError> {
        Self::open_with_shared_disguise(config, counters, None)
    }

    /// [`EncipheredBTree::open_with_counters`] reusing a prebuilt key
    /// disguise (see [`EncipheredBTree::create_with_shared_disguise`]) —
    /// the multi-partition reopen path stays O(1) design constructions
    /// instead of O(partitions).
    pub fn open_with_shared_disguise(
        config: SchemeConfig,
        counters: OpCounters,
        disguise: Option<Arc<dyn KeyDisguise>>,
    ) -> Result<Self, CoreError> {
        let (node_store, data_store) = build_stores(&config, &counters, false)?;
        Self::assemble(config, counters, node_store, data_store, false, disguise)
    }

    /// Builds the stack over caller-supplied node/data stores instead of
    /// the config's backend — custom devices, or fault-injection wrappers
    /// ([`sks_storage::FailStore`]) for crash probes. Both stores should
    /// share `counters`; no backend manifest is written (the caller owns
    /// the medium's lifecycle).
    pub fn create_on_stores(
        config: SchemeConfig,
        counters: OpCounters,
        node_store: DynBlockStore,
        data_store: DynBlockStore,
    ) -> Result<Self, CoreError> {
        Self::assemble(config, counters, node_store, data_store, true, None)
    }

    /// Reopens a stack persisted on caller-supplied stores (see
    /// [`EncipheredBTree::create_on_stores`]). No manifest key-check runs;
    /// the caller vouches for the keys.
    pub fn open_on_stores(
        config: SchemeConfig,
        counters: OpCounters,
        node_store: DynBlockStore,
        data_store: DynBlockStore,
    ) -> Result<Self, CoreError> {
        Self::assemble(config, counters, node_store, data_store, false, None)
    }

    /// Post-open cross-device synchronisation. The tree superblock's
    /// stamp says which data index epoch the node device last committed
    /// against. If it matches the persisted index epoch the two devices
    /// are in step: the trusted index may reclaim quarantined victims a
    /// crash leaked. If it does not (a crash landed between the two
    /// device checkpoints), the index describes a *newer* data image
    /// than the tree references — it must not be trusted, and no block
    /// may be reclaimed (the old pointers still aim at intact victim
    /// content); maintenance rebuilds everything from the tree itself.
    fn sync_devices_after_open(&mut self) -> Result<(), CoreError> {
        if self.tree.stamp() == self.records.index_epoch() {
            self.records.reconcile_unreferenced_blocks()?;
        } else {
            self.records.distrust_index();
        }
        Ok(())
    }

    /// Whether `dir` holds a persisted enciphered tree (its manifest).
    pub fn exists_on_disk<P: AsRef<Path>>(dir: P) -> bool {
        dir.as_ref().join(MANIFEST_FILE).exists()
    }

    /// Bulk-builds the stack from *strictly ascending* `(key, record)`
    /// pairs: records stream into the data blocks, then the node tree is
    /// built bottom-up with exactly one encipherment pass per node block —
    /// the initial-load path a real deployment would use. Honours
    /// `config.backend` like [`EncipheredBTree::create`].
    pub fn bulk_create(config: SchemeConfig, items: &[(u64, Vec<u8>)]) -> Result<Self, CoreError> {
        let counters = OpCounters::with_observability(config.observability);
        let (codec, disguise) = config.build_codec(&counters)?;
        let (node_store, data_store) = build_stores(&config, &counters, true)?;
        let mut records = RecordStore::create(data_store, config.data_key, config.record_cache)?;
        records.set_delta_config(config.index_delta, config.index_rewrite_period);
        let mut pairs = Vec::with_capacity(items.len());
        for (key, record) in items {
            pairs.push((*key, records.insert_keyed(*key, record)?));
        }
        let mut tree = BTree::bulk_load(node_store, codec, &pairs)?;
        tree.enable_node_cache(config.node_cache);
        tree.enable_write_behind(config.write_behind);
        let mut this = EncipheredBTree {
            config,
            counters,
            tree,
            records,
            disguise,
            sweep_cursor: (0, 0),
        };
        this.seal_backend()?;
        Ok(this)
    }

    /// In-place [`EncipheredBTree::bulk_create`]: bulk-loads *strictly
    /// ascending* `(key, record)` pairs into a tree that is still empty
    /// (never held a key). Records stream into the data blocks, then the
    /// node tree is built bottom-up with exactly one encipherment pass
    /// per node block — no splits, no rebalancing. The sorted-ingest fast
    /// path for stacks already owned by an engine partition.
    pub fn bulk_load(&mut self, items: &[(u64, Vec<u8>)]) -> Result<(), CoreError> {
        if !self.is_empty() {
            return Err(CoreError::Config(format!(
                "bulk_load requires an empty tree ({} keys present)",
                self.len()
            )));
        }
        let mut pairs = Vec::with_capacity(items.len());
        for (key, record) in items {
            pairs.push((*key, self.records.insert_keyed(*key, record)?));
        }
        self.tree.bulk_fill(&pairs)?;
        Ok(())
    }

    /// File backend: checkpoint the fresh stores and only then write the
    /// manifest, so a crash mid-create can never leave a manifest pointing
    /// at torn stores. Memory backend: nothing to do.
    fn seal_backend(&mut self) -> Result<(), CoreError> {
        if let StorageBackend::File { dir, .. } = &self.config.backend {
            let dir = dir.clone();
            self.flush()?;
            write_manifest(&dir, &self.config)?;
        }
        Ok(())
    }

    /// Checkpoints both stores: the node superblock plus every dirty page
    /// reaches the backing medium atomically (journal-protected on the
    /// file backend). A no-op memory-backend flush is free.
    ///
    /// Cross-device crash safety is a three-step protocol, because the
    /// two devices checkpoint independently:
    ///
    /// 1. the data device commits first (new records, compaction copies,
    ///    the reverse index — compaction victims still *allocated*), so
    ///    a crash here leaves the old tree reading the intact old image;
    /// 2. the node device commits the repointed tree — a crash between 1
    ///    and 2 leaves old pointers aimed at intact victim content
    ///    (compaction copies records, never erases the source), and a
    ///    crash after 2 leaves new pointers aimed at the committed
    ///    copies: either way every committed read is correct;
    /// 3. only now the quarantined victim blocks go onto the free list
    ///    (plus tail truncation) and the data device commits again — a
    ///    crash before this commit merely *leaks* the victims, and the
    ///    next trusted open reclaims them (they are exactly the
    ///    allocated blocks the committed index does not describe).
    ///
    /// No window dangles a pointer or reuses a referenced block; the
    /// worst crash outcome is transient unreferenced garbage.
    pub fn flush(&mut self) -> Result<(), CoreError> {
        self.records.flush()?;
        // Stamp the tree with the data epoch it is committing against:
        // a reopen compares the stamp to the persisted index epoch to
        // detect the two devices having committed out of step.
        self.tree.set_stamp(self.records.index_epoch());
        self.tree.flush()?;
        if self.records.has_pending_frees() {
            self.records.apply_pending_frees()?;
            self.records.truncate_tail()?;
            self.records.flush()?;
        }
        Ok(())
    }

    pub fn scheme(&self) -> Scheme {
        self.config.scheme
    }

    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    pub fn snapshot(&self) -> OpSnapshot {
        self.counters.snapshot()
    }

    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    pub fn height(&self) -> u32 {
        self.tree.height()
    }

    /// Maximum triplets per node block under this scheme's layout.
    pub fn max_keys_per_node(&self) -> usize {
        self.tree.max_keys_per_node()
    }

    /// Largest record the data blocks can store.
    pub fn max_record_len(&self) -> usize {
        self.records.max_record_len()
    }

    /// The disguise in effect (None for the baselines).
    pub fn disguise(&self) -> Option<&Arc<dyn KeyDisguise>> {
        self.disguise.as_ref()
    }

    /// Inserts (or replaces) the record stored under `key`. Returns the
    /// previous record if one existed.
    pub fn insert(&mut self, key: u64, record: Vec<u8>) -> Result<Option<Vec<u8>>, CoreError> {
        let ptr = self.records.insert_keyed(key, &record)?;
        match self.tree.insert(key, ptr) {
            Ok(Some(old_ptr)) => {
                let old = self.records.get(old_ptr)?;
                self.records.delete(old_ptr)?;
                Ok(old)
            }
            Ok(None) => Ok(None),
            Err(e) => {
                // Don't leak the just-inserted record on key-domain errors.
                let _ = self.records.delete(ptr);
                Err(e.into())
            }
        }
    }

    /// Fetches the record stored under `key`.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, CoreError> {
        match self.tree.get(key)? {
            Some(ptr) => self.records.get(ptr),
            None => Ok(None),
        }
    }

    /// Point lookup of the data pointer only (no data-block access) — the
    /// operation the paper's decryption counts are defined over.
    pub fn get_pointer(&self, key: u64) -> Result<Option<RecordPtr>, CoreError> {
        Ok(self.tree.get(key)?)
    }

    /// Removes `key`, returning its record.
    pub fn delete(&mut self, key: u64) -> Result<Option<Vec<u8>>, CoreError> {
        match self.tree.delete(key)? {
            Some(ptr) => {
                let old = self.records.get(ptr)?;
                self.records.delete(ptr)?;
                Ok(old)
            }
            None => Ok(None),
        }
    }

    /// Streaming range scan: yields `(key, record)` pairs with
    /// `lo <= key <= hi` in key order without materialising the result —
    /// memory stays O(tree height + one record) however wide the range.
    /// Node visits are served from the plaintext node cache and record
    /// unseals from the record cache when enabled; the logical counters
    /// report the paper's per-scheme cost either way.
    pub fn iter_range(
        &self,
        lo: u64,
        hi: u64,
    ) -> impl Iterator<Item = Result<(u64, Vec<u8>), CoreError>> + '_ {
        self.tree.iter_range(lo, hi).map(move |item| {
            let (k, ptr) = item?;
            self.records
                .get(ptr)?
                .ok_or_else(|| CoreError::Record(format!("dangling data pointer for key {k}")))
                .map(|record| (k, record))
        })
    }

    /// Streaming range scan in callback form: `f` is invoked once per
    /// in-range `(key, record)` pair, in key order.
    pub fn range_for_each(
        &self,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(u64, Vec<u8>) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        for item in self.iter_range(lo, hi) {
            let (k, record) = item?;
            f(k, record)?;
        }
        Ok(())
    }

    /// Range scan: all `(key, record)` pairs with `lo <= key <= hi` in key
    /// order — the operation §1 motivates and §4.3 keeps possible.
    /// Convenience over [`EncipheredBTree::iter_range`] for small ranges;
    /// large scans should iterate.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, CoreError> {
        self.iter_range(lo, hi).collect()
    }

    /// Structural validation of the underlying tree.
    pub fn validate(&self) -> Result<(), CoreError> {
        Ok(self.tree.validate()?)
    }

    /// The raw node-block image — the opponent's view of the index medium.
    /// On the file backend this is what is physically in `nodes.sks`
    /// (unflushed cached pages live in RAM, not on the stolen disk).
    pub fn raw_node_image(&self) -> Result<Vec<Vec<u8>>, CoreError> {
        Ok(self.tree.store().raw_image()?)
    }

    /// The raw data-block image.
    pub fn raw_data_image(&self) -> Result<Vec<Vec<u8>>, CoreError> {
        Ok(self.records.store().raw_image()?)
    }

    /// Node block size.
    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    /// Dirty pages currently buffered across both stores (file backend:
    /// the no-steal pool's pinned set awaiting the next checkpoint; 0 for
    /// unbuffered backends). The engine's dirty high-water trigger watches
    /// this.
    pub fn dirty_pages(&self) -> usize {
        // A write-behind node is a dirty page the pool has not seen yet:
        // it still owes the medium one block write, so governance budgets
        // must count it.
        self.tree.store().dirty_pages()
            + self.records.store().dirty_pages()
            + self.tree.deferred_nodes()
    }

    /// Nodes currently held decoded in the plaintext node cache.
    pub fn cached_nodes(&self) -> usize {
        self.tree.cached_nodes()
    }

    /// Dirty write-behind nodes awaiting their physical re-seal (0 unless
    /// [`crate::config::SchemeConfig::write_behind`] opted in).
    pub fn deferred_nodes(&self) -> usize {
        self.tree.deferred_nodes()
    }

    /// Records currently held decoded in the record cache (this tree's
    /// namespace only, when the cache is process-wide).
    pub fn cached_records(&self) -> usize {
        self.records.cached_records()
    }

    /// Adopts a process-wide decoded-record cache (see
    /// [`crate::records::SharedRecordCache`]), replacing this tree's
    /// per-tree cache. `ns` must be unique among the adopting trees (the
    /// engine uses the partition number). Logical counters are unaffected;
    /// only *where* the bounded plaintext RAM lives changes.
    pub fn use_shared_record_cache(&mut self, cache: &crate::records::SharedRecordCache, ns: u64) {
        self.records.use_shared_cache(cache, ns);
    }

    /// Data-store footprint: `(total blocks ever allocated, blocks on the
    /// free list awaiting reuse)`. Compaction keeps `total - free` bounded
    /// by the live dataset, and tail truncation keeps `total` itself from
    /// pinning the high-water mark.
    pub fn data_block_usage(&self) -> (u32, u32) {
        let store = self.records.store();
        (store.num_blocks(), store.free_blocks())
    }

    /// Node-store footprint, same shape as
    /// [`EncipheredBTree::data_block_usage`].
    pub fn node_block_usage(&self) -> (u32, u32) {
        let store = self.tree.store();
        (store.num_blocks(), store.free_blocks())
    }

    /// Whether the persistent reverse index currently covers every live
    /// record (compaction passes are O(victims) iff this holds).
    pub fn reverse_index_complete(&self) -> bool {
        self.records.reverse_index_complete()
    }

    /// The reverse index as sorted `(data block, slot, key)` rows — for
    /// observability and the index ≡ tree-scan equivalence tests.
    pub fn reverse_index_snapshot(&self) -> Vec<(u32, u16, u64)> {
        self.records.reverse_index_snapshot()
    }

    /// Rebuilds the reverse index from one full tree scan — the O(dataset)
    /// fallback `compact_step` runs when unkeyed churn (or a detected-
    /// stale index after a crash on an unbuffered medium) left it
    /// incomplete. Counted in `compact_index_fallbacks`; every subsequent
    /// pass is O(victims) again.
    pub fn rebuild_reverse_index(&mut self) -> Result<(), CoreError> {
        self.counters.bump(|c| &c.compact_index_fallbacks);
        // The dead/live accounting must be complete before the rebuilt
        // index can be marked (and later persisted as) complete — a
        // trusted reopen loads both from the same chain, and persisting
        // an empty dead map as trusted would forget pending tombstones
        // for the life of the store.
        self.records.pending_tombstones()?;
        let mut entries = Vec::new();
        for item in self.tree.iter_range(0, u64::MAX) {
            let (k, ptr) = item?;
            entries.push((ptr, k));
        }
        self.records.adopt_reverse_index(entries);
        Ok(())
    }

    /// Free-list membership of both devices, as `(node ids, data ids)` —
    /// backend-comparison tests mask these blocks out of the raw images
    /// (MemDisk models a non-scrubbing medium, the file backend rewrites
    /// its intrusive free chain; neither ever holds plaintext).
    pub fn free_block_ids(&self) -> (Vec<u32>, Vec<u32>) {
        (
            self.tree.store().free_block_ids(),
            self.records.store().free_block_ids(),
        )
    }

    /// Tombstoned record slots awaiting compaction.
    pub fn pending_tombstones(&mut self) -> Result<u64, CoreError> {
        self.records.pending_tombstones()
    }

    /// One bounded pass of online record-store compaction: up to
    /// `max_blocks` tombstoned data blocks have their live records
    /// rewritten into fresh blocks (under fresh per-page generations, so
    /// recycled blocks never repeat CTR keystream), the tree's data
    /// pointers are repointed in place, and the dead blocks return to the
    /// storage free list for reuse.
    ///
    /// Crash safety on the file backend comes from the no-steal buffer
    /// pool: nothing the pass does reaches the medium until the next
    /// journaled checkpoint commits, so a crash mid-compaction recovers to
    /// the pre-pass image and a crash after the checkpoint to the
    /// post-pass image — never a mix. The engine runs this inside its
    /// fuzzy checkpoint, per partition, under the partition write lock.
    ///
    /// Cost/accounting: the victims' live slots map to their tree keys
    /// through the persistent reverse index — O(victims), no tree scan —
    /// and the repointing runs through the normal (counted) tree paths, so
    /// the pass's node visits and decipherments are *visible* in the
    /// operation counters, exactly as real maintenance I/O would be. Only
    /// the record bytes' own re-encipherment is charged to
    /// `compact_moved_records` instead of `data_encrypts` (the record is
    /// moved, not logically written). If unkeyed churn ever left the index
    /// incomplete, one full scan rebuilds it first (visible in
    /// `compact_index_fallbacks`) and every later pass is O(victims)
    /// again. Counter-sensitive experiments simply run without deletes or
    /// with `compaction(0)`. A pass with no tombstones is free.
    ///
    /// This entry point drains: every block with even a single dead
    /// record qualifies as a victim, so looping until `freed_blocks`
    /// reaches zero reclaims all tombstoned space. Checkpoint-integrated
    /// maintenance should use [`EncipheredBTree::compact_step_floored`]
    /// instead, which keeps the pass proportional to churn.
    pub fn compact_step(&mut self, max_blocks: usize) -> Result<CompactionReport, CoreError> {
        self.compact_step_floored(max_blocks, 0)
    }

    /// [`EncipheredBTree::compact_step`] with a dead-ratio floor: only
    /// blocks at least `min_dead_pct` percent dead qualify as victims.
    /// Rewriting a block re-seals every live record in it and repoints
    /// the tree (a node unseal + re-seal per move), so a barely-dead
    /// block costs hundreds of cipher operations to reclaim a few bytes
    /// — work proportional to database size, not to change. The floor
    /// defers those blocks until churn actually concentrates in them,
    /// which is what keeps the steady-state checkpoint change-
    /// proportional. `0` restores drain semantics.
    pub fn compact_step_floored(
        &mut self,
        max_blocks: usize,
        min_dead_pct: u8,
    ) -> Result<CompactionReport, CoreError> {
        let mut report = CompactionReport::default();
        if max_blocks == 0 {
            return Ok(report);
        }
        let t = self.counters.obs().start();
        // Reverse-index sweep against the tree: orphaned copies that no
        // pointer references (the PR 5 carry-over) are actively
        // tombstoned here instead of lingering until their block happens
        // to become a victim. Bounded work, resumed round-robin across
        // passes via the persistent cursor.
        if self.records.reverse_index_complete() {
            let (slots, collected) = self.sweep_orphans(max_blocks * SWEEP_SLOTS_PER_BLOCK)?;
            report.sweep_slots = slots;
            report.orphans_collected += collected;
        }
        if !self.records.may_have_tombstones() {
            self.counters.obs().stage(Stage::CompactData, t);
            return Ok(report);
        }
        let victims = self.records.victims(max_blocks, min_dead_pct)?;
        if victims.is_empty() {
            self.counters.obs().stage(Stage::CompactData, t);
            return Ok(report);
        }
        if !self.records.reverse_index_complete() {
            self.rebuild_reverse_index()?;
        }
        for block in victims {
            for (old, new, key) in self.records.compact_block(block)? {
                match key.map(|k| self.tree.replace_ptr(k, new)).transpose()? {
                    Some(Some(prev)) => {
                        debug_assert_eq!(prev, old, "key repointed from its old slot");
                        report.moved_records += 1;
                    }
                    // A live slot the tree does not reference: either the
                    // index had no owner for it (unkeyed API use) or the
                    // key is gone from the tree (a torn cross-device
                    // image left the data device ahead). The copy is
                    // unreferenced garbage — tombstone it now so a later
                    // pass reclaims the space, rather than carrying it
                    // forever.
                    Some(None) | None => {
                        report.orphaned_records += 1;
                        if self.records.delete(new)? {
                            report.orphans_collected += 1;
                            self.counters.bump(|c| &c.compact_orphans_collected);
                        }
                    }
                }
            }
            // Counted whether the block had live records to move or was
            // freed through the tombstone fast path — an empty victim is
            // still a reclaimed block (the PR 4 report under-counted it).
            report.freed_blocks += 1;
        }
        // This pass's reclaims are quarantined until the next flush (see
        // [`EncipheredBTree::flush`]); the truncation below can only act
        // on frees already safely committed to the free list by earlier
        // flushes.
        report.data_blocks_truncated = self.records.truncate_tail()? as u64;
        self.counters.obs().stage(Stage::CompactData, t);
        Ok(report)
    }

    /// Bounded reverse-index sweep: examines up to `budget` live indexed
    /// slots (resuming from the persistent cursor, wrapping at the end)
    /// and tombstones any the tree no longer points at. Only runs when
    /// the reverse index is complete — an incomplete index cannot prove a
    /// slot is orphaned. The tree probes run through the normal counted
    /// paths, so the sweep's logical cost is visible like any other
    /// maintenance I/O.
    fn sweep_orphans(&mut self, budget: usize) -> Result<(u64, u64), CoreError> {
        if budget == 0 {
            return Ok((0, 0));
        }
        let mut rows = self
            .records
            .reverse_index_rows_after(self.sweep_cursor, budget);
        if rows.is_empty() && self.sweep_cursor != (0, 0) {
            // End of the index: wrap to the start for the next round.
            self.sweep_cursor = (0, 0);
            rows = self.records.reverse_index_rows_after((0, 0), budget);
        }
        let examined = rows.len() as u64;
        let mut collected = 0u64;
        for (b, s, key) in rows {
            self.sweep_cursor = (b, s);
            let ptr = RecordPtr::pack(BlockId(b), s);
            if self.tree.get(key)? != Some(ptr) && self.records.delete(ptr)? {
                collected += 1;
                self.counters.bump(|c| &c.compact_orphans_collected);
            }
        }
        self.counters.bump_by(|c| &c.compact_sweep_slots, examined);
        if collected > 0 {
            self.counters.obs().note(
                sks_storage::EventKind::OrphanSweep,
                sks_storage::NO_PARTITION,
                examined,
                collected,
                0,
            );
        }
        Ok((examined, collected))
    }

    /// One bounded pass of node-device compaction: up to `max_moves` live
    /// sealed nodes slide into the lowest free slots (re-sealed at their
    /// new position by the normal node write path) and the node device's
    /// freed tail is released, so a shrunken dataset stops pinning the
    /// node store — `nodes.sks` physically shrinks on the file backend at
    /// the next checkpoint. Crash safety is the same story as
    /// [`EncipheredBTree::compact_step`]: nothing reaches the medium until
    /// the journaled checkpoint commits.
    pub fn compact_nodes(&mut self, max_moves: usize) -> Result<CompactionReport, CoreError> {
        let mut report = CompactionReport::default();
        if max_moves == 0 {
            return Ok(report);
        }
        let t = self.counters.obs().start();
        let (moved, truncated) = self.tree.compact_nodes(max_moves)?;
        self.counters.obs().stage(Stage::CompactNodes, t);
        report.moved_nodes = moved;
        report.node_blocks_truncated = truncated as u64;
        Ok(report)
    }

    /// ASCII rendering of the logical (plaintext) tree — what the legal
    /// user sees.
    pub fn render_logical(&self) -> Result<String, CoreError> {
        Ok(sks_btree_core::render_logical(&self.tree)?)
    }

    /// ASCII rendering of the on-disk view: disguised key values for
    /// substitution schemes, sealed-triplet placeholders for the
    /// Bayer–Metzger baselines — what the opponent sees (modulo the
    /// encrypted pointers, which are unreadable either way).
    pub fn render_disk_view(&self) -> Result<String, CoreError> {
        let disguise = self.disguise.clone();
        let scheme = self.config.scheme;
        let rendered = render_with(&self.tree, move |node| match (&disguise, scheme) {
            (Some(d), _) => {
                let mut s = String::from("[");
                for (i, &k) in node.keys.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    match d.disguise(k) {
                        Ok(dk) => s.push_str(&dk.to_string()),
                        Err(_) => s.push('?'),
                    }
                }
                s.push(']');
                s
            }
            (None, Scheme::Plaintext) => {
                let keys: Vec<String> = node.keys.iter().map(|k| k.to_string()).collect();
                format!("[{}]", keys.join(" "))
            }
            (None, _) => format!("⟦{} sealed⟧", node.n()),
        })?;
        Ok(rendered)
    }

    /// Access to the underlying tree (benches and the attack harness).
    pub fn tree(&self) -> &BTree<DynBlockStore, AnyCodec> {
        &self.tree
    }
}

impl std::fmt::Debug for EncipheredBTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncipheredBTree")
            .field("scheme", &self.config.scheme)
            .field("backend", &self.config.backend)
            .field("len", &self.len())
            .finish()
    }
}

// The engine shares trees across threads behind `RwLock`s: every handle in
// the stack (disguise and sealer trait objects included) must stay
// `Send + Sync`. Compile-time assertion so a regression fails here, with a
// readable message, instead of deep inside `sks-engine`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EncipheredBTree>();
    assert_send_sync::<SchemeConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scheme, SchemeConfig};

    fn demo_keys(scheme: Scheme) -> Vec<u64> {
        match scheme {
            // Exponentiation schemes exclude 0; the literal paper variant
            // additionally excludes its documented ambiguous keys 1 and 2.
            Scheme::ExponentiationPaper => vec![3, 4, 5, 6, 8, 9, 11],
            Scheme::Exponentiation => (1..=10).collect(),
            _ => (0..=10).collect(),
        }
    }

    #[test]
    fn end_to_end_all_schemes_demo_scale() {
        for scheme in Scheme::ALL {
            let cfg = SchemeConfig::demo(scheme);
            let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
            let keys = demo_keys(scheme);
            for &k in &keys {
                let rec = format!("record-{k}").into_bytes();
                assert_eq!(
                    tree.insert(k, rec).unwrap(),
                    None,
                    "{}: insert {k}",
                    scheme.name()
                );
            }
            assert_eq!(tree.len(), keys.len() as u64, "{}", scheme.name());
            tree.validate().unwrap();
            for &k in &keys {
                let got = tree.get(k).unwrap().unwrap();
                assert_eq!(
                    got,
                    format!("record-{k}").into_bytes(),
                    "{}: get {k}",
                    scheme.name()
                );
            }
            // Absent key.
            let absent = keys.iter().max().unwrap() + 1;
            if scheme != Scheme::Oval && scheme != Scheme::SumOfTreatments {
                // (bounded-domain schemes may reject out-of-domain queries
                // at the probe; in-domain misses checked below instead)
            }
            let miss = keys
                .iter()
                .find(|k| !keys.contains(&(*k + 1)) && keys.contains(k));
            let _ = (absent, miss);
            // Delete half.
            for &k in keys.iter().step_by(2) {
                let got = tree.delete(k).unwrap().unwrap();
                assert_eq!(got, format!("record-{k}").into_bytes());
            }
            tree.validate().unwrap();
            for (i, &k) in keys.iter().enumerate() {
                let want = if i % 2 == 0 { None } else { Some(()) };
                assert_eq!(
                    tree.get(k).unwrap().map(|_| ()),
                    want,
                    "{}: after delete {k}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn replace_returns_old_record() {
        let mut tree = EncipheredBTree::create_in_memory(SchemeConfig::demo(Scheme::Oval)).unwrap();
        assert_eq!(tree.insert(5, b"v1".to_vec()).unwrap(), None);
        assert_eq!(
            tree.insert(5, b"v2".to_vec()).unwrap(),
            Some(b"v1".to_vec())
        );
        assert_eq!(tree.get(5).unwrap().unwrap(), b"v2");
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn range_scans_work_under_every_scheme() {
        for scheme in Scheme::MEASURED {
            let cfg = SchemeConfig::demo(scheme);
            let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
            let keys = demo_keys(scheme);
            for &k in &keys {
                tree.insert(k, vec![k as u8]).unwrap();
            }
            let got: Vec<u64> = tree.range(2, 7).unwrap().iter().map(|&(k, _)| k).collect();
            let want: Vec<u64> = keys
                .iter()
                .copied()
                .filter(|&k| (2..=7).contains(&k))
                .collect();
            assert_eq!(got, want, "{}", scheme.name());
        }
    }

    #[test]
    fn out_of_domain_key_is_a_clean_error() {
        let mut tree = EncipheredBTree::create_in_memory(SchemeConfig::demo(Scheme::Oval)).unwrap();
        let err = tree.insert(999, b"too big".to_vec()).unwrap_err();
        assert!(matches!(err, CoreError::Tree(_)), "got {err}");
        // Tree unchanged and still consistent.
        assert_eq!(tree.len(), 0);
        tree.validate().unwrap();
    }

    #[test]
    fn capacity_scale_oval_tree() {
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, 2000);
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        for k in 0..2000u64 {
            tree.insert(k, k.to_be_bytes().to_vec()).unwrap();
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), 2000);
        for k in (0..2000u64).step_by(191) {
            assert_eq!(tree.get(k).unwrap().unwrap(), k.to_be_bytes().to_vec());
        }
        let mid: Vec<u64> = tree
            .range(500, 520)
            .unwrap()
            .iter()
            .map(|&(k, _)| k)
            .collect();
        assert_eq!(mid, (500..=520).collect::<Vec<u64>>());
    }

    #[test]
    fn disk_view_differs_from_logical_for_oval() {
        let mut tree = EncipheredBTree::create_in_memory(SchemeConfig::demo(Scheme::Oval)).unwrap();
        for k in 0..=10u64 {
            tree.insert(k, vec![0]).unwrap();
        }
        let logical = tree.render_logical().unwrap();
        let disk = tree.render_disk_view().unwrap();
        assert_ne!(logical, disk, "oval disguise must change the visible keys");
    }

    #[test]
    fn disk_view_matches_logical_shape_for_sum() {
        // §4.3: order preserved, so node boundaries coincide; only values
        // change.
        let mut tree =
            EncipheredBTree::create_in_memory(SchemeConfig::demo(Scheme::SumOfTreatments)).unwrap();
        for k in 0..=10u64 {
            tree.insert(k, vec![0]).unwrap();
        }
        let logical = tree.render_logical().unwrap();
        let disk = tree.render_disk_view().unwrap();
        let shape = |s: &str| -> Vec<usize> { s.lines().map(|l| l.matches('[').count()).collect() };
        assert_eq!(shape(&logical), shape(&disk));
    }

    #[test]
    fn counters_demonstrate_the_headline_claim() {
        // One pointer decryption per node visit (substitution) vs log2(n)
        // key decryptions (Bayer–Metzger) on the same workload.
        let n_keys = 400u64;
        let mut sub = EncipheredBTree::create_in_memory(SchemeConfig::with_capacity(
            Scheme::Oval,
            n_keys + 1,
        ))
        .unwrap();
        let mut bm = EncipheredBTree::create_in_memory({
            let mut c = SchemeConfig::with_capacity(Scheme::BayerMetzger, n_keys + 1);
            c.block_size = 4096;
            c
        })
        .unwrap();
        for k in 0..n_keys {
            sub.insert(k, vec![1]).unwrap();
            bm.insert(k, vec![1]).unwrap();
        }
        sub.counters().reset();
        bm.counters().reset();
        for k in (0..n_keys).step_by(7) {
            let _ = sub.get_pointer(k).unwrap();
            let _ = bm.get_pointer(k).unwrap();
        }
        let s_sub = sub.snapshot();
        let s_bm = bm.snapshot();
        let lookups = (n_keys / 7 + 1) as f64;
        let sub_per = s_sub.total_decrypts() as f64 / lookups;
        let bm_per = s_bm.total_decrypts() as f64 / lookups;
        assert!(
            sub_per < bm_per,
            "substitution ({sub_per:.2}/lookup) must beat search-and-decrypt ({bm_per:.2}/lookup)"
        );
        assert_eq!(s_sub.key_decrypts, 0, "substitution never decrypts keys");
    }

    /// The cache's load-bearing invariant: with the plaintext node cache
    /// on, every logical operation counter reads *exactly* as it does
    /// with the cache off, for every scheme, across hits and misses.
    #[test]
    fn node_cache_preserves_logical_counters_exactly() {
        for scheme in Scheme::MEASURED {
            let n = 300u64;
            let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
            cfg.block_size = 512;
            let keys: Vec<u64> = (1..n).collect();
            let run = |node_cache: usize| {
                let mut cfg = cfg.clone();
                cfg.node_cache = node_cache;
                let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
                for &k in &keys {
                    tree.insert(k, vec![k as u8]).unwrap();
                }
                tree.counters().reset();
                // Re-probe-heavy mix: repeated hits, misses, absent keys.
                for _ in 0..3 {
                    for &k in keys.iter().step_by(7) {
                        let _ = tree.get_pointer(k).unwrap();
                    }
                }
                let _ = tree.get_pointer(n + 1);
                (tree.snapshot(), tree.cached_nodes())
            };
            let (off, off_cached) = run(0);
            let (on, on_cached) = run(4096);
            assert_eq!(off_cached, 0);
            assert!(on_cached > 0, "{}: cache never filled", scheme.name());
            // Compare every *logical* field; the physical-I/O telemetry
            // (block reads, pool and node-cache hit/miss counts) is
            // allowed — and expected — to differ: that is the saving.
            let mut on_masked = on;
            on_masked.block_reads = off.block_reads;
            on_masked.cache_hits = off.cache_hits;
            on_masked.cache_misses = off.cache_misses;
            on_masked.node_cache_hits = off.node_cache_hits;
            on_masked.node_cache_misses = off.node_cache_misses;
            assert_eq!(
                on_masked,
                off,
                "{}: cache changed the logical cost model",
                scheme.name()
            );
            assert!(on.node_cache_hits > 0, "{}", scheme.name());
        }
    }

    /// Write-behind's load-bearing invariant (PR 7's mirror of the node
    /// cache's): with deferred re-sealing on, every *logical* operation
    /// counter reads exactly as it does with it off, for every measured
    /// scheme, across mutations, reads of dirty nodes, budget evictions
    /// and the final flush.
    #[test]
    fn write_behind_preserves_logical_counters_exactly() {
        for scheme in Scheme::MEASURED {
            let n = 300u64;
            let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
            cfg.block_size = 512;
            let run = |write_behind: usize| {
                let mut cfg = cfg.clone();
                cfg.write_behind = write_behind;
                let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
                for k in 1..n {
                    tree.insert(k, vec![k as u8]).unwrap();
                }
                tree.counters().reset();
                // Mutation-heavy mix over dirty and clean nodes — updates,
                // deletes, re-inserts, point reads of hot (dirty) keys, a
                // range scan — then the flush that seals every deferred
                // node.
                for k in (1..n).step_by(5) {
                    tree.insert(k, vec![(k + 1) as u8]).unwrap();
                }
                for k in (1..n).step_by(9) {
                    tree.delete(k).unwrap();
                }
                for k in (1..n).step_by(9) {
                    tree.insert(k, vec![7]).unwrap();
                }
                for k in (1..n).step_by(3) {
                    let _ = tree.get_pointer(k).unwrap();
                }
                assert!(!tree.range(n / 4, n / 2).unwrap().is_empty());
                tree.flush().unwrap();
                assert_eq!(tree.deferred_nodes(), 0, "flush seals everything");
                tree.snapshot()
            };
            let off = run(0);
            // A budget small enough that the workload also exercises
            // budget-pressure eviction, not just the final flush.
            let on = run(4);
            assert_eq!(off.node_writes_deferred, 0);
            assert!(
                on.node_writes_deferred > 0,
                "{}: write-behind never engaged",
                scheme.name()
            );
            assert!(
                on.node_reseals > 0 && on.node_reseals < on.node_writes_deferred,
                "{}: deferral must absorb writes (deferred {}, resealed {})",
                scheme.name(),
                on.node_writes_deferred,
                on.node_reseals
            );
            // Logical fields must match exactly; only the physical-I/O
            // telemetry (block writes, reseals, cache traffic) may differ
            // — that difference is the optimisation.
            let mut on_masked = on;
            on_masked.block_reads = off.block_reads;
            on_masked.block_writes = off.block_writes;
            on_masked.cache_hits = off.cache_hits;
            on_masked.cache_misses = off.cache_misses;
            on_masked.cache_evicts = off.cache_evicts;
            on_masked.node_cache_hits = off.node_cache_hits;
            on_masked.node_cache_misses = off.node_cache_misses;
            on_masked.node_writes_deferred = off.node_writes_deferred;
            on_masked.node_reseals = off.node_reseals;
            assert_eq!(
                on_masked,
                off,
                "{}: write-behind changed the logical cost model",
                scheme.name()
            );
        }
    }

    /// PR 4 extension of the pinning above: range scans and record `get`s
    /// with *both* caches on (plaintext node cache + decoded-record cache)
    /// report logical counters identical to both caches off, for every
    /// measured scheme.
    #[test]
    fn caches_preserve_logical_counters_on_range_and_get() {
        for scheme in Scheme::MEASURED {
            let n = 300u64;
            let mut cfg = SchemeConfig::with_capacity(scheme, n + 2);
            cfg.block_size = 512;
            let keys: Vec<u64> = (1..n).collect();
            let run = |node_cache: usize, record_cache: usize| {
                let mut cfg = cfg.clone();
                cfg.node_cache = node_cache;
                cfg.record_cache = record_cache;
                let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
                for &k in &keys {
                    tree.insert(k, vec![k as u8; 24]).unwrap();
                }
                tree.counters().reset();
                // Re-read-heavy mix: repeated record gets, repeated range
                // scans, an absent key.
                for _ in 0..3 {
                    for &k in keys.iter().step_by(11) {
                        assert!(tree.get(k).unwrap().is_some());
                    }
                    assert!(!tree.range(n / 4, n / 2).unwrap().is_empty());
                }
                let _ = tree.get(n + 1);
                (tree.snapshot(), tree.cached_nodes(), tree.cached_records())
            };
            let (off, off_nodes, off_records) = run(0, 0);
            let (on, on_nodes, on_records) = run(4096, 4096);
            assert_eq!((off_nodes, off_records), (0, 0));
            assert!(on_nodes > 0, "{}: node cache never filled", scheme.name());
            assert!(
                on_records > 0,
                "{}: record cache never filled",
                scheme.name()
            );
            // Compare every *logical* field; only the physical-I/O
            // telemetry may differ — that is the saving.
            let mut on_masked = on;
            on_masked.block_reads = off.block_reads;
            on_masked.cache_hits = off.cache_hits;
            on_masked.cache_misses = off.cache_misses;
            on_masked.node_cache_hits = off.node_cache_hits;
            on_masked.node_cache_misses = off.node_cache_misses;
            on_masked.record_cache_hits = off.record_cache_hits;
            on_masked.record_cache_misses = off.record_cache_misses;
            assert_eq!(
                on_masked,
                off,
                "{}: caches changed the logical cost model",
                scheme.name()
            );
            assert!(on.node_cache_hits > 0, "{}", scheme.name());
            assert!(on.record_cache_hits > 0, "{}", scheme.name());
            assert!(
                on.data_decrypts > 0,
                "{}: record gets must still report the paper's unseal cost",
                scheme.name()
            );
        }
    }

    /// Record-cache hits bypass the data blocks entirely: with the whole
    /// working set cached, repeated `get`s stop touching the store while
    /// the logical data_decrypts counter keeps climbing.
    #[test]
    fn record_cache_hits_bypass_physical_reads() {
        let mut cfg = SchemeConfig::with_capacity(Scheme::Oval, 500);
        cfg.block_size = 512;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        for k in 0..200u64 {
            tree.insert(k, vec![k as u8; 64]).unwrap();
        }
        let _ = tree.get(77).unwrap(); // warm node path + record
        tree.counters().reset();
        for _ in 0..50 {
            assert_eq!(tree.get(77).unwrap().unwrap(), vec![77u8; 64]);
        }
        let s = tree.snapshot();
        assert_eq!(s.block_reads, 0, "no store reads on hits");
        assert_eq!(s.record_cache_misses, 0);
        assert_eq!(s.record_cache_hits, 50);
        assert_eq!(s.data_decrypts, 50, "logical unseals still reported");
    }

    /// The maintenance orphan sweep: keyed record copies no tree pointer
    /// references (the state an interrupted compaction move leaves
    /// behind) are found by walking the reverse index against the tree
    /// and tombstoned, with the work and the reclaim count reported.
    #[test]
    fn orphan_sweep_reclaims_unreferenced_keyed_records() {
        let mut tree = EncipheredBTree::create_in_memory(SchemeConfig::demo(Scheme::Oval)).unwrap();
        for k in 0..=10u64 {
            tree.insert(k, vec![k as u8; 16]).unwrap();
        }
        // Plant stale copies under live keys, straight into the record
        // store: each gets a reverse-index row but no tree pointer.
        const ORPHANS: u64 = 4;
        for k in 0..ORPHANS {
            tree.records.insert_keyed(k, &[0xAB; 16]).unwrap();
        }
        let mut collected = 0u64;
        let mut slots = 0u64;
        for _ in 0..8 {
            let r = tree.compact_step(4).unwrap();
            collected += r.orphans_collected;
            slots += r.sweep_slots;
        }
        assert_eq!(collected, ORPHANS, "every planted orphan is reclaimed");
        assert!(slots >= ORPHANS, "the sweep reports its examined slots");
        let s = tree.snapshot();
        assert_eq!(s.compact_orphans_collected, ORPHANS);
        assert_eq!(s.compact_sweep_slots, slots);
        // The live records under the same keys are untouched.
        for k in 0..=10u64 {
            assert_eq!(tree.get(k).unwrap().unwrap(), vec![k as u8; 16]);
        }
        tree.validate().unwrap();
        // A clean tree yields nothing further: the sweep is idempotent.
        let r = tree.compact_step(4).unwrap();
        assert_eq!(r.orphans_collected, 0);
    }

    /// Online compaction: delete-heavy churn stops leaking space, live
    /// records survive byte for byte, and reclaimed blocks are reused.
    #[test]
    fn compaction_reclaims_space_and_preserves_records() {
        let mut cfg = SchemeConfig::with_capacity(Scheme::Oval, 800);
        cfg.block_size = 512;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        let rec = |k: u64| vec![k as u8; 100];
        for k in 0..600u64 {
            tree.insert(k, rec(k)).unwrap();
        }
        for k in (0..600u64).filter(|k| k % 3 != 0) {
            tree.delete(k).unwrap();
        }
        let (_, free_before) = tree.data_block_usage();
        let mut freed = 0u64;
        loop {
            let r = tree.compact_step(16).unwrap();
            assert_eq!(r.orphaned_records, 0);
            if r.freed_blocks == 0 {
                break;
            }
            freed += r.freed_blocks;
        }
        assert!(freed > 0, "tombstoned blocks were reclaimed");
        // Reclaims are quarantined until the flush protocol commits them.
        tree.flush().unwrap();
        let (_, free_after) = tree.data_block_usage();
        assert!(free_after > free_before);
        tree.validate().unwrap();
        for k in 0..600u64 {
            let want = (k % 3 == 0).then(|| rec(k));
            assert_eq!(tree.get(k).unwrap(), want, "key {k}");
        }
        // Sustained churn: delete/compact/reinsert cycles must reach a
        // bounded steady state instead of leaking space forever (without
        // compaction every cycle would grow the device by ~100 blocks).
        let mut totals = Vec::new();
        for _ in 0..4 {
            for k in 0..600u64 {
                tree.insert(k, rec(k)).unwrap();
            }
            for k in (0..600u64).filter(|k| k % 3 != 0) {
                tree.delete(k).unwrap();
            }
            while tree.compact_step(1_000).unwrap().freed_blocks > 0 {}
            tree.flush().unwrap(); // commit the reclaims so churn can reuse them
            totals.push(tree.data_block_usage().0);
        }
        assert!(
            totals.last().unwrap() <= &(totals[0] + 8),
            "churn cycles must not keep growing the device: {totals:?}"
        );
        tree.validate().unwrap();
    }

    /// A crash mid-compaction recovers to *either* image: before the
    /// checkpoint commits, the no-steal pool keeps every compacted page in
    /// RAM, so the medium still holds the pre-pass image; after the
    /// journaled checkpoint, the post-pass image — never a mix, and never
    /// a lost live record.
    #[test]
    fn crash_mid_compaction_recovers_to_either_image() {
        let dir = tmpdir("compact_crash");
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, 800).on_disk(&dir);
        let rec = |k: u64| format!("compact-crash-{k:04}").into_bytes();
        let check_live = |tree: &EncipheredBTree| {
            for k in 0..400u64 {
                let want = (k % 2 == 0).then(|| rec(k));
                assert_eq!(tree.get(k).unwrap(), want, "key {k}");
            }
        };
        {
            let mut tree = EncipheredBTree::create(cfg.clone()).unwrap();
            for k in 0..400u64 {
                tree.insert(k, rec(k)).unwrap();
            }
            for k in (1..400u64).step_by(2) {
                tree.delete(k).unwrap();
            }
            tree.flush().unwrap(); // image A durable, tombstones included
            let r = tree.compact_step(1_000).unwrap();
            assert!(r.freed_blocks > 0, "the pass did real work");
            // Dropped without flush: the crash. Nothing the pass touched
            // reached the medium.
        }
        {
            let mut tree = EncipheredBTree::open(cfg.clone()).unwrap();
            tree.validate().unwrap();
            check_live(&tree); // image A: zero lost live records
            assert!(
                tree.pending_tombstones().unwrap() > 0,
                "image A still carries the garbage"
            );
            // Compact to quiescence and checkpoint: image B commits.
            while tree.compact_step(1_000).unwrap().freed_blocks > 0 {}
            tree.flush().unwrap();
        }
        {
            let mut tree = EncipheredBTree::open(cfg).unwrap();
            tree.validate().unwrap();
            check_live(&tree); // image B: zero lost live records
            let (_, free) = tree.data_block_usage();
            assert!(free > 0, "the reclaimed free list survived the reopen");
            assert_eq!(tree.pending_tombstones().unwrap(), 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Mutations invalidate cached decodings: a probe after an update or
    /// delete must never serve stale plaintext.
    #[test]
    fn node_cache_invalidated_on_mutation() {
        let mut cfg = SchemeConfig::with_capacity(Scheme::Oval, 500);
        cfg.block_size = 512;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        for k in 0..400u64 {
            tree.insert(k, format!("v1-{k}").into_bytes()).unwrap();
        }
        // Warm the cache on every probed path.
        for k in 0..400u64 {
            assert_eq!(
                tree.get(k).unwrap().unwrap(),
                format!("v1-{k}").into_bytes()
            );
        }
        assert!(tree.cached_nodes() > 0);
        // Overwrite half, delete a quarter; structure shifts too.
        for k in (0..400u64).step_by(2) {
            tree.insert(k, format!("v2-{k}").into_bytes()).unwrap();
        }
        for k in (0..400u64).step_by(4) {
            tree.delete(k).unwrap();
        }
        tree.validate().unwrap();
        for k in 0..400u64 {
            let want = if k % 4 == 0 {
                None
            } else if k % 2 == 0 {
                Some(format!("v2-{k}").into_bytes())
            } else {
                Some(format!("v1-{k}").into_bytes())
            };
            assert_eq!(tree.get(k).unwrap(), want, "key {k}");
        }
    }

    /// Cache hits skip the physical pointer decipherments: with the whole
    /// probed path cached, repeated lookups stop touching the store at
    /// all while the logical decrypt counters keep climbing.
    #[test]
    fn node_cache_hits_bypass_physical_reads() {
        let mut cfg = SchemeConfig::with_capacity(Scheme::Oval, 500);
        cfg.block_size = 512;
        let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
        for k in 0..400u64 {
            tree.insert(k, vec![1]).unwrap();
        }
        let _ = tree.get_pointer(123).unwrap(); // fill the path
        tree.counters().reset();
        for _ in 0..50 {
            assert!(tree.get_pointer(123).unwrap().is_some());
        }
        let s = tree.snapshot();
        assert_eq!(s.node_cache_misses, 0, "path fully cached");
        assert!(s.node_cache_hits >= 50);
        assert_eq!(s.block_reads, 0, "no store reads on hits");
        assert!(
            s.ptr_decrypts >= 50,
            "logical decrypts still reported: {}",
            s.ptr_decrypts
        );
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sks_core_tree_{}_{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn file_backend_round_trips_across_reopen() {
        let dir = tmpdir("roundtrip");
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, 600).on_disk(&dir);
        {
            let mut tree = EncipheredBTree::create(cfg.clone()).unwrap();
            for k in 0..500u64 {
                tree.insert(k, format!("record-{k}").into_bytes()).unwrap();
            }
            for k in (0..500u64).step_by(3) {
                tree.delete(k).unwrap();
            }
            tree.flush().unwrap();
        }
        {
            let tree = EncipheredBTree::open(cfg).unwrap();
            assert_eq!(tree.len(), 500 - 500u64.div_ceil(3));
            tree.validate().unwrap();
            for k in 0..500u64 {
                let got = tree.get(k).unwrap();
                if k % 3 == 0 {
                    assert_eq!(got, None, "deleted key {k}");
                } else {
                    assert_eq!(got.unwrap(), format!("record-{k}").into_bytes());
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_wrong_key_fails_closed() {
        let dir = tmpdir("wrong_key");
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, 200).on_disk(&dir);
        {
            let mut tree = EncipheredBTree::create(cfg.clone()).unwrap();
            tree.insert(7, b"sealed".to_vec()).unwrap();
            tree.flush().unwrap();
        }
        let mut bad = cfg.clone();
        bad.data_key ^= 1;
        let err = EncipheredBTree::open(bad).unwrap_err();
        assert!(
            err.to_string().contains("key mismatch"),
            "wrong data key must fail closed, got: {err}"
        );
        let mut bad = cfg.clone();
        bad.tree_key ^= 1;
        assert!(EncipheredBTree::open(bad).is_err(), "wrong tree key");
        let mut bad = cfg.clone();
        bad.scheme = Scheme::SumOfTreatments;
        assert!(EncipheredBTree::open(bad).is_err(), "wrong scheme");
        // The failed opens destroyed nothing.
        let tree = EncipheredBTree::open(cfg).unwrap();
        assert_eq!(tree.get(7).unwrap().unwrap(), b"sealed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_images_stay_enciphered_on_the_medium() {
        let dir = tmpdir("sealed_medium");
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, 200).on_disk(&dir);
        let mut tree = EncipheredBTree::create(cfg).unwrap();
        tree.insert(5, b"EXTREMELY-SECRET-PAYLOAD".to_vec())
            .unwrap();
        tree.flush().unwrap();
        for path in [dir.join("nodes.sks"), dir.join("data.sks")] {
            let raw = std::fs::read(&path).unwrap();
            assert!(
                !raw.windows(16).any(|w| w == &b"EXTREMELY-SECRET"[..]),
                "plaintext record leaked into {}",
                path.display()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_backend_refuses_open() {
        let err = EncipheredBTree::open(SchemeConfig::demo(Scheme::Oval)).unwrap_err();
        assert!(matches!(err, CoreError::Config(_)), "got {err}");
    }

    #[test]
    fn raw_images_do_not_leak_plaintext_records() {
        let mut tree = EncipheredBTree::create_in_memory(SchemeConfig::demo(Scheme::Oval)).unwrap();
        tree.insert(5, b"EXTREMELY-SECRET-PAYLOAD".to_vec())
            .unwrap();
        for image in [
            tree.raw_node_image().unwrap(),
            tree.raw_data_image().unwrap(),
        ] {
            let leak = image
                .iter()
                .any(|b| b.windows(16).any(|w| w == &b"EXTREMELY-SECRET"[..]));
            assert!(!leak);
        }
    }
}
