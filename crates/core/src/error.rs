//! Unified error type for the high-level API.

use sks_btree_core::{CodecError, TreeError};
use sks_designs::diffset::DesignError;
use sks_storage::StorageError;

use crate::disguise::DisguiseError;

/// Any failure surfaced by the enciphered-tree facade.
#[derive(Debug)]
pub enum CoreError {
    Tree(TreeError),
    Storage(StorageError),
    Codec(CodecError),
    Disguise(DisguiseError),
    Design(DesignError),
    /// Record-store failures (slot not found, record too large, …).
    Record(String),
    /// A cryptographic integrity check failed (security-filter checksum).
    Integrity(String),
    /// Configuration is internally inconsistent.
    Config(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Tree(e) => write!(f, "{e}"),
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::Codec(e) => write!(f, "{e}"),
            CoreError::Disguise(e) => write!(f, "{e}"),
            CoreError::Design(e) => write!(f, "{e}"),
            CoreError::Record(msg) => write!(f, "record store: {msg}"),
            CoreError::Integrity(msg) => write!(f, "integrity violation: {msg}"),
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TreeError> for CoreError {
    fn from(e: TreeError) -> Self {
        CoreError::Tree(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<DisguiseError> for CoreError {
    fn from(e: DisguiseError) -> Self {
        CoreError::Disguise(e)
    }
}

impl From<DesignError> for CoreError {
    fn from(e: DesignError) -> Self {
        CoreError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let samples: Vec<CoreError> = vec![
            CoreError::Record("slot missing".into()),
            CoreError::Integrity("checksum mismatch".into()),
            CoreError::Config("v too small".into()),
            CoreError::Disguise(DisguiseError::NotInImage { value: 9 }),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
