//! The high-level security filter of §4.3.
//!
//! A *security filter* (Denning's commutative filters, refs \[2\]/\[10\]) sits
//! between users and a commercial off-the-shelf DBMS that offers no access
//! to its low-level record routines. The filter (i) substitutes the search
//! field with the order-preserving sum-of-treatments value, (ii) enciphers
//! the record body, and (iii) binds both with a cryptographic checksum —
//! then hands the result to the *unmodified* DBMS. "Since the substitution
//! using the sum of treatments preserves the ordering of the original
//! search keys, the shape of the B-Tree would be the same as in the case
//! when no substitution was performed" — so the DBMS below is a perfectly
//! ordinary plaintext B-tree.

use sks_btree_core::{BTree, PlainCodec};
use sks_crypto::des::Des;
use sks_crypto::modes::{cbc_mac, ctr_xor};
use sks_crypto::speck::Speck64;
use sks_storage::{MemDisk, OpCounters, OpSnapshot};

use crate::disguise::{KeyDisguise, SumSubstitution};
use crate::error::CoreError;
use crate::records::RecordStore;

/// Secret material held by the filter (never by the DBMS).
pub struct FilterSecrets {
    /// Order-preserving key substitution (design + `w`).
    pub substitution: SumSubstitution,
    /// Record-body cipher key.
    pub record_key: u128,
    /// Checksum (CBC-MAC) key.
    pub checksum_key: u64,
}

/// The retrofit filter in front of a COTS DBMS stand-in.
pub struct SecurityFilter {
    substitution: SumSubstitution,
    record_cipher: Speck64,
    mac_cipher: Des,
    /// The unmodified DBMS: a *plaintext* B-tree — it never sees real keys
    /// or plaintext records.
    dbms: BTree<MemDisk, PlainCodec>,
    store: RecordStore<MemDisk>,
    counters: OpCounters,
}

impl SecurityFilter {
    pub fn new(secrets: FilterSecrets, block_size: usize) -> Result<Self, CoreError> {
        let counters = OpCounters::new();
        let disk = MemDisk::with_counters(block_size, counters.clone());
        let dbms = BTree::create(disk, PlainCodec::new(counters.clone()))?;
        // No record cache: the filter seals record bodies itself above
        // this layer, so cached plaintext here would only hold ciphertext.
        let store = RecordStore::create(
            MemDisk::with_counters(block_size, counters.clone()),
            secrets.record_key,
            0,
        )?;
        Ok(SecurityFilter {
            substitution: secrets.substitution,
            record_cipher: Speck64::from_u128(secrets.record_key ^ 0x5157),
            mac_cipher: Des::new(secrets.checksum_key),
            dbms,
            store,
            counters,
        })
    }

    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    pub fn snapshot(&self) -> OpSnapshot {
        self.counters.snapshot()
    }

    pub fn len(&self) -> u64 {
        self.dbms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dbms.is_empty()
    }

    fn checksum(&self, disguised_key: u64, ciphertext: &[u8]) -> u64 {
        let mut material = Vec::with_capacity(8 + ciphertext.len());
        material.extend_from_slice(&disguised_key.to_be_bytes());
        material.extend_from_slice(ciphertext);
        cbc_mac(&self.mac_cipher, &material)
    }

    /// Stores a record under `key`. The DBMS below only ever sees
    /// `(k̂, pointer)` and an opaque byte blob.
    pub fn insert(&mut self, key: u64, record: &[u8]) -> Result<(), CoreError> {
        let k_hat = self.substitution.disguise(key)?;
        self.counters.bump(|c| &c.data_encrypts);
        let ct = ctr_xor(&self.record_cipher, k_hat, record);
        let mac = self.checksum(k_hat, &ct);
        // Stored blob: mac ‖ ciphertext.
        let mut blob = Vec::with_capacity(8 + ct.len());
        blob.extend_from_slice(&mac.to_be_bytes());
        blob.extend_from_slice(&ct);
        let ptr = self.store.insert(&blob)?;
        if let Some(old) = self.dbms.insert(k_hat, ptr)? {
            self.store.delete(old)?;
        }
        Ok(())
    }

    /// Retrieves and verifies the record stored under `key`.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, CoreError> {
        let k_hat = self.substitution.disguise(key)?;
        let Some(ptr) = self.dbms.get(k_hat)? else {
            return Ok(None);
        };
        let Some(blob) = self.store.get(ptr)? else {
            return Err(CoreError::Record("dangling pointer in DBMS index".into()));
        };
        if blob.len() < 8 {
            return Err(CoreError::Integrity("blob too short for checksum".into()));
        }
        let stored_mac = u64::from_be_bytes(blob[0..8].try_into().expect("checked"));
        let ct = &blob[8..];
        if self.checksum(k_hat, ct) != stored_mac {
            return Err(CoreError::Integrity(format!(
                "checksum mismatch for key {key}: record tampered or swapped"
            )));
        }
        self.counters.bump(|c| &c.data_decrypts);
        Ok(Some(ctr_xor(&self.record_cipher, k_hat, ct)))
    }

    /// Deletes the record under `key`.
    pub fn delete(&mut self, key: u64) -> Result<bool, CoreError> {
        let k_hat = self.substitution.disguise(key)?;
        match self.dbms.delete(k_hat)? {
            Some(ptr) => {
                self.store.delete(ptr)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Range query — works because the substitution is order-preserving:
    /// the filter substitutes the *bounds* and the unmodified DBMS does an
    /// ordinary range scan over disguised values.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, CoreError> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let cap = self.substitution.capacity();
        let lo_hat = self.substitution.disguise(lo.min(cap - 1))?;
        let hi_hat = self.substitution.disguise(hi.min(cap - 1))?;
        let mut out = Vec::new();
        for (k_hat, ptr) in self.dbms.range(lo_hat, hi_hat)? {
            let key = self.substitution.recover(k_hat)?;
            if key < lo || key > hi {
                continue;
            }
            let Some(blob) = self.store.get(ptr)? else {
                continue;
            };
            let stored_mac = u64::from_be_bytes(blob[0..8].try_into().expect("length checked"));
            let ct = &blob[8..];
            if self.checksum(k_hat, ct) != stored_mac {
                return Err(CoreError::Integrity(format!(
                    "checksum mismatch in range scan at disguised key {k_hat}"
                )));
            }
            self.counters.bump(|c| &c.data_decrypts);
            out.push((key, ctr_xor(&self.record_cipher, k_hat, ct)));
        }
        Ok(out)
    }

    /// What the DBMS (and any attacker compromising it) actually sees:
    /// the disguised keys in index order.
    pub fn dbms_visible_keys(&self) -> Result<Vec<u64>, CoreError> {
        Ok(self.dbms.scan_all()?.into_iter().map(|(k, _)| k).collect())
    }

    /// The DBMS's tree shape is the plaintext shape (§4.3's claim) — exposed
    /// for tests and experiments.
    pub fn dbms_height(&self) -> u32 {
        self.dbms.height()
    }

    /// Tamper with the stored blob of `key` (test hook for the integrity
    /// experiment): flips one byte in the record store.
    pub fn tamper_with(&mut self, key: u64) -> Result<(), CoreError> {
        let k_hat = self.substitution.disguise(key)?;
        let Some(ptr) = self.dbms.get(k_hat)? else {
            return Err(CoreError::Record("no such key".into()));
        };
        let Some(mut blob) = self.store.get(ptr)? else {
            return Err(CoreError::Record("dangling pointer".into()));
        };
        let last = blob.len() - 1;
        blob[last] ^= 0xFF;
        self.store.delete(ptr)?;
        let new_ptr = self.store.insert(&blob)?;
        self.dbms.insert(k_hat, new_ptr)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_designs::diffset::DifferenceSet;

    fn filter() -> SecurityFilter {
        let counters = OpCounters::new();
        let substitution = SumSubstitution::new(
            DifferenceSet::singer(13).unwrap(), // v = 183
            9,
            150,
            counters,
        )
        .unwrap();
        SecurityFilter::new(
            FilterSecrets {
                substitution,
                record_key: 0x0123_4567_89AB_CDEF_1122_3344_5566_7788,
                checksum_key: 0xA1B2C3D4E5F60708,
            },
            512,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut f = filter();
        for k in 0..100u64 {
            f.insert(k, format!("employee #{k}: salary {}", 1000 * k).as_bytes())
                .unwrap();
        }
        for k in 0..100u64 {
            let got = f.get(k).unwrap().unwrap();
            assert_eq!(
                got,
                format!("employee #{k}: salary {}", 1000 * k).into_bytes()
            );
        }
        assert_eq!(f.get(149).unwrap(), None);
    }

    #[test]
    fn dbms_never_sees_real_keys_or_plaintext() {
        let mut f = filter();
        for k in 0..50u64 {
            f.insert(k, b"CONFIDENTIAL-BODY").unwrap();
        }
        let visible = f.dbms_visible_keys().unwrap();
        // No real key (0..50) appears among visible index keys.
        for k in 0..50u64 {
            assert!(!visible.contains(&k), "real key {k} leaked to DBMS");
        }
        // Visible keys are ascending (the DBMS is an ordinary ordered index).
        assert!(visible.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_queries_survive_the_filter() {
        let mut f = filter();
        for k in (0..120u64).step_by(2) {
            f.insert(k, &k.to_be_bytes()).unwrap();
        }
        let got: Vec<u64> = f.range(10, 31).unwrap().iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = (10..=31).filter(|k| k % 2 == 0).collect();
        assert_eq!(got, want);
        // Full range.
        assert_eq!(f.range(0, 149).unwrap().len(), 60);
        // Empty and inverted.
        assert!(f.range(11, 11).unwrap().is_empty());
        assert!(f.range(31, 10).unwrap().is_empty());
    }

    #[test]
    fn tampering_is_detected() {
        let mut f = filter();
        f.insert(7, b"original payroll row").unwrap();
        f.tamper_with(7).unwrap();
        let err = f.get(7).unwrap_err();
        assert!(matches!(err, CoreError::Integrity(_)), "got: {err}");
    }

    #[test]
    fn delete_works() {
        let mut f = filter();
        f.insert(3, b"x").unwrap();
        assert!(f.delete(3).unwrap());
        assert!(!f.delete(3).unwrap());
        assert_eq!(f.get(3).unwrap(), None);
    }

    #[test]
    fn replacement_updates_record() {
        let mut f = filter();
        f.insert(5, b"v1").unwrap();
        f.insert(5, b"v2").unwrap();
        assert_eq!(f.get(5).unwrap().unwrap(), b"v2");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn shape_equals_plaintext_shape() {
        // Build a plaintext tree over the same keys and compare heights:
        // order preservation means identical shape (§4.3).
        let mut f = filter();
        let keys: Vec<u64> = (0..150).collect();
        for &k in &keys {
            f.insert(k, b"r").unwrap();
        }
        let counters = OpCounters::new();
        let disk = MemDisk::with_counters(512, counters.clone());
        let mut plain = BTree::create(disk, PlainCodec::new(counters)).unwrap();
        for &k in &keys {
            plain.insert(k, sks_btree_core::RecordPtr(k)).unwrap();
        }
        assert_eq!(f.dbms_height(), plain.height());
    }
}
