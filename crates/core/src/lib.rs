//! # sks-core — Search Key Substitution in the Encipherment of B-Trees
//!
//! The primary contribution of Hardjono & Seberry (VLDB 1990), built on the
//! workspace substrates:
//!
//! * [`disguise`] — the key disguises of §4: oval substitution (§4.1),
//!   exponentiation substitution (§4.2, both the invertible reading and the
//!   literal worked example), sum-of-treatments (§4.3), plus the identity
//!   and conversion-table baselines.
//! * [`codec`] — the node-block encipherment formats of §3/§5: the paper's
//!   `f(k), E(b‖a‖p)` layout with pluggable DES/Speck/RSA pointer sealers,
//!   and both Bayer–Metzger baselines (per-triplet search-and-decrypt and
//!   whole-page).
//! * [`config`] / [`tree`] — [`EncipheredBTree`]: one declarative
//!   [`SchemeConfig`] builds the full stack (design → disguise → sealer →
//!   codec → B-tree → enciphered data blocks) with exact operation counts.
//! * [`filter`] — the §4.3 high-level [`SecurityFilter`] retrofitted onto
//!   an unmodified plaintext DBMS stand-in.
//! * [`records`] — enciphered data blocks with the independent cipher of §5.
//! * [`mls`] — per-record security levels via the Akl–Taylor hierarchy
//!   (§5's multilevel suggestion).
//! * [`layout`] — the storage/fanout/depth arithmetic of experiment E3.
//!
//! The experiment index (E1–E8) lives in `sks-bench`'s `experiments`
//! module; `cargo run --release -p sks-bench --bin repro` regenerates the
//! paper's tables, figures and measurements.

pub mod codec;
pub mod config;
pub mod disguise;
pub mod error;
pub mod filter;
pub mod layout;
pub mod mls;
pub mod records;
pub mod tree;

pub use codec::{
    AnyCodec, BayerMetzgerCodec, BlockCipherSealer, FullPageCodec, RsaSealer, SubstitutionCodec,
    TripletSealer,
};
pub use config::{DesignChoice, Scheme, SchemeConfig, SealerKind, StorageBackend};
pub use disguise::{
    DisguiseError, ExpSubstitution, IdentityDisguise, KeyDisguise, OvalSubstitution,
    PaperExpSubstitution, SumSubstitution, TableDisguise,
};
pub use error::CoreError;
pub use filter::{FilterSecrets, SecurityFilter};
pub use layout::{layouts_at, SchemeLayout};
pub use mls::MultilevelRecordStore;
pub use records::{RecordStore, SharedRecordCache};
pub use tree::{CompactionReport, EncipheredBTree};

// The observability level knob `SchemeConfig::observability` takes,
// re-exported so callers need no direct sks-storage dependency.
pub use sks_storage::ObsLevel;
