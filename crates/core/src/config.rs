//! Scheme configuration: one declarative description that builds the whole
//! stack (design, disguise, sealer, codec) for any of the paper's schemes
//! or baselines.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sks_btree_core::PlainCodec;
use sks_crypto::pagekey::{PageCipherKind, PageKeyScheme};
use sks_crypto::rsa::RsaKey;
use sks_designs::diffset::DifferenceSet;
use sks_designs::primes::{next_prime, primitive_root};
use sks_storage::OpCounters;

use crate::codec::{
    AnyCodec, BayerMetzgerCodec, BlockCipherSealer, FullPageCodec, RsaSealer, SubstitutionCodec,
    TripletSealer,
};
use crate::disguise::{
    ExpSubstitution, IdentityDisguise, KeyDisguise, OvalSubstitution, PaperExpSubstitution,
    SumSubstitution, TableDisguise,
};
use crate::error::CoreError;

/// Which encipherment scheme the tree runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No cryptography (baseline).
    Plaintext,
    /// Bayer–Metzger per-triplet encipherment with binary
    /// search-and-decrypt (§3 baseline).
    BayerMetzger,
    /// Bayer–Metzger whole-page encipherment (§2 baseline).
    BayerMetzgerPage,
    /// §4.1 oval substitution + encrypted pointers — the paper's scheme.
    Oval,
    /// §4.2 exponentiation substitution (invertible Pohlig–Hellman reading).
    Exponentiation,
    /// §4.2 literal worked-example construction (figure reproduction only).
    ExponentiationPaper,
    /// §4.3 order-preserving sum-of-treatments substitution.
    SumOfTreatments,
    /// Conversion-table strawman (E8 comparison).
    ConversionTable,
}

impl Scheme {
    pub const ALL: [Scheme; 8] = [
        Scheme::Plaintext,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
        Scheme::Oval,
        Scheme::Exponentiation,
        Scheme::ExponentiationPaper,
        Scheme::SumOfTreatments,
        Scheme::ConversionTable,
    ];

    /// The schemes used in quantitative experiments (excludes the literal
    /// figure-only construction).
    pub const MEASURED: [Scheme; 6] = [
        Scheme::Plaintext,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
        Scheme::Oval,
        Scheme::Exponentiation,
        Scheme::SumOfTreatments,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Plaintext => "plaintext",
            Scheme::BayerMetzger => "bayer-metzger",
            Scheme::BayerMetzgerPage => "bm-full-page",
            Scheme::Oval => "oval",
            Scheme::Exponentiation => "exponentiation",
            Scheme::ExponentiationPaper => "exponentiation-paper",
            Scheme::SumOfTreatments => "sum-of-treatments",
            Scheme::ConversionTable => "conversion-table",
        }
    }
}

/// Which design parameterises the disguise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignChoice {
    /// The paper's `(13,4,1)` worked-example design.
    Paper13,
    /// Singer `(q²+q+1, q+1, 1)` design for prime `q`.
    Singer(u64),
}

/// Pointer-seal cipher selection (§5 leaves this open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealerKind {
    Des,
    Speck,
    /// Secret-parameter RSA with this modulus size in bits.
    Rsa(usize),
}

/// Where the enciphered node/record blocks live.
///
/// The paper's threat model is an opponent holding the *storage medium*;
/// `Memory` simulates that medium in RAM (every byte lost on restart,
/// durability only via an engine's WAL), while `File` puts the same
/// enciphered blocks on an actual on-disk device behind a no-steal buffer
/// pool with journaled checkpoints — datasets larger than RAM, restarts
/// that replay only the WAL tail. Only enciphered bytes ever reach the
/// file either way; the backend changes *where* the opponent's view
/// lives, never *what* it contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageBackend {
    /// Simulated in-RAM device (the paper's experimental setup).
    Memory,
    /// File-backed device under `dir` (`nodes.sks` + `data.sks` + a sealed
    /// manifest), cached by a buffer pool of `pool_pages` frames per
    /// store.
    File {
        dir: std::path::PathBuf,
        pool_pages: usize,
    },
}

impl StorageBackend {
    /// Default pool size: enough to keep a hot tree's upper levels
    /// resident without hiding the I/O cost of leaf traffic.
    pub const DEFAULT_POOL_PAGES: usize = 256;

    /// Convenience constructor for the file backend with the default pool.
    pub fn file<P: Into<std::path::PathBuf>>(dir: P) -> Self {
        StorageBackend::File {
            dir: dir.into(),
            pool_pages: Self::DEFAULT_POOL_PAGES,
        }
    }

    pub fn is_file(&self) -> bool {
        matches!(self, StorageBackend::File { .. })
    }
}

/// Full configuration for an [`crate::EncipheredBTree`].
#[derive(Debug, Clone)]
pub struct SchemeConfig {
    pub scheme: Scheme,
    /// Node/data block size in bytes.
    pub block_size: usize,
    pub sealer: SealerKind,
    /// Tree key `K_E` (file key for page-key schemes, sealer key otherwise).
    pub tree_key: u64,
    /// Independent data-block key (§5).
    pub data_key: u128,
    pub design: DesignChoice,
    /// Oval / exponent multiplier `t`.
    pub t: u64,
    /// Sum-of-treatments starting line `w`.
    pub w: u64,
    /// Maximum number of distinct keys the tree must support (`R`). Keys
    /// are `0..capacity` (or `1..=capacity` for exponentiation).
    pub capacity: u64,
    /// Deterministic seed for table construction / RSA keygen.
    pub rng_seed: u64,
    /// How many independent tree partitions an engine should shard this
    /// configuration across (each partition is a full `EncipheredBTree`
    /// covering the whole key domain; a router hashes disguised keys to
    /// pick one). `1` means unsharded. Ignored by the single-tree API.
    pub partitions: usize,
    /// Where the enciphered blocks live (see [`StorageBackend`]). The
    /// `create_in_memory*` constructors ignore this; the backend-aware
    /// [`crate::EncipheredBTree::create`]/`open` and the engine honour it.
    pub backend: StorageBackend,
    /// Capacity (in nodes) of the plaintext node cache serving the probe
    /// path: repeated point reads of a cached node pay zero *physical*
    /// decipherments, while the logical operation counters keep reporting
    /// the paper's per-scheme cost. Entries are RAM-only and zeroized on
    /// eviction; the medium still holds only enciphered bytes. `0`
    /// disables the cache.
    pub node_cache: usize,
    /// Dirty-page high-water mark per tree partition (file backend): when
    /// a mutation leaves more dirty pages than this buffered in the
    /// no-steal pool, the engine kicks a background checkpoint so memory
    /// stays bounded under sustained writes. `0` disables the trigger;
    /// standalone (non-engine) trees ignore it.
    pub dirty_high_water: usize,
    /// Capacity (in records) of the decoded-record LRU above the data
    /// blocks' CTR unseal: repeated `get`s of a hot record pay zero
    /// *physical* unseals while the logical `data_decrypts` counter keeps
    /// reporting the paper's per-get cost. Entries are RAM-only,
    /// invalidated on delete/compaction, zeroized on drop. `0` disables.
    pub record_cache: usize,
    /// Record-store compaction budget: how many tombstoned data blocks
    /// each checkpoint may rewrite per partition
    /// ([`crate::EncipheredBTree::compact_step`]); live records move into
    /// fresh blocks and dead blocks return to the storage free list, so
    /// delete-heavy workloads stop leaking space. Victims are chosen
    /// dead-ratio first, and the same budget bounds the checkpoint's
    /// node-device sliding pass
    /// ([`crate::EncipheredBTree::compact_nodes`]). `0` disables online
    /// compaction.
    pub compaction: usize,
    /// Dead-ratio floor for checkpoint-integrated compaction, as a
    /// percentage: a data block becomes a victim only once at least this
    /// fraction of its records are tombstoned. Rewriting a block
    /// re-seals all its live records and repoints the tree (one node
    /// unseal + re-seal per move), so without a floor a checkpoint will
    /// happily spend hundreds of cipher operations reclaiming a
    /// one-dead-record block — maintenance proportional to database
    /// size, not to churn. `0` restores that drain-everything behavior;
    /// the explicit [`crate::EncipheredBTree::compact_step`] API always
    /// drains regardless of this knob.
    pub compaction_floor: u8,
    /// Process-wide dirty-page budget across *all* engine partitions
    /// (file backend): when the sum of every partition's pinned dirty set
    /// exceeds this, the engine flushes the dirtiest partition in the
    /// background, bounding total checkpoint-buffered RAM for the whole
    /// process (the per-partition [`SchemeConfig::dirty_high_water`]
    /// trigger still applies independently). `0` disables the global
    /// budget; standalone trees ignore it.
    pub global_dirty_budget: usize,
    /// Process-wide decoded-record cache capacity shared across *all*
    /// engine partitions: one clock, one budget, so total plaintext-record
    /// RAM is bounded for the process instead of per partition. When
    /// non-zero the engine replaces each partition's per-tree
    /// [`SchemeConfig::record_cache`] with the shared one. `0` keeps
    /// per-partition caches; standalone trees ignore it.
    pub global_record_cache: usize,
    /// Physical observability level (see [`sks_storage::ObsLevel`]):
    /// `Off` strips every probe to a `None` check, `Counters` (default)
    /// keeps counting plus rare flight-recorder events, `Histograms` adds
    /// stage/latency timing, `FullTrace` adds per-op flight-recorder
    /// events. The *logical* paper counters are byte-identical at every
    /// level — only physical telemetry changes.
    pub observability: sks_storage::ObsLevel,
    /// Batch-sealed group commits on the engine's WAL: when on (the
    /// default) every commit seals its whole staged group as one
    /// Speck-CTR body + CRC instead of one frame per record, and the log
    /// writer runs double-buffered so sealing the next batch overlaps
    /// the previous batch's device write and fsync. Durability points
    /// under each `SyncPolicy` are unchanged, logical `wal_appends` /
    /// `wal_bytes` stay per-record byte-identical, and replay accepts
    /// both framings. Standalone trees ignore it.
    pub seal_batch: bool,
    /// Write-behind budget for node re-sealing: up to this many dirty
    /// B-tree nodes are held decoded *above* the crypto boundary,
    /// absorbing multiple mutations before being re-enciphered (on
    /// eviction, cache pressure, flush or checkpoint). The logical
    /// encode counters keep charging the paper's per-mutation cost —
    /// physical skips are visible in `node_writes_deferred` /
    /// `node_reseals`. Durability is unchanged: the WAL already covers
    /// every mutation, and every flush/checkpoint seals the set. `0`
    /// (the default) disables: every mutation re-seals immediately.
    /// Opt in with [`SchemeConfig::write_behind`]
    /// ([`SchemeConfig::DEFAULT_WRITE_BEHIND`] is a good budget).
    pub write_behind: usize,
    /// Delta-encoded reverse-index persistence: when on (the default)
    /// each flush appends only the block→keys entries that changed since
    /// the last epoch as a new chain segment, instead of rewriting the
    /// whole chain — O(changed blocks) per epoch instead of O(live).
    /// A periodic full rewrite ([`SchemeConfig::index_rewrite_period`])
    /// bounds chain length. Off forces the PR 7 full rewrite every time.
    pub index_delta: bool,
    /// After this many consecutive delta segments the next persist
    /// rewrites the whole chain, bounding load-time chain walks and
    /// reclaiming superseded segments. `0` means "rewrite every time"
    /// (equivalent to `index_delta: false`).
    pub index_rewrite_period: u32,
}

impl SchemeConfig {
    /// Paper-scale parameters: the `(13,4,1)` design, 13-key domain, 256-byte
    /// blocks. Matches every worked example in the paper.
    pub fn demo(scheme: Scheme) -> Self {
        SchemeConfig {
            scheme,
            block_size: 256,
            sealer: SealerKind::Des,
            tree_key: 0x133457799BBCDFF1,
            data_key: 0x0011_2233_4455_6677_8899_AABB_CCDD_EEFF,
            design: DesignChoice::Paper13,
            t: 7,
            w: 0,
            capacity: 11, // w + R < v - 1 for the sum scheme
            rng_seed: 42,
            partitions: 1,
            backend: StorageBackend::Memory,
            node_cache: Self::DEFAULT_NODE_CACHE,
            dirty_high_water: 0,
            record_cache: Self::DEFAULT_RECORD_CACHE,
            compaction: Self::DEFAULT_COMPACTION,
            compaction_floor: Self::DEFAULT_COMPACTION_FLOOR,
            global_dirty_budget: 0,
            global_record_cache: 0,
            observability: sks_storage::ObsLevel::Counters,
            seal_batch: true,
            write_behind: 0,
            index_delta: true,
            index_rewrite_period: Self::DEFAULT_INDEX_REWRITE_PERIOD,
        }
    }

    /// Parameters sized for `capacity` records: picks the smallest Singer
    /// design with `v` comfortably above the key domain (§4's `v ≫ R`).
    pub fn with_capacity(scheme: Scheme, capacity: u64) -> Self {
        let mut q = 3u64;
        // v = q² + q + 1 must exceed capacity + w + margin.
        while q * q + q + 1 < capacity + 64 {
            q = next_prime(q + 1);
        }
        SchemeConfig {
            scheme,
            block_size: 4096,
            sealer: SealerKind::Des,
            tree_key: 0x133457799BBCDFF1,
            data_key: 0x0011_2233_4455_6677_8899_AABB_CCDD_EEFF,
            design: DesignChoice::Singer(q),
            t: 0, // auto-pick at build time
            w: 17 % (q * q),
            capacity,
            rng_seed: 42,
            partitions: 1,
            backend: StorageBackend::Memory,
            node_cache: Self::DEFAULT_NODE_CACHE,
            dirty_high_water: 0,
            record_cache: Self::DEFAULT_RECORD_CACHE,
            compaction: Self::DEFAULT_COMPACTION,
            compaction_floor: Self::DEFAULT_COMPACTION_FLOOR,
            global_dirty_budget: 0,
            global_record_cache: 0,
            observability: sks_storage::ObsLevel::Counters,
            seal_batch: true,
            write_behind: 0,
            index_delta: true,
            index_rewrite_period: Self::DEFAULT_INDEX_REWRITE_PERIOD,
        }
    }

    /// Default plaintext node-cache capacity: enough to keep the hot upper
    /// levels of a large tree decoded without unbounded memory.
    pub const DEFAULT_NODE_CACHE: usize = 1024;

    /// Default decoded-record cache capacity (records).
    pub const DEFAULT_RECORD_CACHE: usize = 1024;

    /// Default per-checkpoint compaction budget (data blocks per
    /// partition). Small enough that a checkpoint's latency stays bounded,
    /// large enough that sustained delete churn converges.
    pub const DEFAULT_COMPACTION: usize = 32;

    /// Default dead-ratio floor for checkpoint compaction (percent dead
    /// before a block qualifies as a victim). A quarter-dead block
    /// reclaims enough per rewrite to justify re-sealing its live
    /// records; anything lighter is deferred until churn concentrates.
    pub const DEFAULT_COMPACTION_FLOOR: u8 = 25;

    /// Suggested write-behind budget for callers that opt in (dirty
    /// decoded nodes held above the crypto boundary per tree). Sized to
    /// cover a hot root-to-leaf mutation path many times over while
    /// keeping plaintext residency bounded. The field default is `0`
    /// (re-seal on every mutation).
    pub const DEFAULT_WRITE_BEHIND: usize = 64;

    /// Default full-rewrite period for the delta-encoded reverse index:
    /// a delta chain never grows past this many segments before being
    /// collapsed, so load-time chain walks stay bounded.
    pub const DEFAULT_INDEX_REWRITE_PERIOD: u32 = 16;

    /// Builder-style delta-index knob (see the `index_delta` field).
    pub fn index_delta(mut self, on: bool) -> Self {
        self.index_delta = on;
        self
    }

    /// Builder-style full-rewrite period for the delta index (see the
    /// `index_rewrite_period` field; 0 rewrites every persist).
    pub fn index_rewrite_period(mut self, segments: u32) -> Self {
        self.index_rewrite_period = segments;
        self
    }

    /// Builder-style batch-sealed group-commit knob (see the
    /// `seal_batch` field).
    pub fn seal_batch(mut self, on: bool) -> Self {
        self.seal_batch = on;
        self
    }

    /// Builder-style write-behind knob (dirty decoded nodes held above
    /// the crypto boundary; 0 re-seals on every mutation).
    pub fn write_behind(mut self, nodes: usize) -> Self {
        self.write_behind = nodes;
        self
    }

    /// Builder-style node-cache knob (capacity in nodes; 0 disables).
    pub fn node_cache(mut self, capacity: usize) -> Self {
        self.node_cache = capacity;
        self
    }

    /// Builder-style record-cache knob (capacity in records; 0 disables).
    pub fn record_cache(mut self, capacity: usize) -> Self {
        self.record_cache = capacity;
        self
    }

    /// Builder-style compaction knob (tombstoned data blocks rewritten per
    /// checkpoint per partition; 0 disables online compaction).
    pub fn compaction(mut self, blocks_per_checkpoint: usize) -> Self {
        self.compaction = blocks_per_checkpoint;
        self
    }

    /// Builder-style dead-ratio floor for checkpoint compaction (see the
    /// `compaction_floor` field; percent, 0 drains any-dead blocks).
    pub fn compaction_floor(mut self, min_dead_pct: u8) -> Self {
        self.compaction_floor = min_dead_pct;
        self
    }

    /// Builder-style dirty high-water knob (dirty pages per partition; 0
    /// disables the automatic background checkpoint).
    pub fn dirty_high_water(mut self, pages: usize) -> Self {
        self.dirty_high_water = pages;
        self
    }

    /// Builder-style process-wide dirty budget (dirty pages summed across
    /// all engine partitions; 0 disables the global trigger).
    pub fn global_dirty_budget(mut self, pages: usize) -> Self {
        self.global_dirty_budget = pages;
        self
    }

    /// Builder-style process-wide record-cache knob (decoded records
    /// shared across all engine partitions; 0 keeps per-partition caches).
    pub fn global_record_cache(mut self, records: usize) -> Self {
        self.global_record_cache = records;
        self
    }

    /// Builder-style observability knob (see the `observability` field).
    pub fn observability(mut self, level: sks_storage::ObsLevel) -> Self {
        self.observability = level;
        self
    }

    /// Builder-style partition knob for the engine: shard the key space
    /// across `n` independent trees behind one router (see `sks-engine`).
    pub fn partitions(mut self, n: usize) -> Self {
        assert!(n >= 1, "a tree needs at least one partition");
        self.partitions = n;
        self
    }

    /// Builder-style backend knob: where the enciphered blocks live.
    pub fn backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for [`SchemeConfig::backend`] with the file backend and
    /// default pool size.
    pub fn on_disk<P: Into<std::path::PathBuf>>(self, dir: P) -> Self {
        self.backend(StorageBackend::file(dir))
    }

    /// Materialises the difference set.
    pub fn build_design(&self) -> Result<DifferenceSet, CoreError> {
        Ok(match self.design {
            DesignChoice::Paper13 => DifferenceSet::paper_13_4_1(),
            DesignChoice::Singer(q) => DifferenceSet::singer(q)?,
        })
    }

    fn pick_multiplier(&self, v: u64) -> u64 {
        if self.t != 0 {
            return self.t;
        }
        // Deterministic unit of Z_v away from ±1 so the scrambling is real.
        let mut t = v / 2 + 3;
        while sks_designs::arith::gcd(t, v) != 1 || t == 1 || t == v - 1 {
            t += 1;
        }
        t
    }

    fn build_sealer(&self, counters: &OpCounters) -> Result<Arc<dyn TripletSealer>, CoreError> {
        let _ = counters;
        Ok(match self.sealer {
            SealerKind::Des => Arc::new(BlockCipherSealer::des(self.tree_key)),
            SealerKind::Speck => Arc::new(BlockCipherSealer::speck(
                ((self.tree_key as u128) << 64) | !self.tree_key as u128,
            )),
            SealerKind::Rsa(bits) => {
                let mut rng = StdRng::seed_from_u64(self.rng_seed);
                let key = RsaKey::generate(&mut rng, bits);
                Arc::new(RsaSealer::new(key)?)
            }
        })
    }

    /// Builds the disguise for substitution schemes (`None` for baselines).
    pub fn build_disguise(
        &self,
        counters: &OpCounters,
    ) -> Result<Option<Arc<dyn KeyDisguise>>, CoreError> {
        let disguise: Arc<dyn KeyDisguise> = match self.scheme {
            Scheme::Plaintext | Scheme::BayerMetzger | Scheme::BayerMetzgerPage => return Ok(None),
            Scheme::Oval => {
                let ds = self.build_design()?;
                let t = self.pick_multiplier(ds.v());
                Arc::new(OvalSubstitution::new(ds, t, counters.clone())?)
            }
            Scheme::Exponentiation => {
                let ds = self.build_design()?;
                let n = next_prime(ds.v().max(self.capacity + 2));
                let g = primitive_root(n);
                let mut t = self.pick_multiplier(n - 1);
                while sks_designs::arith::gcd(t, n - 1) != 1 {
                    t += 1;
                }
                Arc::new(ExpSubstitution::new(ds, g, n, t, counters.clone())?)
            }
            Scheme::ExponentiationPaper => {
                Arc::new(PaperExpSubstitution::paper_example(counters.clone()))
            }
            Scheme::SumOfTreatments => {
                let ds = self.build_design()?;
                if self.w + self.capacity >= ds.v() - 1 {
                    return Err(CoreError::Config(format!(
                        "sum scheme needs w + R < v - 1 (w={}, R={}, v={})",
                        self.w,
                        self.capacity,
                        ds.v()
                    )));
                }
                Arc::new(SumSubstitution::new(
                    ds,
                    self.w,
                    self.capacity,
                    counters.clone(),
                )?)
            }
            Scheme::ConversionTable => {
                let mut rng = StdRng::seed_from_u64(self.rng_seed);
                Arc::new(TableDisguise::random(
                    &mut rng,
                    self.capacity.max(2),
                    counters.clone(),
                ))
            }
        };
        Ok(Some(disguise))
    }

    /// Builds the node codec (and returns the disguise it uses, if any).
    pub fn build_codec(
        &self,
        counters: &OpCounters,
    ) -> Result<(AnyCodec, Option<Arc<dyn KeyDisguise>>), CoreError> {
        self.build_codec_with(counters, None)
    }

    /// [`SchemeConfig::build_codec`] reusing an already-built disguise.
    /// Constructing a disguise means constructing its difference-set
    /// design — milliseconds of arithmetic at paper scale — and every
    /// partition of an engine uses an identical one, so the engine
    /// builds it once and shares the `Arc` instead of paying the
    /// construction per partition at every open. `None` builds fresh.
    pub fn build_codec_with(
        &self,
        counters: &OpCounters,
        prebuilt: Option<Arc<dyn KeyDisguise>>,
    ) -> Result<(AnyCodec, Option<Arc<dyn KeyDisguise>>), CoreError> {
        match self.scheme {
            Scheme::Plaintext => Ok((AnyCodec::Plain(PlainCodec::new(counters.clone())), None)),
            Scheme::BayerMetzger => Ok((
                AnyCodec::BayerMetzger(BayerMetzgerCodec::new(
                    PageKeyScheme::new(self.tree_key, PageCipherKind::Des),
                    counters.clone(),
                )),
                None,
            )),
            Scheme::BayerMetzgerPage => Ok((
                AnyCodec::FullPage(FullPageCodec::new(
                    PageKeyScheme::new(self.tree_key, PageCipherKind::Des),
                    counters.clone(),
                )),
                None,
            )),
            _ => {
                let disguise = match prebuilt {
                    Some(d) => d,
                    None => self
                        .build_disguise(counters)?
                        .unwrap_or_else(|| Arc::new(IdentityDisguise)),
                };
                let sealer = self.build_sealer(counters)?;
                Ok((
                    AnyCodec::Substitution(SubstitutionCodec::new(
                        disguise.clone(),
                        sealer,
                        counters.clone(),
                    )),
                    Some(disguise),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_configs_build_for_all_schemes() {
        for scheme in Scheme::ALL {
            let cfg = SchemeConfig::demo(scheme);
            let counters = OpCounters::new();
            let (codec, disguise) = cfg.build_codec(&counters).unwrap();
            use sks_btree_core::NodeCodec;
            assert!(codec.max_keys(cfg.block_size) >= 3, "{}", scheme.name());
            match scheme {
                Scheme::Plaintext | Scheme::BayerMetzger | Scheme::BayerMetzgerPage => {
                    assert!(disguise.is_none())
                }
                _ => assert!(disguise.is_some()),
            }
        }
    }

    #[test]
    fn capacity_configs_choose_big_enough_designs() {
        for capacity in [100u64, 1_000, 50_000] {
            let cfg = SchemeConfig::with_capacity(Scheme::Oval, capacity);
            let ds = cfg.build_design().unwrap();
            assert!(ds.v() > capacity, "v={} cap={capacity}", ds.v());
            let counters = OpCounters::new();
            let disguise = cfg.build_disguise(&counters).unwrap().unwrap();
            // Spot-check the domain covers the capacity.
            assert!(disguise.domain_size().unwrap() > capacity);
        }
    }

    #[test]
    fn sum_capacity_bound_is_validated() {
        let mut cfg = SchemeConfig::demo(Scheme::SumOfTreatments);
        cfg.capacity = 13;
        let counters = OpCounters::new();
        assert!(cfg.build_disguise(&counters).is_err());
    }

    #[test]
    fn scheme_names_unique() {
        let names: std::collections::HashSet<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Scheme::ALL.len());
    }

    #[test]
    fn rsa_sealer_config_builds() {
        let mut cfg = SchemeConfig::demo(Scheme::Oval);
        cfg.sealer = SealerKind::Rsa(256);
        let counters = OpCounters::new();
        let (codec, _) = cfg.build_codec(&counters).unwrap();
        use sks_btree_core::NodeCodec;
        // RSA-sized seals shrink the fanout substantially.
        let des_cfg = SchemeConfig::demo(Scheme::Oval);
        let (des_codec, _) = des_cfg.build_codec(&counters).unwrap();
        assert!(codec.max_keys(4096) < des_codec.max_keys(4096));
    }
}
