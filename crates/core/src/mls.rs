//! Multilevel-secure records — §5's closing suggestion: "It may also allow
//! each triplet in a node block to be assigned a security level,
//! restricting access to data by users of lower security clearances."
//!
//! Every record carries a security level; its body is enciphered under a
//! key derived from the Akl–Taylor hierarchy
//! ([`sks_crypto::multilevel::KeyHierarchy`]). A user holding a clearance
//! at level `c` can open records at levels `c..=L` (derivation walks
//! *down* the hierarchy only); opening a more sensitive record fails with
//! a typed error, without any per-record key distribution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sks_btree_core::RecordPtr;
use sks_crypto::multilevel::{ClearanceKey, KeyHierarchy, Level};
use sks_crypto::speck::Speck64;
use sks_storage::BlockStore;

use crate::error::CoreError;
use crate::records::RecordStore;

/// A record store where every record is bound to a security level.
pub struct MultilevelRecordStore<S: BlockStore> {
    store: RecordStore<S>,
    hierarchy: KeyHierarchy,
}

impl<S: BlockStore> MultilevelRecordStore<S> {
    /// Builds the store with a fresh `levels`-deep hierarchy (deterministic
    /// from `seed`; real deployments would persist the authority's secret).
    pub fn new(store: S, levels: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let hierarchy = KeyHierarchy::generate(&mut rng, 192, levels);
        // The outer RecordStore layer uses a fixed key and provides no
        // secrecy here; all protection comes from the per-level cipher
        // applied to the frame body below.
        MultilevelRecordStore {
            store: RecordStore::create(store, 0, 0).expect("fresh store for the MLS layer"),
            hierarchy,
        }
    }

    /// The central authority view (minting clearances for users).
    pub fn hierarchy(&self) -> &KeyHierarchy {
        &self.hierarchy
    }

    fn level_cipher(&self, clearance: &ClearanceKey, level: Level) -> Result<Speck64, CoreError> {
        let key = clearance
            .derive(level)
            .map_err(|e| CoreError::Integrity(format!("clearance check failed: {e}")))?
            .cipher_key64();
        Ok(Speck64::from_u128(((key as u128) << 64) | (!key as u128)))
    }

    /// Stores `record` at `level`, enciphered under the level key. The
    /// caller must present a clearance able to *write* at that level (same
    /// dominance rule as reads).
    pub fn insert(
        &mut self,
        clearance: &ClearanceKey,
        level: Level,
        record: &[u8],
    ) -> Result<RecordPtr, CoreError> {
        let cipher = self.level_cipher(clearance, level)?;
        // Frame: [level u32][ciphertext…] — the level tag is public
        // metadata (clearance labels usually are).
        let mut framed = Vec::with_capacity(4 + record.len());
        framed.extend_from_slice(&level.to_be_bytes());
        framed.extend_from_slice(&sks_crypto::modes::ctr_xor(&cipher, level as u64, record));
        self.store.insert(&framed)
    }

    /// The level tag of a stored record (readable by anyone — labels are
    /// public; contents are not).
    pub fn level_of(&self, ptr: RecordPtr) -> Result<Option<Level>, CoreError> {
        let Some(framed) = self.store.get(ptr)? else {
            return Ok(None);
        };
        if framed.len() < 4 {
            return Err(CoreError::Record("truncated multilevel frame".into()));
        }
        Ok(Some(u32::from_be_bytes(
            framed[0..4].try_into().expect("length checked"),
        )))
    }

    /// Opens a record with the presented clearance. Fails with
    /// [`CoreError::Integrity`] when the record's level dominates the
    /// clearance.
    pub fn get(
        &self,
        clearance: &ClearanceKey,
        ptr: RecordPtr,
    ) -> Result<Option<Vec<u8>>, CoreError> {
        let Some(framed) = self.store.get(ptr)? else {
            return Ok(None);
        };
        if framed.len() < 4 {
            return Err(CoreError::Record("truncated multilevel frame".into()));
        }
        let level = u32::from_be_bytes(framed[0..4].try_into().expect("length checked"));
        let cipher = self.level_cipher(clearance, level)?;
        Ok(Some(sks_crypto::modes::ctr_xor(
            &cipher,
            level as u64,
            &framed[4..],
        )))
    }

    pub fn delete(&mut self, ptr: RecordPtr) -> Result<bool, CoreError> {
        self.store.delete(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_storage::MemDisk;

    fn store() -> MultilevelRecordStore<MemDisk> {
        MultilevelRecordStore::new(MemDisk::new(512), 4, 2026)
    }

    #[test]
    fn clearance_dominance_enforced() {
        let mut mls = store();
        let authority = mls.hierarchy().clearance(1).unwrap();
        // One record per level, written by the authority.
        let ptrs: Vec<(Level, RecordPtr)> = (1..=4u32)
            .map(|level| {
                let rec = format!("level-{level} contents");
                (
                    level,
                    mls.insert(&authority, level, rec.as_bytes()).unwrap(),
                )
            })
            .collect();

        // A level-3 user reads levels 3 and 4, is refused 1 and 2.
        let user = mls.hierarchy().clearance(3).unwrap();
        for &(level, ptr) in &ptrs {
            let result = mls.get(&user, ptr);
            if level >= 3 {
                assert_eq!(
                    result.unwrap().unwrap(),
                    format!("level-{level} contents").into_bytes()
                );
            } else {
                assert!(
                    matches!(result, Err(CoreError::Integrity(_))),
                    "level {level}"
                );
            }
        }
    }

    #[test]
    fn level_tags_are_public_contents_are_not() {
        let mut mls = store();
        let authority = mls.hierarchy().clearance(1).unwrap();
        let ptr = mls.insert(&authority, 2, b"classified payload").unwrap();
        // Anyone can read the label…
        assert_eq!(mls.level_of(ptr).unwrap(), Some(2));
        // …but the payload is not in the raw frame.
        let low_user = mls.hierarchy().clearance(4).unwrap();
        assert!(mls.get(&low_user, ptr).is_err());
    }

    #[test]
    fn delete_and_missing() {
        let mut mls = store();
        let authority = mls.hierarchy().clearance(1).unwrap();
        let ptr = mls.insert(&authority, 1, b"x").unwrap();
        assert!(mls.delete(ptr).unwrap());
        assert_eq!(mls.get(&authority, ptr).unwrap(), None);
        assert_eq!(mls.level_of(ptr).unwrap(), None);
    }

    #[test]
    fn same_plaintext_different_levels_differ_on_disk() {
        let mut mls = store();
        let authority = mls.hierarchy().clearance(1).unwrap();
        let p1 = mls.insert(&authority, 1, b"identical-body!!").unwrap();
        let p2 = mls.insert(&authority, 2, b"identical-body!!").unwrap();
        let a = mls.get(&authority, p1).unwrap().unwrap();
        let b = mls.get(&authority, p2).unwrap().unwrap();
        assert_eq!(a, b, "plaintexts agree");
        // Raw frames differ beyond the level tag (different level keys).
        let u1 = mls.store.get(p1).unwrap().unwrap();
        let u2 = mls.store.get(p2).unwrap().unwrap();
        assert_ne!(u1[4..], u2[4..]);
    }
}
