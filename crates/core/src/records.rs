//! Data blocks: slotted pages of enciphered records.
//!
//! §5: "The encryption algorithm used for the encryption of data blocks can
//! be different and independent to that used for the tree and data pointers
//! in the node blocks." Records here are CTR-enciphered under their own key
//! with a per-(page-generation, slot) nonce; compromising node blocks
//! yields only the *location* of data blocks, never their content.
//!
//! Two engine-grade facilities sit on top of the paper's static view:
//!
//! * **Tombstone accounting + compaction support** — deletes tombstone
//!   slots and track the dead set per block; the compactor
//!   ([`crate::EncipheredBTree::compact_step`]) rewrites a block's live
//!   records into fresh slots and returns the block to the store's free
//!   list. Because freed blocks are recycled, record nonces derive from a
//!   monotonically increasing *page generation* (persisted in the store's
//!   superblock and stamped into each page header), never from the block
//!   number: a recycled block enciphers under fresh keystream, so stale
//!   ciphertext left on the medium can never be XOR-correlated with a
//!   later record.
//! * **A bounded decoded-record LRU** above the CTR unseal — read-mostly
//!   `get`s of hot records pay zero physical unseals while the *logical*
//!   `data_decrypts` counter keeps reporting the paper's per-get cost.
//!   Entries are RAM-only, invalidated on delete/compaction, and zeroized
//!   when the last reference drops.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sks_btree_core::RecordPtr;
use sks_crypto::modes::ctr_xor;
use sks_crypto::speck::Speck64;
use sks_storage::{BlockId, BlockStore, PageReader, PageWriter};

use crate::error::CoreError;

/// Page layout: `[generation u64][n_slots u16][free_off u16]` then the slot
/// directory (`off u16, len u16` per slot) growing forward; record bytes
/// packed at the tail, growing backward.
const PAGE_HEADER: usize = 12;
const SLOT_ENTRY: usize = 4;
/// Tombstone marker in the slot directory.
const TOMBSTONE: u16 = u16::MAX;

/// Superblock (block 0) layout: magic, format version, next page
/// generation. Rewritten in place whenever a fresh page is initialised;
/// on buffered backends it rides the same checkpoint as the pages it
/// governs.
const SUPER_MAGIC: &[u8; 8] = b"SKSRECS1";
const SUPER_VERSION: u32 = 1;

/// A decoded record held by the [`RecordCache`]. The plaintext is wiped
/// when the last reference drops (eviction, invalidation, cache drop), so
/// heap re-use cannot scrape record bytes out of dead memory.
#[derive(Debug)]
struct CachedRecord {
    bytes: Vec<u8>,
}

impl Drop for CachedRecord {
    fn drop(&mut self) {
        for b in self.bytes.iter_mut() {
            // Volatile so the wipe of soon-to-be-freed memory is not elided.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

/// One occupied clock slot.
#[derive(Debug)]
struct CacheSlot {
    key: u64,
    entry: Arc<CachedRecord>,
    /// Second-chance bit: set on every hit, cleared by the sweeping hand.
    referenced: bool,
}

#[derive(Debug, Default)]
struct RecordCacheInner {
    /// Record pointer → ring slot index.
    map: HashMap<u64, usize>,
    ring: Vec<Option<CacheSlot>>,
    /// Slots emptied by invalidation, reused before eviction.
    vacant: Vec<usize>,
    hand: usize,
}

impl RecordCacheInner {
    fn forget(&mut self, ptr: u64) {
        if let Some(i) = self.map.remove(&ptr) {
            self.ring[i] = None;
            self.vacant.push(i);
        }
    }
}

/// Bounded cache of *decoded* records, interior-mutable so the read path
/// can fill it behind `&self`. Capacity is a record count; eviction is
/// clock / second-chance (an O(1) LRU approximation — a true recency list
/// would put a scan on every hot-path hit). Entries are RAM-only and
/// zeroized on drop.
#[derive(Debug)]
struct RecordCache {
    inner: Mutex<RecordCacheInner>,
    capacity: usize,
}

impl RecordCache {
    fn new(capacity: usize) -> Self {
        RecordCache {
            inner: Mutex::new(RecordCacheInner::default()),
            capacity,
        }
    }

    fn get(&self, ptr: RecordPtr) -> Option<Arc<CachedRecord>> {
        let mut inner = self.inner.lock().expect("record cache");
        let &i = inner.map.get(&ptr.0)?;
        let slot = inner.ring[i].as_mut().expect("mapped slot is occupied");
        slot.referenced = true;
        Some(Arc::clone(&slot.entry))
    }

    fn insert(&self, ptr: RecordPtr, bytes: Vec<u8>) {
        let entry = Arc::new(CachedRecord { bytes });
        let mut inner = self.inner.lock().expect("record cache");
        if let Some(&i) = inner.map.get(&ptr.0) {
            inner.ring[i] = Some(CacheSlot {
                key: ptr.0,
                entry,
                referenced: true,
            });
            return;
        }
        let i = if let Some(i) = inner.vacant.pop() {
            i
        } else if inner.ring.len() < self.capacity {
            inner.ring.push(None);
            inner.ring.len() - 1
        } else {
            // Clock sweep: clear second-chance bits until a cold slot
            // turns up (at most two revolutions).
            loop {
                let h = inner.hand;
                inner.hand = (inner.hand + 1) % inner.ring.len();
                match &mut inner.ring[h] {
                    Some(slot) if slot.referenced => slot.referenced = false,
                    Some(slot) => {
                        let old = slot.key;
                        inner.map.remove(&old);
                        break h;
                    }
                    None => break h,
                }
            }
        };
        inner.ring[i] = Some(CacheSlot {
            key: ptr.0,
            entry,
            referenced: true,
        });
        inner.map.insert(ptr.0, i);
    }

    fn invalidate(&self, ptr: RecordPtr) {
        self.inner.lock().expect("record cache").forget(ptr.0);
    }

    /// Drops every entry living in `block` (the block is being freed; its
    /// slots will be reincarnated under a fresh generation).
    fn invalidate_block(&self, block: BlockId) {
        let mut inner = self.inner.lock().expect("record cache");
        let doomed: Vec<u64> = inner
            .map
            .keys()
            .copied()
            .filter(|&p| RecordPtr(p).block() == block)
            .collect();
        for p in doomed {
            inner.forget(p);
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("record cache").map.len()
    }
}

/// A slotted-page record store with per-record encipherment.
pub struct RecordStore<S: BlockStore> {
    store: S,
    cipher: Speck64,
    /// Block currently being filled.
    open_block: Option<BlockId>,
    /// Next page generation (mirrors the superblock).
    next_gen: u64,
    /// Decoded-record LRU (None = disabled).
    cache: Option<RecordCache>,
    /// Tombstoned-slot count per block. Complete only when
    /// `dead_map_complete` (a reopened store rebuilds it lazily on the
    /// first compaction pass).
    dead: HashMap<u32, u32>,
    dead_map_complete: bool,
}

impl<S: BlockStore> RecordStore<S> {
    /// Creates a fresh record store on an *empty* block store, allocating
    /// its superblock. `data_key` is the independent data-block key of §5;
    /// `cache_capacity` bounds the decoded-record LRU (0 disables it).
    pub fn create(mut store: S, data_key: u128, cache_capacity: usize) -> Result<Self, CoreError> {
        let sb = store.allocate()?;
        debug_assert_eq!(sb, BlockId(0), "superblock must be the first block");
        let mut this = RecordStore {
            store,
            cipher: Speck64::from_u128(data_key),
            open_block: None,
            next_gen: 1,
            cache: (cache_capacity > 0).then(|| RecordCache::new(cache_capacity)),
            dead: HashMap::new(),
            dead_map_complete: true,
        };
        this.write_superblock()?;
        Ok(this)
    }

    /// Reopens a record store persisted on `store` (reads the superblock).
    /// Tombstone accounting is rebuilt lazily by the first compaction
    /// sweep, so reopening stays O(1).
    pub fn open(store: S, data_key: u128, cache_capacity: usize) -> Result<Self, CoreError> {
        let page = store.read_block_vec(BlockId(0))?;
        if &page[0..8] != SUPER_MAGIC {
            return Err(CoreError::Record(
                "data store has no record superblock".into(),
            ));
        }
        let version = u32::from_be_bytes(page[8..12].try_into().expect("fixed width"));
        if version != SUPER_VERSION {
            return Err(CoreError::Record(format!(
                "unknown record-store version {version}"
            )));
        }
        let next_gen = u64::from_be_bytes(page[12..20].try_into().expect("fixed width"));
        Ok(RecordStore {
            store,
            cipher: Speck64::from_u128(data_key),
            open_block: None,
            next_gen,
            cache: (cache_capacity > 0).then(|| RecordCache::new(cache_capacity)),
            dead: HashMap::new(),
            dead_map_complete: false,
        })
    }

    fn write_superblock(&mut self) -> Result<(), CoreError> {
        let mut page = vec![0u8; self.store.block_size()];
        page[0..8].copy_from_slice(SUPER_MAGIC);
        page[8..12].copy_from_slice(&SUPER_VERSION.to_be_bytes());
        page[12..20].copy_from_slice(&self.next_gen.to_be_bytes());
        Ok(self.store.write_block(BlockId(0), &page)?)
    }

    /// Largest storable record.
    pub fn max_record_len(&self) -> usize {
        self.store.block_size() - PAGE_HEADER - SLOT_ENTRY
    }

    pub fn store(&self) -> &S {
        &self.store
    }

    pub fn into_store(self) -> S {
        self.store
    }

    /// Flushes the underlying store (a checkpoint on buffered backends).
    pub fn flush(&mut self) -> Result<(), CoreError> {
        Ok(self.store.flush()?)
    }

    /// Records currently held decoded in the record cache.
    pub fn cached_records(&self) -> usize {
        self.cache.as_ref().map(RecordCache::len).unwrap_or(0)
    }

    /// The generation ceiling: a nonce is `gen << 16 | slot`, so
    /// generations must fit 48 bits for the keystream-uniqueness
    /// guarantee to hold. Unreachable in practice (2^48 page initialisations
    /// of >= 32 bytes each is multiple petabytes of churn); hitting it is
    /// a loud error, never silent nonce reuse.
    const MAX_GENERATION: u64 = 1 << 48;

    /// CTR nonce: the page's generation (unique per block *incarnation*,
    /// never reused even when compaction recycles the block) plus the
    /// slot.
    fn nonce(generation: u64, slot: u16) -> u64 {
        (generation << 16) | slot as u64
    }

    fn read_page_meta(page: &[u8]) -> Result<(u64, u16, u16), CoreError> {
        let mut r = PageReader::new(page);
        let generation = r.get_u64().map_err(|e| CoreError::Record(e.to_string()))?;
        let n_slots = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        let free_off = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        Ok((generation, n_slots, free_off))
    }

    fn slot_entry(page: &[u8], slot: u16) -> Result<(u16, u16), CoreError> {
        let mut r = PageReader::new(page);
        r.seek(PAGE_HEADER + slot as usize * SLOT_ENTRY)
            .map_err(|e| CoreError::Record(e.to_string()))?;
        let off = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        let len = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        Ok((off, len))
    }

    /// Free bytes left in a page with the given metadata.
    fn free_space(&self, n_slots: u16, free_off: u16) -> usize {
        let dir_end = PAGE_HEADER + n_slots as usize * SLOT_ENTRY;
        (free_off as usize).saturating_sub(dir_end + SLOT_ENTRY)
    }

    /// Inserts a record, returning its pointer.
    pub fn insert(&mut self, record: &[u8]) -> Result<RecordPtr, CoreError> {
        self.insert_inner(record, true)
    }

    /// The compactor's insert: identical placement logic, but the
    /// encipherment is charged to `compact_moved_records` instead of the
    /// paper's `data_encrypts` — moving an already-stored record is
    /// storage maintenance, not a logical write.
    fn insert_moved(&mut self, record: &[u8]) -> Result<RecordPtr, CoreError> {
        self.insert_inner(record, false)
    }

    fn insert_inner(&mut self, record: &[u8], logical: bool) -> Result<RecordPtr, CoreError> {
        if record.len() > self.max_record_len() {
            return Err(CoreError::Record(format!(
                "record of {} bytes exceeds max {}",
                record.len(),
                self.max_record_len()
            )));
        }
        // Find or open a block with room.
        let block_size = self.store.block_size();
        let (block, mut page) = match self.open_block {
            Some(b) => {
                let page = self.store.read_block_vec(b)?;
                let (_, n_slots, free_off) = Self::read_page_meta(&page)?;
                if self.free_space(n_slots, free_off) >= record.len() {
                    (b, page)
                } else {
                    let nb = self.store.allocate()?;
                    let fresh = self.init_page(block_size)?;
                    self.open_block = Some(nb);
                    (nb, fresh)
                }
            }
            None => {
                let nb = self.store.allocate()?;
                let fresh = self.init_page(block_size)?;
                self.open_block = Some(nb);
                (nb, fresh)
            }
        };
        let (generation, n_slots, free_off) = Self::read_page_meta(&page)?;
        let slot = n_slots;
        let new_off = free_off as usize - record.len();
        // Encrypt under the per-(generation, slot) nonce.
        if logical {
            self.store.counters().bump(|c| &c.data_encrypts);
        } else {
            self.store.counters().bump(|c| &c.compact_moved_records);
        }
        let ct = ctr_xor(&self.cipher, Self::nonce(generation, slot), record);
        page[new_off..new_off + ct.len()].copy_from_slice(&ct);
        // Slot directory entry.
        {
            let mut w = PageWriter::new(&mut page);
            w.put_u64(generation)
                .map_err(|e| CoreError::Record(e.to_string()))?;
            w.put_u16(n_slots + 1)
                .map_err(|e| CoreError::Record(e.to_string()))?;
            w.put_u16(new_off as u16)
                .map_err(|e| CoreError::Record(e.to_string()))?;
        }
        {
            let dir_off = PAGE_HEADER + slot as usize * SLOT_ENTRY;
            page[dir_off..dir_off + 2].copy_from_slice(&(new_off as u16).to_be_bytes());
            page[dir_off + 2..dir_off + 4].copy_from_slice(&(ct.len() as u16).to_be_bytes());
        }
        self.store.write_block(block, &page)?;
        let ptr = RecordPtr::pack(block, slot);
        if logical {
            if let Some(cache) = &self.cache {
                // The plaintext is in hand: pre-warm read-after-write
                // gets. Compaction moves skip this — flooding the bounded
                // cache with relocated records would evict the genuinely
                // hot set.
                cache.insert(ptr, record.to_vec());
            }
        }
        Ok(ptr)
    }

    /// Initialises a fresh page under the next generation (bumping and
    /// persisting the superblock's counter). Fails loudly if the
    /// generation space is ever exhausted — silent reuse would repeat
    /// CTR keystream.
    fn init_page(&mut self, block_size: usize) -> Result<Vec<u8>, CoreError> {
        let generation = self.next_gen;
        if generation >= Self::MAX_GENERATION {
            return Err(CoreError::Record(
                "page-generation space exhausted; refusing to reuse CTR keystream".into(),
            ));
        }
        self.next_gen += 1;
        self.write_superblock()?;
        let mut page = vec![0u8; block_size];
        page[0..8].copy_from_slice(&generation.to_be_bytes());
        page[8..10].copy_from_slice(&0u16.to_be_bytes());
        page[10..12].copy_from_slice(&(block_size as u16).to_be_bytes());
        Ok(page)
    }

    /// Fetches and deciphers a record. `None` for tombstoned slots.
    ///
    /// The logical `data_decrypts` counter is bumped per live get — the
    /// paper's per-scheme cost — whether the plaintext comes from the
    /// physical CTR unseal or from the decoded-record cache (which only
    /// skips the *physical* work, tracked by `record_cache_hits`).
    pub fn get(&self, ptr: RecordPtr) -> Result<Option<Vec<u8>>, CoreError> {
        if let Some(cache) = &self.cache {
            if let Some(entry) = cache.get(ptr) {
                self.store.counters().bump(|c| &c.record_cache_hits);
                self.store.counters().bump(|c| &c.data_decrypts);
                return Ok(Some(entry.bytes.clone()));
            }
        }
        let page = self.store.read_block_vec(ptr.block())?;
        let (generation, n_slots, _) = Self::read_page_meta(&page)?;
        if ptr.slot() >= n_slots {
            return Err(CoreError::Record(format!(
                "slot {} out of range (page has {n_slots})",
                ptr.slot()
            )));
        }
        let (off, len) = Self::slot_entry(&page, ptr.slot())?;
        if off == TOMBSTONE {
            return Ok(None);
        }
        let ct = &page[off as usize..off as usize + len as usize];
        self.store.counters().bump(|c| &c.data_decrypts);
        let plain = ctr_xor(&self.cipher, Self::nonce(generation, ptr.slot()), ct);
        if let Some(cache) = &self.cache {
            self.store.counters().bump(|c| &c.record_cache_misses);
            cache.insert(ptr, plain.clone());
        }
        Ok(Some(plain))
    }

    /// Tombstones a record. Space is reclaimed by the compaction sweep
    /// ([`crate::EncipheredBTree::compact_step`]), not here.
    pub fn delete(&mut self, ptr: RecordPtr) -> Result<bool, CoreError> {
        let mut page = self.store.read_block_vec(ptr.block())?;
        let (_, n_slots, _) = Self::read_page_meta(&page)?;
        if ptr.slot() >= n_slots {
            return Err(CoreError::Record(format!(
                "slot {} out of range (page has {n_slots})",
                ptr.slot()
            )));
        }
        let dir_off = PAGE_HEADER + ptr.slot() as usize * SLOT_ENTRY;
        let was_live = page[dir_off..dir_off + 2] != TOMBSTONE.to_be_bytes();
        page[dir_off..dir_off + 2].copy_from_slice(&TOMBSTONE.to_be_bytes());
        self.store.write_block(ptr.block(), &page)?;
        if let Some(cache) = &self.cache {
            cache.invalidate(ptr);
        }
        if was_live {
            *self.dead.entry(ptr.block().0).or_default() += 1;
        }
        Ok(was_live)
    }

    // ---- compaction support -------------------------------------------

    /// Ensures the tombstone accounting covers the whole store. Fresh
    /// stores are complete by construction; a reopened store pays one
    /// O(blocks) sweep here, on the first compaction pass after restart
    /// (which also picks up garbage left by a pre-crash epoch).
    fn ensure_dead_map(&mut self) -> Result<(), CoreError> {
        if self.dead_map_complete {
            return Ok(());
        }
        self.dead.clear();
        for b in 1..self.store.num_blocks() {
            let page = match self.store.read_block_vec(BlockId(b)) {
                Ok(page) => page,
                Err(sks_storage::StorageError::FreedBlock { .. }) => continue,
                Err(e) => return Err(e.into()),
            };
            let (_, n_slots, _) = Self::read_page_meta(&page)?;
            let mut dead = 0u32;
            for slot in 0..n_slots {
                if Self::slot_entry(&page, slot)?.0 == TOMBSTONE {
                    dead += 1;
                }
            }
            if dead > 0 {
                self.dead.insert(b, dead);
            }
        }
        self.dead_map_complete = true;
        Ok(())
    }

    /// Total tombstoned slots awaiting compaction (rebuilds the accounting
    /// if this store was reopened).
    pub fn pending_tombstones(&mut self) -> Result<u64, CoreError> {
        self.ensure_dead_map()?;
        Ok(self.dead.values().map(|&d| d as u64).sum())
    }

    /// Cheap pre-check: `true` when tombstones *may* exist (always true on
    /// a freshly reopened store until the first sweep rebuilds the map).
    pub fn may_have_tombstones(&self) -> bool {
        !self.dead_map_complete || !self.dead.is_empty()
    }

    /// The next `max_blocks` compaction victims in ascending block order
    /// (deterministic across backends), excluding the open fill block.
    fn compaction_victims(&self, max_blocks: usize) -> Vec<BlockId> {
        let mut victims: Vec<u32> = self
            .dead
            .keys()
            .copied()
            .filter(|&b| Some(BlockId(b)) != self.open_block)
            .collect();
        victims.sort_unstable();
        victims.truncate(max_blocks);
        victims.into_iter().map(BlockId).collect()
    }

    /// Deciphers the live records of `block` (silently — compaction is
    /// below the paper's cost model) as `(slot, plaintext)` pairs.
    fn live_records(&self, block: BlockId) -> Result<Vec<(u16, Vec<u8>)>, CoreError> {
        let page = self.store.read_block_vec(block)?;
        let (generation, n_slots, _) = Self::read_page_meta(&page)?;
        let mut out = Vec::new();
        for slot in 0..n_slots {
            let (off, len) = Self::slot_entry(&page, slot)?;
            if off == TOMBSTONE {
                continue;
            }
            let ct = &page[off as usize..off as usize + len as usize];
            out.push((
                slot,
                ctr_xor(&self.cipher, Self::nonce(generation, slot), ct),
            ));
        }
        Ok(out)
    }

    /// Frees `block` through the store's free list, dropping its cache
    /// entries and accounting.
    fn free_block(&mut self, block: BlockId) -> Result<(), CoreError> {
        if let Some(cache) = &self.cache {
            cache.invalidate_block(block);
        }
        self.dead.remove(&block.0);
        if self.open_block == Some(block) {
            self.open_block = None;
        }
        self.store.free(block)?;
        self.store.counters().bump(|c| &c.compact_freed_blocks);
        Ok(())
    }

    /// Compacts one victim block: rewrites its live records into fresh
    /// slots (via the open fill block) and frees it. Returns the moves as
    /// `(old_ptr, new_ptr)` pairs so the caller can repoint its index.
    /// The caller must ensure no concurrent reader holds `block`'s
    /// pointers (the engine runs this under the partition write lock).
    pub(crate) fn compact_block(
        &mut self,
        block: BlockId,
    ) -> Result<Vec<(RecordPtr, RecordPtr)>, CoreError> {
        debug_assert_ne!(self.open_block, Some(block), "never compact the fill block");
        let live = self.live_records(block)?;
        let mut moves = Vec::with_capacity(live.len());
        for (slot, plain) in live {
            let new_ptr = self.insert_moved(&plain)?;
            moves.push((RecordPtr::pack(block, slot), new_ptr));
        }
        self.free_block(block)?;
        Ok(moves)
    }

    /// Blocks the compactor would examine next (ascending, bounded).
    pub(crate) fn victims(&mut self, max_blocks: usize) -> Result<Vec<BlockId>, CoreError> {
        self.ensure_dead_map()?;
        Ok(self.compaction_victims(max_blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_storage::MemDisk;

    fn store() -> RecordStore<MemDisk> {
        RecordStore::create(
            MemDisk::new(256),
            0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899,
            0,
        )
        .unwrap()
    }

    fn cached_store() -> RecordStore<MemDisk> {
        RecordStore::create(
            MemDisk::new(256),
            0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899,
            64,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut rs = store();
        let p1 = rs.insert(b"alpha").unwrap();
        let p2 = rs.insert(b"beta record with more bytes").unwrap();
        assert_eq!(rs.get(p1).unwrap().unwrap(), b"alpha");
        assert_eq!(rs.get(p2).unwrap().unwrap(), b"beta record with more bytes");
    }

    #[test]
    fn records_are_enciphered_on_disk() {
        let mut rs = store();
        let ptr = rs.insert(b"TOPSECRET-SALARY-90000").unwrap();
        let image = rs.store().raw_image();
        let found = image
            .iter()
            .any(|b| b.windows(8).any(|w| w == &b"TOPSECRE"[..]));
        assert!(!found, "plaintext leaked into the data block");
        assert_eq!(rs.get(ptr).unwrap().unwrap(), b"TOPSECRET-SALARY-90000");
    }

    #[test]
    fn fills_multiple_blocks() {
        let mut rs = store();
        let rec = vec![7u8; 100];
        let ptrs: Vec<RecordPtr> = (0..10).map(|_| rs.insert(&rec).unwrap()).collect();
        let blocks: std::collections::HashSet<u32> =
            ptrs.iter().map(|p| p.block().as_u32()).collect();
        assert!(
            blocks.len() >= 5,
            "100-byte records, 256-byte pages: ~2/page"
        );
        for p in ptrs {
            assert_eq!(rs.get(p).unwrap().unwrap(), rec);
        }
    }

    #[test]
    fn delete_tombstones() {
        let mut rs = store();
        let p = rs.insert(b"gone").unwrap();
        assert!(rs.delete(p).unwrap());
        assert_eq!(rs.get(p).unwrap(), None);
        assert!(!rs.delete(p).unwrap(), "double delete reports false");
        assert_eq!(rs.pending_tombstones().unwrap(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut rs = store();
        let too_big = vec![0u8; 10_000];
        assert!(matches!(rs.insert(&too_big), Err(CoreError::Record(_))));
        // Exactly max fits.
        let max = rs.max_record_len();
        let p = rs.insert(&vec![1u8; max]).unwrap();
        assert_eq!(rs.get(p).unwrap().unwrap().len(), max);
    }

    #[test]
    fn bad_slot_is_error() {
        let mut rs = store();
        let p = rs.insert(b"x").unwrap();
        let bogus = RecordPtr::pack(p.block(), 99);
        assert!(matches!(rs.get(bogus), Err(CoreError::Record(_))));
    }

    #[test]
    fn same_plaintext_different_slots_different_ciphertext() {
        let mut rs = store();
        let p1 = rs.insert(b"same-bytes").unwrap();
        let p2 = rs.insert(b"same-bytes").unwrap();
        assert_ne!(p1, p2);
        assert_eq!(rs.get(p1).unwrap(), rs.get(p2).unwrap());
    }

    #[test]
    fn counters_track_data_crypto() {
        let mut rs = store();
        let p = rs.insert(b"counted").unwrap();
        let _ = rs.get(p).unwrap();
        let s = rs.store().counters().snapshot();
        assert_eq!((s.data_encrypts, s.data_decrypts), (1, 1));
    }

    #[test]
    fn superblock_survives_reopen_and_generations_advance() {
        let mut rs = store();
        let rec = vec![3u8; 100];
        for _ in 0..6 {
            rs.insert(&rec).unwrap();
        }
        let gen_before = rs.next_gen;
        assert!(gen_before > 3, "several pages initialised");
        let disk = rs.into_store();
        let mut rs = RecordStore::open(disk, 0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899, 0).unwrap();
        assert_eq!(rs.next_gen, gen_before, "generation counter persisted");
        // Fresh pages after reopen keep advancing, never reusing keystream.
        for _ in 0..4 {
            rs.insert(&rec).unwrap();
        }
        assert!(rs.next_gen > gen_before);
    }

    #[test]
    fn open_rejects_a_non_record_store() {
        let mut disk = MemDisk::new(256);
        disk.allocate().unwrap(); // block 0 exists but holds no superblock
        assert!(matches!(
            RecordStore::open(disk, 1, 0),
            Err(CoreError::Record(_))
        ));
    }

    #[test]
    fn record_cache_hits_skip_physical_work_but_count_logically() {
        let mut rs = cached_store();
        let p = rs.insert(b"hot record").unwrap();
        rs.store().counters().reset();
        for _ in 0..10 {
            assert_eq!(rs.get(p).unwrap().unwrap(), b"hot record");
        }
        let s = rs.store().counters().snapshot();
        assert_eq!(s.data_decrypts, 10, "logical cost reported per get");
        assert_eq!(s.record_cache_hits, 10, "insert pre-warmed the cache");
        assert_eq!(s.block_reads, 0, "no physical page reads on hits");
    }

    #[test]
    fn record_cache_invalidated_on_delete() {
        let mut rs = cached_store();
        let p = rs.insert(b"soon gone").unwrap();
        assert_eq!(rs.get(p).unwrap().unwrap(), b"soon gone");
        rs.delete(p).unwrap();
        assert_eq!(rs.get(p).unwrap(), None, "stale cache entry must not serve");
    }

    #[test]
    fn record_cache_is_bounded() {
        let mut rs = cached_store(); // capacity 64
        let rec = vec![9u8; 40];
        for _ in 0..200 {
            rs.insert(&rec).unwrap();
        }
        assert!(rs.cached_records() <= 64);
    }

    #[test]
    fn compaction_reclaims_fully_dead_blocks() {
        let mut rs = store();
        let rec = vec![5u8; 100]; // 2 per 256-byte page
        let ptrs: Vec<RecordPtr> = (0..10).map(|_| rs.insert(&rec).unwrap()).collect();
        let blocks_before = rs.store().num_blocks();
        for &p in &ptrs {
            rs.delete(p).unwrap();
        }
        let victims = rs.victims(64).unwrap();
        assert!(!victims.is_empty());
        let mut moves = 0;
        for v in victims {
            moves += rs.compact_block(v).unwrap().len();
        }
        assert_eq!(moves, 0, "every record was dead");
        use sks_storage::BlockStore as _;
        assert!(
            rs.store().free_blocks() >= blocks_before - 2,
            "dead blocks returned to the free list ({} of {blocks_before})",
            rs.store().free_blocks()
        );
        // Reuse: new inserts pop freed blocks instead of growing the device.
        for _ in 0..8 {
            rs.insert(&rec).unwrap();
        }
        assert_eq!(rs.store().num_blocks(), blocks_before, "no growth");
    }

    #[test]
    fn compaction_moves_live_records_and_preserves_content() {
        let mut rs = store();
        // ~100-byte records: two per 256-byte page, so the set spans
        // several blocks and the open block keeps moving.
        let mk = |i: u64| format!("live-record-{i:03}-{}", "x".repeat(81)).into_bytes();
        let ptrs: Vec<RecordPtr> = (0..12).map(|i| rs.insert(&mk(i)).unwrap()).collect();
        // Kill every other record so most blocks are half dead.
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 2 == 0 {
                rs.delete(p).unwrap();
            }
        }
        let victims = rs.victims(64).unwrap();
        assert!(!victims.is_empty(), "half-dead blocks are victims");
        let mut moved = 0u64;
        for v in victims {
            for (old, new) in rs.compact_block(v).unwrap() {
                // Record i sits at block 1 + i/2 (block 0 is the
                // superblock), slot i%2; its content must survive the move
                // byte for byte.
                let i = (old.block().as_u32() as u64 - 1) * 2 + old.slot() as u64;
                assert_eq!(rs.get(new).unwrap().unwrap(), mk(i), "record {i}");
                moved += 1;
            }
        }
        assert!(moved >= 4, "live slots of the victims were rewritten");
        assert!(
            rs.pending_tombstones().unwrap() <= 1,
            "only the open fill block may still hold a tombstone"
        );
    }

    #[test]
    fn recycled_blocks_never_reuse_keystream() {
        // CTR nonce reuse across a block's incarnations would let an
        // opponent XOR old (stale, still on the medium) and new ciphertext
        // into plaintext. Generations make every incarnation's keystream
        // fresh: same block, same slot, different bytes for the *same*
        // plaintext.
        let mut rs = store();
        let rec = vec![0xAA; 100];
        let p0 = rs.insert(&rec).unwrap(); // block 1, slot 0
        let p1 = rs.insert(&rec).unwrap(); // block 1, slot 1 (page now full)
        let _p2 = rs.insert(&rec).unwrap(); // block 2 becomes the open block
        let block = p0.block();
        assert_eq!(p1.block(), block);
        let before = rs.store().raw_image()[block.as_u32() as usize].clone();
        rs.delete(p0).unwrap();
        rs.delete(p1).unwrap();
        for v in rs.victims(64).unwrap() {
            rs.compact_block(v).unwrap();
        }
        // Fill the open block, then the next insert recycles the freed one.
        let _p3 = rs.insert(&rec).unwrap();
        let p4 = rs.insert(&rec).unwrap();
        assert_eq!(p4.block(), block, "block recycled");
        assert_eq!(p4.slot(), 0, "slot recycled");
        let after = rs.store().raw_image()[block.as_u32() as usize].clone();
        let payload_differs = before
            .iter()
            .zip(&after)
            .skip(PAGE_HEADER + SLOT_ENTRY)
            .any(|(a, b)| a != b);
        assert!(
            payload_differs,
            "identical plaintext re-enciphered in a recycled slot must not repeat keystream"
        );
        assert_eq!(rs.get(p4).unwrap().unwrap(), rec);
    }

    #[test]
    fn reopened_store_rebuilds_tombstone_accounting() {
        let mut rs = store();
        let rec = vec![1u8; 100];
        let ptrs: Vec<RecordPtr> = (0..6).map(|_| rs.insert(&rec).unwrap()).collect();
        rs.delete(ptrs[0]).unwrap();
        rs.delete(ptrs[3]).unwrap();
        let disk = rs.into_store();
        let mut rs = RecordStore::open(disk, 0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899, 0).unwrap();
        assert!(rs.may_have_tombstones());
        assert_eq!(
            rs.pending_tombstones().unwrap(),
            2,
            "lazy sweep found the pre-restart tombstones"
        );
    }
}
