//! Data blocks: slotted pages of enciphered records.
//!
//! §5: "The encryption algorithm used for the encryption of data blocks can
//! be different and independent to that used for the tree and data pointers
//! in the node blocks." Records here are CTR-enciphered under their own key
//! with a per-(page-generation, slot) nonce; compromising node blocks
//! yields only the *location* of data blocks, never their content.
//!
//! Two engine-grade facilities sit on top of the paper's static view:
//!
//! * **Tombstone accounting + compaction support** — deletes tombstone
//!   slots and track the dead set per block; the compactor
//!   ([`crate::EncipheredBTree::compact_step`]) rewrites a block's live
//!   records into fresh slots and returns the block to the store's free
//!   list. Because freed blocks are recycled, record nonces derive from a
//!   monotonically increasing *page generation* (persisted in the store's
//!   superblock and stamped into each page header), never from the block
//!   number: a recycled block enciphers under fresh keystream, so stale
//!   ciphertext left on the medium can never be XOR-correlated with a
//!   later record.
//! * **A bounded decoded-record LRU** above the CTR unseal — read-mostly
//!   `get`s of hot records pay zero physical unseals while the *logical*
//!   `data_decrypts` counter keeps reporting the paper's per-get cost.
//!   Entries are RAM-only, invalidated on delete/compaction, and zeroized
//!   when the last reference drops. The cache can be process-wide: a
//!   [`SharedRecordCache`] hands several stores (engine partitions) one
//!   clock, each keyed under its own namespace, so total plaintext-record
//!   RAM is bounded for the whole process.
//! * **A persistent `block → (slot, key)` reverse index** — maintained
//!   incrementally on every keyed insert/delete/compaction move, persisted
//!   at flush as a chain of *sealed* index pages hanging off the
//!   superblock, and reloaded on open. A compaction pass repoints the tree
//!   for exactly the victims' live slots — O(victims), never a full tree
//!   scan — and victim choice is *dead-ratio first* (deadest blocks
//!   reclaim the most space per budget unit). Staleness is impossible by
//!   construction: the first mutation after a flush bumps a persisted
//!   `mut_epoch` past the index's `index_epoch`, so an index that does not
//!   exactly describe the pages (a crash between flushes on an unbuffered
//!   medium) is detected on open and rebuilt instead of trusted; on the
//!   journaled no-steal backend the index and the pages commit atomically
//!   and the epochs always match.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use sks_btree_core::RecordPtr;
use sks_crypto::modes::ctr_xor;
use sks_crypto::speck::Speck64;
use sks_storage::{BlockId, BlockStore, PageReader, PageWriter};

use crate::error::CoreError;

/// Page layout: `[generation u64][n_slots u16][free_off u16]` then the slot
/// directory (`off u16, len u16` per slot) growing forward; record bytes
/// packed at the tail, growing backward.
const PAGE_HEADER: usize = 12;
const SLOT_ENTRY: usize = 4;
/// Tombstone marker in the slot directory.
const TOMBSTONE: u16 = u16::MAX;

/// Superblock (block 0) layout: magic, format version, next page
/// generation, reverse-index chain head, and the index/mutation epoch
/// pair that detects a stale index. Rewritten in place whenever a fresh
/// page is initialised; on buffered backends it rides the same checkpoint
/// as the pages it governs.
const SUPER_MAGIC: &[u8; 8] = b"SKSRECS1";
const SUPER_VERSION: u32 = 2;
/// magic, version, next_gen, index_root, index_epoch, mut_epoch,
/// persisted_complete, delta-segment count. The trailing count rides the
/// same version: pre-delta superblocks hold zeros there, which reads as
/// "zero delta segments since the last full rewrite" — exactly right for
/// a single-segment chain.
const SUPER_LEN: usize = 8 + 4 + 8 + 4 + 8 + 8 + 1 + 4;

/// "No block" sentinel for the index chain head / next links.
const NO_BLOCK: u32 = u32::MAX;

/// Index pages carry this marker where record pages store their slot
/// count. Record pages can never collide: a slot directory of 0xFFFF
/// entries would need a 256 KiB page, far past the u16 offsets the layout
/// runs on.
const INDEX_MARKER: u16 = u16::MAX;

/// Index page layout: `[generation u64][marker u16][chunk_len u16]
/// [next u32]` then `chunk_len` sealed bytes of the index stream.
const INDEX_HEADER: usize = 16;

/// CTR nonce slot for index-page payloads. Record slots are bounded far
/// below this by the u16 page offsets, so `(generation, INDEX_SLOT)`
/// never collides with a record nonce.
const INDEX_SLOT: u16 = u16::MAX;

/// A decoded record held by the [`RecordCache`]. The plaintext is wiped
/// when the last reference drops (eviction, invalidation, cache drop), so
/// heap re-use cannot scrape record bytes out of dead memory.
#[derive(Debug)]
struct CachedRecord {
    bytes: Vec<u8>,
}

impl Drop for CachedRecord {
    fn drop(&mut self) {
        for b in self.bytes.iter_mut() {
            // Volatile so the wipe of soon-to-be-freed memory is not elided.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

/// One occupied clock slot.
#[derive(Debug)]
struct CacheSlot {
    key: u64,
    entry: Arc<CachedRecord>,
    /// Second-chance bit: set on every hit, cleared by the sweeping hand.
    referenced: bool,
}

#[derive(Debug, Default)]
struct RecordCacheInner {
    /// Record pointer → ring slot index.
    map: HashMap<u64, usize>,
    ring: Vec<Option<CacheSlot>>,
    /// Slots emptied by invalidation, reused before eviction.
    vacant: Vec<usize>,
    hand: usize,
}

impl RecordCacheInner {
    fn forget(&mut self, ptr: u64) {
        if let Some(i) = self.map.remove(&ptr) {
            self.ring[i] = None;
            self.vacant.push(i);
        }
    }
}

/// Bounded cache of *decoded* records, interior-mutable so the read path
/// can fill it behind `&self`. Capacity is a record count; eviction is
/// clock / second-chance (an O(1) LRU approximation — a true recency list
/// would put a scan on every hot-path hit). Entries are RAM-only and
/// zeroized on drop.
///
/// Entries are keyed by `(namespace << 48) | record pointer` — a
/// [`RecordPtr`] packs a `u32` block and `u16` slot into 48 bits — so one
/// cache (and one eviction clock) can serve several stores at once; see
/// [`SharedRecordCache`].
#[derive(Debug)]
struct RecordCache {
    inner: Mutex<RecordCacheInner>,
    capacity: usize,
}

impl RecordCache {
    fn new(capacity: usize) -> Self {
        RecordCache {
            inner: Mutex::new(RecordCacheInner::default()),
            capacity,
        }
    }

    fn key_of(ns: u64, ptr: RecordPtr) -> u64 {
        debug_assert!(ns < (1 << 16), "namespace must fit 16 bits");
        debug_assert!(ptr.0 < (1 << 48), "record pointers pack into 48 bits");
        (ns << 48) | ptr.0
    }

    fn get(&self, ns: u64, ptr: RecordPtr) -> Option<Arc<CachedRecord>> {
        let key = Self::key_of(ns, ptr);
        let mut inner = self.inner.lock().expect("record cache");
        let &i = inner.map.get(&key)?;
        let slot = inner.ring[i].as_mut().expect("mapped slot is occupied");
        slot.referenced = true;
        Some(Arc::clone(&slot.entry))
    }

    fn insert(&self, ns: u64, ptr: RecordPtr, bytes: Vec<u8>) {
        let key = Self::key_of(ns, ptr);
        let entry = Arc::new(CachedRecord { bytes });
        let mut inner = self.inner.lock().expect("record cache");
        if let Some(&i) = inner.map.get(&key) {
            inner.ring[i] = Some(CacheSlot {
                key,
                entry,
                referenced: true,
            });
            return;
        }
        let i = if let Some(i) = inner.vacant.pop() {
            i
        } else if inner.ring.len() < self.capacity {
            inner.ring.push(None);
            inner.ring.len() - 1
        } else {
            // Clock sweep: clear second-chance bits until a cold slot
            // turns up (at most two revolutions).
            loop {
                let h = inner.hand;
                inner.hand = (inner.hand + 1) % inner.ring.len();
                match &mut inner.ring[h] {
                    Some(slot) if slot.referenced => slot.referenced = false,
                    Some(slot) => {
                        let old = slot.key;
                        inner.map.remove(&old);
                        break h;
                    }
                    None => break h,
                }
            }
        };
        inner.ring[i] = Some(CacheSlot {
            key,
            entry,
            referenced: true,
        });
        inner.map.insert(key, i);
    }

    fn invalidate(&self, ns: u64, ptr: RecordPtr) {
        self.inner
            .lock()
            .expect("record cache")
            .forget(Self::key_of(ns, ptr));
    }

    /// Drops every entry of namespace `ns` living in `block` (the block is
    /// being freed; its slots will be reincarnated under a fresh
    /// generation).
    fn invalidate_block(&self, ns: u64, block: BlockId) {
        let mut inner = self.inner.lock().expect("record cache");
        let doomed: Vec<u64> = inner
            .map
            .keys()
            .copied()
            .filter(|&k| k >> 48 == ns && RecordPtr(k & ((1 << 48) - 1)).block() == block)
            .collect();
        for k in doomed {
            inner.forget(k);
        }
    }

    /// Entries currently held for namespace `ns` (observability; O(cache)).
    fn len_of(&self, ns: u64) -> usize {
        self.inner
            .lock()
            .expect("record cache")
            .map
            .keys()
            .filter(|&&k| k >> 48 == ns)
            .count()
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("record cache").map.len()
    }
}

/// A process-wide decoded-record cache: one bounded clock shared by every
/// store (engine partition) that adopts it, so the *total* plaintext
/// record RAM of the process is capped by a single budget instead of one
/// budget per partition. Cheap to clone; entries are RAM-only and
/// zeroized on drop exactly like the per-store cache.
#[derive(Debug, Clone)]
pub struct SharedRecordCache {
    cache: Arc<RecordCache>,
}

impl SharedRecordCache {
    /// A shared cache bounded at `capacity` decoded records *in total*
    /// across every adopting store.
    pub fn new(capacity: usize) -> Self {
        SharedRecordCache {
            cache: Arc::new(RecordCache::new(capacity.max(1))),
        }
    }

    /// Total decoded records currently held, across all namespaces.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A slotted-page record store with per-record encipherment.
pub struct RecordStore<S: BlockStore> {
    store: S,
    cipher: Speck64,
    /// Block currently being filled.
    open_block: Option<BlockId>,
    /// Next page generation (mirrors the superblock).
    next_gen: u64,
    /// Decoded-record LRU (None = disabled) and the namespace this store's
    /// entries live under (non-zero only for engine-shared caches).
    cache: Option<Arc<RecordCache>>,
    cache_ns: u64,
    /// Tombstoned-slot count per block. Complete only when
    /// `accounting_complete`.
    dead: HashMap<u32, u32>,
    /// Live-record count per block (drives dead-ratio victim choice).
    /// Complete only when `accounting_complete`.
    live: HashMap<u32, u32>,
    /// Whether `dead`/`live` cover the whole store (a reopened store
    /// without a trusted index rebuilds them lazily on the first
    /// compaction pass).
    accounting_complete: bool,
    /// The reverse index: block → slot → owning tree key, live slots only.
    /// Complete only when `rindex_complete`; kept incrementally by the
    /// keyed mutation paths and persisted at flush.
    rindex: HashMap<u32, HashMap<u16, u64>>,
    rindex_complete: bool,
    /// Head of the persisted index chain (`NO_BLOCK` = none — which a
    /// *complete* empty index legitimately has: zero live records need
    /// zero chain pages).
    index_root: u32,
    /// Whether the persisted index was complete when written (an
    /// incomplete one is recorded as such so a reopen rebuilds instead of
    /// trusting a partial map).
    index_persisted_complete: bool,
    /// Epoch of the persisted index chain.
    index_epoch: u64,
    /// Persisted mutation epoch: equals `index_epoch` exactly when the
    /// on-medium pages match the on-medium index.
    mut_epoch: u64,
    /// Whether anything mutated since the last index persist (drives the
    /// one-time `mut_epoch` bump per epoch and skips no-op persists).
    index_dirty: bool,
    /// Chain blocks of the currently loaded/persisted index (used by
    /// [`RecordStore::reconcile_unreferenced_blocks`]).
    chain_blocks: Vec<u32>,
    /// Blocks whose `dead`/`live`/`rindex` entry changed since the last
    /// persist — the dirty-entry set behind delta persistence. `Some`
    /// means the set is exact (a delta segment covering exactly these
    /// blocks brings the chain current); `None` means changes are
    /// unbounded or unknown (wholesale index adoption, distrust) and the
    /// next persist must rewrite the whole chain.
    index_dirty_blocks: Option<HashSet<u32>>,
    /// Delta segments written since the last full chain rewrite
    /// (persisted in the superblock so reopens keep bounding the chain).
    index_delta_epochs: u32,
    /// Delta-persistence knobs (see `SchemeConfig::index_delta` /
    /// `index_rewrite_period`), plumbed in via
    /// [`RecordStore::set_delta_config`].
    delta_enabled: bool,
    rewrite_period: u32,
    /// Blocks compaction reclaimed but whose free-list push is deferred
    /// until the caller's *node* device has committed its repointed
    /// image ([`RecordStore::apply_pending_frees`]). While quarantined a
    /// block is neither allocatable nor a compaction candidate, and the
    /// committed data image keeps it allocated — so a crash between the
    /// two device checkpoints leaves the old tree pointers aimed at
    /// intact victim content, never at a freed or recycled block.
    pending_free: Vec<u32>,
}

impl<S: BlockStore> RecordStore<S> {
    /// Creates a fresh record store on an *empty* block store, allocating
    /// its superblock. `data_key` is the independent data-block key of §5;
    /// `cache_capacity` bounds the decoded-record LRU (0 disables it).
    pub fn create(mut store: S, data_key: u128, cache_capacity: usize) -> Result<Self, CoreError> {
        if store.block_size() < SUPER_LEN.max(INDEX_HEADER + 18) {
            return Err(CoreError::Record(format!(
                "record store needs blocks of at least {} bytes",
                SUPER_LEN.max(INDEX_HEADER + 18)
            )));
        }
        let sb = store.allocate()?;
        debug_assert_eq!(sb, BlockId(0), "superblock must be the first block");
        let mut this = RecordStore {
            store,
            cipher: Speck64::from_u128(data_key),
            open_block: None,
            next_gen: 1,
            cache: (cache_capacity > 0).then(|| Arc::new(RecordCache::new(cache_capacity))),
            cache_ns: 0,
            dead: HashMap::new(),
            live: HashMap::new(),
            accounting_complete: true,
            rindex: HashMap::new(),
            rindex_complete: true,
            index_root: NO_BLOCK,
            index_persisted_complete: true,
            index_epoch: 0,
            mut_epoch: 0,
            index_dirty: false,
            chain_blocks: Vec::new(),
            index_dirty_blocks: Some(HashSet::new()),
            index_delta_epochs: 0,
            delta_enabled: true,
            rewrite_period: crate::config::SchemeConfig::DEFAULT_INDEX_REWRITE_PERIOD,
            pending_free: Vec::new(),
        };
        this.write_superblock()?;
        Ok(this)
    }

    /// Reopens a record store persisted on `store` (reads the superblock).
    /// When the persisted reverse index matches the pages (its epoch pair
    /// agrees — always true after a clean flush or a journaled-checkpoint
    /// recovery), accounting and the reverse index load in O(index);
    /// otherwise both are rebuilt lazily, so reopening stays O(1).
    pub fn open(store: S, data_key: u128, cache_capacity: usize) -> Result<Self, CoreError> {
        let page = store.read_block_vec(BlockId(0))?;
        // The fixed-offset reads below need the whole 45-byte superblock;
        // a device with a smaller block cannot hold one.
        if page.len() < 45 || &page[0..8] != SUPER_MAGIC {
            return Err(CoreError::Record(
                "data store has no record superblock".into(),
            ));
        }
        let version = u32::from_be_bytes(page[8..12].try_into().expect("fixed width"));
        if version != SUPER_VERSION {
            return Err(CoreError::Record(format!(
                "unknown record-store version {version}"
            )));
        }
        let next_gen = u64::from_be_bytes(page[12..20].try_into().expect("fixed width"));
        let index_root = u32::from_be_bytes(page[20..24].try_into().expect("fixed width"));
        let index_epoch = u64::from_be_bytes(page[24..32].try_into().expect("fixed width"));
        let mut_epoch = u64::from_be_bytes(page[32..40].try_into().expect("fixed width"));
        let index_persisted_complete = page[40] != 0;
        let index_delta_epochs = u32::from_be_bytes(page[41..45].try_into().expect("fixed width"));
        let mut this = RecordStore {
            store,
            cipher: Speck64::from_u128(data_key),
            open_block: None,
            next_gen,
            cache: (cache_capacity > 0).then(|| Arc::new(RecordCache::new(cache_capacity))),
            cache_ns: 0,
            dead: HashMap::new(),
            live: HashMap::new(),
            accounting_complete: false,
            rindex: HashMap::new(),
            rindex_complete: false,
            index_root,
            index_persisted_complete,
            index_epoch,
            mut_epoch,
            index_dirty: false,
            chain_blocks: Vec::new(),
            index_dirty_blocks: None,
            index_delta_epochs,
            delta_enabled: true,
            rewrite_period: crate::config::SchemeConfig::DEFAULT_INDEX_REWRITE_PERIOD,
            pending_free: Vec::new(),
        };
        // Trust the persisted index only when it was written complete and
        // the epochs prove the pages have not mutated past it; a parse
        // failure (impossible short of medium corruption) degrades to the
        // lazy rebuild, never to trusting garbage.
        let trusted_chain = (mut_epoch == index_epoch && index_persisted_complete)
            .then(|| this.load_index().ok())
            .flatten();
        match trusted_chain {
            Some(chain) => {
                this.accounting_complete = true;
                this.rindex_complete = true;
                this.chain_blocks = chain;
                // The loaded maps match the persisted chain exactly, so
                // delta tracking starts from a clean slate.
                this.index_dirty_blocks = Some(HashSet::new());
            }
            None => {
                this.rindex.clear();
                this.live.clear();
                this.dead.clear();
            }
        }
        Ok(this)
    }

    fn write_superblock(&mut self) -> Result<(), CoreError> {
        let mut page = vec![0u8; self.store.block_size()];
        page[0..8].copy_from_slice(SUPER_MAGIC);
        page[8..12].copy_from_slice(&SUPER_VERSION.to_be_bytes());
        page[12..20].copy_from_slice(&self.next_gen.to_be_bytes());
        page[20..24].copy_from_slice(&self.index_root.to_be_bytes());
        page[24..32].copy_from_slice(&self.index_epoch.to_be_bytes());
        page[32..40].copy_from_slice(&self.mut_epoch.to_be_bytes());
        page[40] = self.index_persisted_complete as u8;
        page[41..45].copy_from_slice(&self.index_delta_epochs.to_be_bytes());
        Ok(self.store.write_block(BlockId(0), &page)?)
    }

    /// Plumbs the delta-persistence knobs down from the scheme config
    /// (see `SchemeConfig::index_delta` / `index_rewrite_period`). A
    /// period of 0 forces a full rewrite on every persist.
    pub fn set_delta_config(&mut self, enabled: bool, rewrite_period: u32) {
        self.delta_enabled = enabled;
        self.rewrite_period = rewrite_period;
    }

    /// Records that `block`'s index entry changed since the last persist.
    /// A `None` set stays `None`: the next persist already rewrites the
    /// whole chain, so nothing finer-grained needs remembering.
    fn mark_index_block(&mut self, block: u32) {
        if let Some(set) = self.index_dirty_blocks.as_mut() {
            set.insert(block);
        }
    }

    /// First mutation of an epoch: advance the persisted `mut_epoch` past
    /// the index epoch *before* the mutation lands, so an index that no
    /// longer describes the pages can never be mistaken for current. One
    /// superblock write per epoch; a crash between the bump and the
    /// mutation is safe (the index is merely distrusted and rebuilt).
    fn note_mutation(&mut self) -> Result<(), CoreError> {
        if !self.index_dirty {
            self.index_dirty = true;
            self.mut_epoch = self.index_epoch + 1;
            self.write_superblock()?;
        }
        Ok(())
    }

    /// Adopts a process-wide decoded-record cache (replacing any per-store
    /// cache), keying this store's entries under namespace `ns`. The
    /// namespace must fit 16 bits — cache keys pack `(ns << 48) | ptr`,
    /// and a wider value would alias another store's entries (wrong
    /// plaintext served across stores), so it is rejected loudly.
    pub fn use_shared_cache(&mut self, shared: &SharedRecordCache, ns: u64) {
        assert!(
            ns < (1 << 16),
            "shared record-cache namespace {ns} does not fit 16 bits"
        );
        self.cache = Some(Arc::clone(&shared.cache));
        self.cache_ns = ns;
    }

    /// Largest storable record.
    pub fn max_record_len(&self) -> usize {
        self.store.block_size() - PAGE_HEADER - SLOT_ENTRY
    }

    pub fn store(&self) -> &S {
        &self.store
    }

    pub fn into_store(self) -> S {
        self.store
    }

    /// Persists the reverse index (sealed chain + matched epoch pair) and
    /// flushes the underlying store (a checkpoint on buffered backends).
    pub fn flush(&mut self) -> Result<(), CoreError> {
        self.persist_index()?;
        Ok(self.store.flush()?)
    }

    /// Records currently held decoded in the record cache (this store's
    /// namespace only, when the cache is shared).
    pub fn cached_records(&self) -> usize {
        self.cache
            .as_ref()
            .map(|c| c.len_of(self.cache_ns))
            .unwrap_or(0)
    }

    /// The generation ceiling: a nonce is `gen << 16 | slot`, so
    /// generations must fit 48 bits for the keystream-uniqueness
    /// guarantee to hold. Unreachable in practice (2^48 page initialisations
    /// of >= 32 bytes each is multiple petabytes of churn); hitting it is
    /// a loud error, never silent nonce reuse.
    const MAX_GENERATION: u64 = 1 << 48;

    /// CTR nonce: the page's generation (unique per block *incarnation*,
    /// never reused even when compaction recycles the block) plus the
    /// slot.
    fn nonce(generation: u64, slot: u16) -> u64 {
        (generation << 16) | slot as u64
    }

    fn read_page_meta(page: &[u8]) -> Result<(u64, u16, u16), CoreError> {
        let mut r = PageReader::new(page);
        let generation = r.get_u64().map_err(|e| CoreError::Record(e.to_string()))?;
        let n_slots = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        let free_off = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        // Both counts are medium-controlled; every consumer derives slice
        // offsets from them, so reject geometry the page cannot hold (the
        // slot directory below the header, payloads above `free_off`).
        if PAGE_HEADER + n_slots as usize * SLOT_ENTRY > page.len()
            || free_off as usize > page.len()
        {
            return Err(CoreError::Record(format!(
                "corrupt page geometry: {n_slots} slots / free_off {free_off} on a {}-byte page",
                page.len()
            )));
        }
        Ok((generation, n_slots, free_off))
    }

    fn slot_entry(page: &[u8], slot: u16) -> Result<(u16, u16), CoreError> {
        let mut r = PageReader::new(page);
        r.seek(PAGE_HEADER + slot as usize * SLOT_ENTRY)
            .map_err(|e| CoreError::Record(e.to_string()))?;
        let off = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        let len = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        Ok((off, len))
    }

    /// Free bytes left in a page with the given metadata.
    fn free_space(&self, n_slots: u16, free_off: u16) -> usize {
        let dir_end = PAGE_HEADER + n_slots as usize * SLOT_ENTRY;
        (free_off as usize).saturating_sub(dir_end + SLOT_ENTRY)
    }

    /// Inserts a record with no owning key, returning its pointer. The
    /// reverse index cannot cover such a record, so the store falls back
    /// to scan-rebuilt maintenance; prefer [`RecordStore::insert_keyed`]
    /// wherever the tree key is in hand.
    pub fn insert(&mut self, record: &[u8]) -> Result<RecordPtr, CoreError> {
        let ptr = self.insert_inner(record, true, None)?;
        // Downgrade only once the record actually landed — a rejected
        // insert (oversized, generation space exhausted) must not cost
        // the keyed hot path its O(victims) guarantee.
        self.rindex_complete = false;
        Ok(ptr)
    }

    /// Inserts a record owned by tree key `key`, maintaining the reverse
    /// index incrementally.
    pub fn insert_keyed(&mut self, key: u64, record: &[u8]) -> Result<RecordPtr, CoreError> {
        self.insert_inner(record, true, Some(key))
    }

    /// The compactor's insert: identical placement logic, but the
    /// encipherment is charged to `compact_moved_records` instead of the
    /// paper's `data_encrypts` — moving an already-stored record is
    /// storage maintenance, not a logical write.
    fn insert_moved(&mut self, record: &[u8], key: Option<u64>) -> Result<RecordPtr, CoreError> {
        let ptr = self.insert_inner(record, false, key)?;
        if key.is_none() {
            self.rindex_complete = false;
        }
        Ok(ptr)
    }

    fn insert_inner(
        &mut self,
        record: &[u8],
        logical: bool,
        key: Option<u64>,
    ) -> Result<RecordPtr, CoreError> {
        self.note_mutation()?;
        if record.len() > self.max_record_len() {
            return Err(CoreError::Record(format!(
                "record of {} bytes exceeds max {}",
                record.len(),
                self.max_record_len()
            )));
        }
        let t = self.store.counters().obs().start();
        // Find or open a block with room.
        let block_size = self.store.block_size();
        let (block, mut page) = match self.open_block {
            Some(b) => {
                let page = self.store.read_block_vec(b)?;
                let (_, n_slots, free_off) = Self::read_page_meta(&page)?;
                if self.free_space(n_slots, free_off) >= record.len() {
                    (b, page)
                } else {
                    let nb = self.store.allocate_min()?;
                    let fresh = self.init_page(block_size)?;
                    self.open_block = Some(nb);
                    (nb, fresh)
                }
            }
            None => {
                let nb = self.store.allocate_min()?;
                let fresh = self.init_page(block_size)?;
                self.open_block = Some(nb);
                (nb, fresh)
            }
        };
        let (generation, n_slots, free_off) = Self::read_page_meta(&page)?;
        let slot = n_slots;
        let new_off = free_off as usize - record.len();
        // Encrypt under the per-(generation, slot) nonce.
        if logical {
            self.store.counters().bump(|c| &c.data_encrypts);
        } else {
            self.store.counters().bump(|c| &c.compact_moved_records);
        }
        let ct = ctr_xor(&self.cipher, Self::nonce(generation, slot), record);
        page[new_off..new_off + ct.len()].copy_from_slice(&ct);
        // Slot directory entry.
        {
            let mut w = PageWriter::new(&mut page);
            w.put_u64(generation)
                .map_err(|e| CoreError::Record(e.to_string()))?;
            w.put_u16(n_slots + 1)
                .map_err(|e| CoreError::Record(e.to_string()))?;
            w.put_u16(new_off as u16)
                .map_err(|e| CoreError::Record(e.to_string()))?;
        }
        {
            let dir_off = PAGE_HEADER + slot as usize * SLOT_ENTRY;
            page[dir_off..dir_off + 2].copy_from_slice(&(new_off as u16).to_be_bytes());
            page[dir_off + 2..dir_off + 4].copy_from_slice(&(ct.len() as u16).to_be_bytes());
        }
        self.store.write_block(block, &page)?;
        let ptr = RecordPtr::pack(block, slot);
        *self.live.entry(block.0).or_default() += 1;
        self.mark_index_block(block.0);
        if let Some(key) = key {
            self.rindex.entry(block.0).or_default().insert(slot, key);
        }
        if logical {
            if let Some(cache) = &self.cache {
                // The plaintext is in hand: pre-warm read-after-write
                // gets. Compaction moves skip this — flooding the bounded
                // cache with relocated records would evict the genuinely
                // hot set.
                cache.insert(self.cache_ns, ptr, record.to_vec());
            }
        }
        self.store
            .counters()
            .obs()
            .stage(sks_storage::Stage::RecordSeal, t);
        Ok(ptr)
    }

    /// Hands out the next page generation, bumping and persisting the
    /// superblock's counter *before* the generation is used. Fails loudly
    /// if the generation space is ever exhausted — silent reuse would
    /// repeat CTR keystream.
    fn next_generation(&mut self) -> Result<u64, CoreError> {
        let generation = self.next_gen;
        if generation >= Self::MAX_GENERATION {
            return Err(CoreError::Record(
                "page-generation space exhausted; refusing to reuse CTR keystream".into(),
            ));
        }
        self.next_gen += 1;
        self.write_superblock()?;
        Ok(generation)
    }

    /// Initialises a fresh record page under the next generation.
    fn init_page(&mut self, block_size: usize) -> Result<Vec<u8>, CoreError> {
        let generation = self.next_generation()?;
        let mut page = vec![0u8; block_size];
        page[0..8].copy_from_slice(&generation.to_be_bytes());
        page[8..10].copy_from_slice(&0u16.to_be_bytes());
        page[10..12].copy_from_slice(&(block_size as u16).to_be_bytes());
        Ok(page)
    }

    /// Fetches and deciphers a record. `None` for tombstoned slots.
    ///
    /// The logical `data_decrypts` counter is bumped per live get — the
    /// paper's per-scheme cost — whether the plaintext comes from the
    /// physical CTR unseal or from the decoded-record cache (which only
    /// skips the *physical* work, tracked by `record_cache_hits`).
    pub fn get(&self, ptr: RecordPtr) -> Result<Option<Vec<u8>>, CoreError> {
        if let Some(cache) = &self.cache {
            if let Some(entry) = cache.get(self.cache_ns, ptr) {
                self.store.counters().bump(|c| &c.record_cache_hits);
                self.store.counters().bump(|c| &c.data_decrypts);
                return Ok(Some(entry.bytes.clone()));
            }
        }
        let t = self.store.counters().obs().start();
        let page = self.store.read_block_vec(ptr.block())?;
        let (generation, n_slots, _) = Self::read_page_meta(&page)?;
        if ptr.slot() >= n_slots {
            return Err(CoreError::Record(format!(
                "slot {} out of range (page has {n_slots})",
                ptr.slot()
            )));
        }
        let (off, len) = Self::slot_entry(&page, ptr.slot())?;
        if off == TOMBSTONE {
            return Ok(None);
        }
        // The slot directory is medium-controlled: a corrupt page can
        // point anywhere. Fail closed instead of slicing out of bounds.
        let ct = page
            .get(off as usize..(off as usize).saturating_add(len as usize))
            .ok_or_else(|| {
                CoreError::Record(format!(
                    "slot {} payload ({off}+{len}) overruns its page",
                    ptr.slot()
                ))
            })?;
        self.store.counters().bump(|c| &c.data_decrypts);
        let plain = ctr_xor(&self.cipher, Self::nonce(generation, ptr.slot()), ct);
        if let Some(cache) = &self.cache {
            self.store.counters().bump(|c| &c.record_cache_misses);
            cache.insert(self.cache_ns, ptr, plain.clone());
        }
        self.store
            .counters()
            .obs()
            .stage(sks_storage::Stage::RecordUnseal, t);
        Ok(Some(plain))
    }

    /// Tombstones a record. Space is reclaimed by the compaction sweep
    /// ([`crate::EncipheredBTree::compact_step`]), not here.
    pub fn delete(&mut self, ptr: RecordPtr) -> Result<bool, CoreError> {
        self.note_mutation()?;
        let mut page = self.store.read_block_vec(ptr.block())?;
        let (_, n_slots, _) = Self::read_page_meta(&page)?;
        if ptr.slot() >= n_slots {
            return Err(CoreError::Record(format!(
                "slot {} out of range (page has {n_slots})",
                ptr.slot()
            )));
        }
        let dir_off = PAGE_HEADER + ptr.slot() as usize * SLOT_ENTRY;
        if dir_off + 2 > page.len() {
            // n_slots is medium-controlled; a corrupt count must not let
            // the directory write run off the page.
            return Err(CoreError::Record(format!(
                "slot {} directory entry overruns its page",
                ptr.slot()
            )));
        }
        let was_live = page[dir_off..dir_off + 2] != TOMBSTONE.to_be_bytes();
        page[dir_off..dir_off + 2].copy_from_slice(&TOMBSTONE.to_be_bytes());
        self.store.write_block(ptr.block(), &page)?;
        if let Some(cache) = &self.cache {
            cache.invalidate(self.cache_ns, ptr);
        }
        if was_live {
            let b = ptr.block().0;
            *self.dead.entry(b).or_default() += 1;
            if let Some(n) = self.live.get_mut(&b) {
                *n = n.saturating_sub(1);
            }
            if let Some(slots) = self.rindex.get_mut(&b) {
                slots.remove(&ptr.slot());
            }
            self.mark_index_block(b);
        }
        Ok(was_live)
    }

    // ---- compaction support -------------------------------------------

    /// Whether a page image is a reverse-index chain page (vs a record
    /// page).
    fn is_index_page(page: &[u8]) -> bool {
        // Length-guarded: callers hand this raw medium pages, which a
        // corrupt device may deliver shorter than the 16-byte header.
        page.len() >= INDEX_HEADER && page[8..10] == INDEX_MARKER.to_be_bytes()
    }

    /// Ensures the dead/live accounting covers the whole store. Fresh
    /// stores (and reopens that loaded a trusted index) are complete by
    /// construction; otherwise one O(blocks) sweep here, on the first
    /// compaction pass after restart (which also picks up garbage left by
    /// a pre-crash epoch). The sweep cannot learn *keys*, so it completes
    /// the accounting but not the reverse index.
    fn ensure_accounting(&mut self) -> Result<(), CoreError> {
        if self.accounting_complete {
            return Ok(());
        }
        self.dead.clear();
        self.live.clear();
        for b in 1..self.store.num_blocks() {
            let page = match self.store.read_block_vec(BlockId(b)) {
                Ok(page) => page,
                Err(sks_storage::StorageError::FreedBlock { .. }) => continue,
                Err(e) => return Err(e.into()),
            };
            if Self::is_index_page(&page) {
                continue;
            }
            let (_, n_slots, _) = Self::read_page_meta(&page)?;
            let mut dead = 0u32;
            for slot in 0..n_slots {
                if Self::slot_entry(&page, slot)?.0 == TOMBSTONE {
                    dead += 1;
                }
            }
            if dead > 0 {
                self.dead.insert(b, dead);
            }
            let live = n_slots as u32 - dead;
            if live > 0 {
                self.live.insert(b, live);
            }
        }
        self.accounting_complete = true;
        Ok(())
    }

    /// Total tombstoned slots awaiting compaction (rebuilds the accounting
    /// if this store was reopened).
    pub fn pending_tombstones(&mut self) -> Result<u64, CoreError> {
        self.ensure_accounting()?;
        Ok(self.dead.values().map(|&d| d as u64).sum())
    }

    /// Cheap pre-check: `true` when tombstones *may* exist (always true on
    /// a freshly reopened store until the first sweep rebuilds the map).
    pub fn may_have_tombstones(&self) -> bool {
        !self.accounting_complete || !self.dead.is_empty()
    }

    /// Whether the in-memory reverse index covers every live record (so a
    /// compaction pass can repoint the tree in O(victims)).
    pub fn reverse_index_complete(&self) -> bool {
        self.rindex_complete
    }

    /// The key owning `ptr`, per the reverse index.
    pub(crate) fn key_of(&self, ptr: RecordPtr) -> Option<u64> {
        self.rindex
            .get(&ptr.block().0)
            .and_then(|slots| slots.get(&ptr.slot()))
            .copied()
    }

    /// Up to `limit` reverse-index rows strictly after the `(block, slot)`
    /// cursor, ascending — the orphan sweep's bounded window. O(index)
    /// scan, but the caller's budget keeps the returned set small.
    pub fn reverse_index_rows_after(
        &self,
        cursor: (u32, u16),
        limit: usize,
    ) -> Vec<(u32, u16, u64)> {
        if limit == 0 {
            return Vec::new();
        }
        let mut rows: Vec<(u32, u16, u64)> = self
            .rindex
            .iter()
            .flat_map(|(&b, slots)| slots.iter().map(move |(&s, &k)| (b, s, k)))
            .filter(|&(b, s, _)| (b, s) > cursor)
            .collect();
        rows.sort_unstable();
        rows.truncate(limit);
        rows
    }

    /// The reverse index as sorted `(block, slot, key)` rows
    /// (observability and equivalence tests).
    pub fn reverse_index_snapshot(&self) -> Vec<(u32, u16, u64)> {
        let mut rows: Vec<(u32, u16, u64)> = self
            .rindex
            .iter()
            .flat_map(|(&b, slots)| slots.iter().map(move |(&s, &k)| (b, s, k)))
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Replaces the reverse index wholesale (the tree layer's fallback
    /// rebuild feeds a full scan's `ptr → key` pairs through here) and
    /// marks it complete.
    pub(crate) fn adopt_reverse_index(
        &mut self,
        entries: impl IntoIterator<Item = (RecordPtr, u64)>,
    ) {
        self.rindex.clear();
        for (ptr, key) in entries {
            self.rindex
                .entry(ptr.block().0)
                .or_default()
                .insert(ptr.slot(), key);
        }
        self.rindex_complete = true;
        self.index_dirty = true;
        // Wholesale replacement: no bounded dirty set describes it, so
        // the next persist rewrites the whole chain.
        self.index_dirty_blocks = None;
    }

    /// The next `max_blocks` compaction victims, *deadest ratio first*
    /// (ties broken by ascending block id, so the order is deterministic
    /// across backends), excluding the open fill block. Each budget unit
    /// rewrites the block with the least live data, reclaiming maximal
    /// space per unit.
    ///
    /// `min_dead_pct` keeps the pass proportional to actual churn: a
    /// block qualifies only once at least that percentage of its records
    /// are dead. At 0 every block with a single dead record qualifies —
    /// full drain semantics, where reclaiming a one-dead block can mean
    /// re-sealing a hundred live records (and their node pointers) for a
    /// few bytes of space.
    fn compaction_victims(&self, max_blocks: usize, min_dead_pct: u8) -> Vec<BlockId> {
        let mut victims: Vec<(u32, u32, u32)> = self
            .dead
            .iter()
            .filter(|&(&b, _)| Some(BlockId(b)) != self.open_block)
            .map(|(&b, &dead)| (b, dead, self.live.get(&b).copied().unwrap_or(0)))
            .filter(|&(_, dead, live)| {
                dead as u64 * 100 >= min_dead_pct as u64 * (dead + live) as u64
            })
            .collect();
        // dead_a/(dead_a+live_a) > dead_b/(dead_b+live_b), cross-multiplied
        // to stay in integers.
        victims.sort_unstable_by(|&(ba, da, la), &(bb, db, lb)| {
            let lhs = da as u64 * (db + lb) as u64;
            let rhs = db as u64 * (da + la) as u64;
            rhs.cmp(&lhs).then(ba.cmp(&bb))
        });
        victims.truncate(max_blocks);
        victims.into_iter().map(|(b, _, _)| BlockId(b)).collect()
    }

    /// Deciphers the live records of `block` (silently — compaction is
    /// below the paper's cost model) as `(slot, plaintext)` pairs.
    fn live_records(&self, block: BlockId) -> Result<Vec<(u16, Vec<u8>)>, CoreError> {
        let page = self.store.read_block_vec(block)?;
        let (generation, n_slots, _) = Self::read_page_meta(&page)?;
        let mut out = Vec::new();
        for slot in 0..n_slots {
            let (off, len) = Self::slot_entry(&page, slot)?;
            if off == TOMBSTONE {
                continue;
            }
            let ct = &page[off as usize..off as usize + len as usize];
            out.push((
                slot,
                ctr_xor(&self.cipher, Self::nonce(generation, slot), ct),
            ));
        }
        Ok(out)
    }

    /// Frees `block` through the store's free list, dropping its cache
    /// entries and accounting. `reclaimed` charges the free to the
    /// compaction counters (every compaction-path free is a reclaim,
    /// whether the block had live records to move or was already fully
    /// dead).
    fn free_block(&mut self, block: BlockId, reclaimed: bool) -> Result<(), CoreError> {
        if let Some(cache) = &self.cache {
            cache.invalidate_block(self.cache_ns, block);
        }
        self.dead.remove(&block.0);
        self.live.remove(&block.0);
        self.rindex.remove(&block.0);
        // The delta segment must carry an explicit "no longer tracked"
        // tombstone for this block, or a reopen would resurrect its old
        // entry from an earlier chain segment.
        self.mark_index_block(block.0);
        if self.open_block == Some(block) {
            self.open_block = None;
        }
        if reclaimed {
            // Compaction reclaim: quarantine — the physical free waits
            // for the node device's checkpoint (see `pending_free`).
            self.pending_free.push(block.0);
            self.store.counters().bump(|c| &c.compact_freed_blocks);
        } else {
            // Index-chain frees stay within this single device's journal
            // (the chain is only referenced by this store's superblock),
            // so they are safe immediately.
            self.store.free(block)?;
        }
        Ok(())
    }

    /// Whether compaction-reclaimed blocks are still quarantined awaiting
    /// [`RecordStore::apply_pending_frees`].
    pub fn has_pending_frees(&self) -> bool {
        !self.pending_free.is_empty()
    }

    /// Pushes every quarantined block onto the store's free list. Call
    /// only once the *node* device has committed the repointed tree (the
    /// enciphered-tree flush sequences this); the frees then become
    /// durable with this device's next checkpoint. Returns how many
    /// blocks were released.
    pub fn apply_pending_frees(&mut self) -> Result<u32, CoreError> {
        let n = self.pending_free.len() as u32;
        for b in std::mem::take(&mut self.pending_free) {
            self.store.free(BlockId(b))?;
        }
        Ok(n)
    }

    /// Compacts one victim block: rewrites its live records into fresh
    /// slots (via the open fill block) and frees it. Returns the moves as
    /// `(old_ptr, new_ptr, owning key when the reverse index knows it)`
    /// so the caller can repoint its tree. A block the accounting says is
    /// fully dead skips the decipher-and-move work entirely — the
    /// tombstone fast path — but is still counted as a reclaimed block.
    /// The caller must ensure no concurrent reader holds `block`'s
    /// pointers (the engine runs this under the partition write lock).
    pub(crate) fn compact_block(
        &mut self,
        block: BlockId,
    ) -> Result<Vec<(RecordPtr, RecordPtr, Option<u64>)>, CoreError> {
        debug_assert_ne!(self.open_block, Some(block), "never compact the fill block");
        self.note_mutation()?;
        if self.accounting_complete && self.live.get(&block.0).copied().unwrap_or(0) == 0 {
            // Fully dead: free without a single unseal.
            self.free_block(block, true)?;
            return Ok(Vec::new());
        }
        let live = self.live_records(block)?;
        let mut moves = Vec::with_capacity(live.len());
        for (slot, plain) in live {
            let old = RecordPtr::pack(block, slot);
            let key = self.key_of(old);
            let new_ptr = self.insert_moved(&plain, key)?;
            moves.push((old, new_ptr, key));
        }
        self.free_block(block, true)?;
        Ok(moves)
    }

    /// Blocks the compactor would examine next (deadest first, bounded,
    /// filtered to blocks at least `min_dead_pct` percent dead).
    pub(crate) fn victims(
        &mut self,
        max_blocks: usize,
        min_dead_pct: u8,
    ) -> Result<Vec<BlockId>, CoreError> {
        self.ensure_accounting()?;
        Ok(self.compaction_victims(max_blocks, min_dead_pct))
    }

    /// Releases every freed block at the data device's tail (the record
    /// analogue of the node store's high-water truncation). Returns the
    /// number of blocks released.
    pub(crate) fn truncate_tail(&mut self) -> Result<u32, CoreError> {
        Ok(self.store.truncate_free_tail()?)
    }

    // ---- persistent reverse index -------------------------------------

    /// Serialises the index entries of the given blocks (ascending, plus
    /// the dead/live accounting, so a trusted reopen needs no page sweep)
    /// as one deterministic segment: a block count, then per block its
    /// accounting and sorted slot map. A block absent from every map
    /// serialises as the all-zero entry — the explicit "no longer
    /// tracked" tombstone a delta segment needs.
    fn stream_for_blocks(&self, blocks: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(blocks.len() as u32).to_be_bytes());
        for &b in blocks {
            let dead = self.dead.get(&b).copied().unwrap_or(0);
            let live = self.live.get(&b).copied().unwrap_or(0);
            let mut slots: Vec<(u16, u64)> = self
                .rindex
                .get(&b)
                .map(|m| m.iter().map(|(&s, &k)| (s, k)).collect())
                .unwrap_or_default();
            slots.sort_unstable();
            out.extend_from_slice(&b.to_be_bytes());
            out.extend_from_slice(&dead.to_be_bytes());
            out.extend_from_slice(&live.to_be_bytes());
            out.extend_from_slice(&(slots.len() as u32).to_be_bytes());
            for (s, k) in slots {
                out.extend_from_slice(&s.to_be_bytes());
                out.extend_from_slice(&k.to_be_bytes());
            }
        }
        out
    }

    /// Exact byte size of a full-rewrite segment, without serialising:
    /// the header plus each tracked block's fixed entry and slot rows.
    fn full_stream_len(&self) -> usize {
        let mut tracked: HashSet<u32> = self.rindex.keys().copied().collect();
        tracked.extend(self.dead.keys());
        tracked.extend(self.live.keys());
        let slots: usize = self.rindex.values().map(|m| m.len()).sum();
        4 + tracked.len() * 16 + slots * 10
    }

    /// The full-rewrite segment: every tracked block.
    fn index_stream(&self) -> Vec<u8> {
        let mut blocks: Vec<u32> = self
            .rindex
            .keys()
            .chain(self.dead.keys())
            .chain(self.live.keys())
            .copied()
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        self.stream_for_blocks(&blocks)
    }

    /// Parses a chain's concatenated segments. The chain head holds the
    /// newest segment, so the *first* entry seen for a block is current
    /// truth and later (older-segment) entries for it are superseded; an
    /// all-zero entry is a tombstone — the block is no longer tracked.
    fn parse_index_stream(&mut self, stream: &[u8]) -> Result<(), CoreError> {
        let corrupt = || CoreError::Record("reverse-index stream is corrupt".into());
        let at = std::cell::Cell::new(0usize);
        let take = |n: usize| -> Result<&[u8], CoreError> {
            let end = at.get().checked_add(n).ok_or_else(corrupt)?;
            let s = stream.get(at.get()..end).ok_or_else(corrupt)?;
            at.set(end);
            Ok(s)
        };
        let mut seen = HashSet::new();
        while at.get() < stream.len() {
            let n_blocks = u32::from_be_bytes(take(4)?.try_into().expect("fixed width"));
            for _ in 0..n_blocks {
                let b = u32::from_be_bytes(take(4)?.try_into().expect("fixed width"));
                let dead = u32::from_be_bytes(take(4)?.try_into().expect("fixed width"));
                let live = u32::from_be_bytes(take(4)?.try_into().expect("fixed width"));
                let n_slots = u32::from_be_bytes(take(4)?.try_into().expect("fixed width"));
                let current = seen.insert(b);
                if current && dead > 0 {
                    self.dead.insert(b, dead);
                }
                if current && live > 0 {
                    self.live.insert(b, live);
                }
                for _ in 0..n_slots {
                    let s = u16::from_be_bytes(take(2)?.try_into().expect("fixed width"));
                    let k = u64::from_be_bytes(take(8)?.try_into().expect("fixed width"));
                    if current {
                        self.rindex.entry(b).or_default().insert(s, k);
                    }
                }
            }
        }
        Ok(())
    }

    /// Loads the persisted index chain into the in-memory maps. Only
    /// called when the epoch pair proves it current.
    fn load_index(&mut self) -> Result<Vec<u32>, CoreError> {
        if self.index_root == NO_BLOCK {
            // A complete index over zero live records: nothing to load.
            return Ok(Vec::new());
        }
        let mut chain = Vec::new();
        let mut stream = Vec::new();
        let mut cur = self.index_root;
        let mut hops = 0u32;
        while cur != NO_BLOCK {
            hops += 1;
            if hops > self.store.num_blocks() {
                return Err(CoreError::Record("reverse-index chain loops".into()));
            }
            chain.push(cur);
            let page = self.store.read_block_vec(BlockId(cur))?;
            if !Self::is_index_page(&page) {
                return Err(CoreError::Record(format!(
                    "block {cur} on the index chain is not an index page"
                )));
            }
            let generation = u64::from_be_bytes(page[0..8].try_into().expect("fixed width"));
            let chunk_len =
                u16::from_be_bytes(page[10..12].try_into().expect("fixed width")) as usize;
            let next = u32::from_be_bytes(page[12..16].try_into().expect("fixed width"));
            if INDEX_HEADER + chunk_len > page.len() {
                return Err(CoreError::Record("index chunk overruns its page".into()));
            }
            let sealed = &page[INDEX_HEADER..INDEX_HEADER + chunk_len];
            stream.extend_from_slice(&ctr_xor(
                &self.cipher,
                Self::nonce(generation, INDEX_SLOT),
                sealed,
            ));
            cur = next;
        }
        self.parse_index_stream(&stream)?;
        Ok(chain)
    }

    /// Epoch of the persisted reverse index (the enciphered-tree layer
    /// stamps this into the node superblock at flush to detect the two
    /// devices committing out of step).
    pub fn index_epoch(&self) -> u64 {
        self.index_epoch
    }

    /// Drops all trust in the in-memory index and accounting (the caller
    /// detected that this device's committed image is out of step with
    /// the node device); everything is rebuilt lazily by the next
    /// maintenance pass.
    pub fn distrust_index(&mut self) {
        self.rindex.clear();
        self.live.clear();
        self.dead.clear();
        self.rindex_complete = false;
        self.accounting_complete = false;
        self.index_dirty_blocks = None;
    }

    /// Frees every allocated block the trusted index does not describe:
    /// exactly the compaction victims whose deferred free was lost to a
    /// crash between the node checkpoint and the free-commit (plus the
    /// odd empty fill page). Only sound when the index is trusted *and*
    /// the node device provably committed against this index epoch (the
    /// enciphered-tree layer checks its superblock stamp first) — an
    /// older tree image may still reference blocks the newer index no
    /// longer describes.
    pub fn reconcile_unreferenced_blocks(&mut self) -> Result<(), CoreError> {
        if !self.rindex_complete {
            return Ok(());
        }
        let chain = std::mem::take(&mut self.chain_blocks);
        let mut referenced: std::collections::HashSet<u32> = chain.iter().copied().collect();
        referenced.insert(0);
        referenced.extend(self.dead.keys());
        referenced.extend(self.live.keys());
        referenced.extend(self.rindex.keys());
        referenced.extend(self.store.free_block_ids());
        for b in 1..self.store.num_blocks() {
            if !referenced.contains(&b) {
                self.store.free(BlockId(b))?;
            }
        }
        self.chain_blocks = chain;
        Ok(())
    }

    /// Writes `stream` as a run of sealed chain pages (fresh generations
    /// — recycled chain blocks never repeat keystream), the run's last
    /// page pointing at `next_root`. Returns the page ids, head first.
    fn write_chain_segment(
        &mut self,
        stream: &[u8],
        next_root: u32,
    ) -> Result<Vec<BlockId>, CoreError> {
        let capacity = self.store.block_size() - INDEX_HEADER;
        let chunks: Vec<&[u8]> = stream.chunks(capacity.max(1)).collect();
        // Allocate the whole run first so each page can name its
        // successor.
        let mut ids = Vec::with_capacity(chunks.len());
        for _ in &chunks {
            ids.push(self.store.allocate_min()?);
        }
        for (i, chunk) in chunks.iter().enumerate().rev() {
            let generation = self.next_generation()?;
            let next = ids.get(i + 1).map(|b| b.0).unwrap_or(next_root);
            let mut page = vec![0u8; self.store.block_size()];
            page[0..8].copy_from_slice(&generation.to_be_bytes());
            page[8..10].copy_from_slice(&INDEX_MARKER.to_be_bytes());
            page[10..12].copy_from_slice(&(chunk.len() as u16).to_be_bytes());
            page[12..16].copy_from_slice(&next.to_be_bytes());
            let sealed = ctr_xor(&self.cipher, Self::nonce(generation, INDEX_SLOT), chunk);
            page[INDEX_HEADER..INDEX_HEADER + sealed.len()].copy_from_slice(&sealed);
            self.store.write_block(ids[i], &page)?;
        }
        Ok(ids)
    }

    /// Persists the reverse index and commits the superblock with a
    /// matched epoch pair. When the persisted chain is a complete image
    /// and the dirty-entry set is exact, only the *changed* block entries
    /// are written, as a delta segment prepended to the chain —
    /// O(changed blocks) per epoch instead of O(live) — with a full
    /// rewrite every `rewrite_period` delta epochs to bound chain length.
    /// Otherwise the previous chain is freed and rewritten wholesale;
    /// when the index is incomplete (unkeyed inserts happened) the chain
    /// is cleared instead, so a reopen rebuilds rather than trusting a
    /// partial map. Called by [`RecordStore::flush`]; skipped entirely
    /// when nothing mutated.
    fn persist_index(&mut self) -> Result<(), CoreError> {
        if !self.index_dirty && self.index_persisted_complete == self.rindex_complete {
            return Ok(());
        }
        let t = self.store.counters().obs().start();
        // Delta eligibility: the persisted chain must be a complete image
        // whose distance from the current maps the dirty set measures
        // exactly.
        let delta_ok = self.delta_enabled
            && self.rewrite_period > 0
            && self.rindex_complete
            && self.index_persisted_complete
            && self.index_delta_epochs < self.rewrite_period
            && self.index_dirty_blocks.is_some();
        let mut wrote_delta = false;
        if delta_ok {
            let mut dirty: Vec<u32> = self
                .index_dirty_blocks
                .as_ref()
                .expect("eligibility checked the set is Some")
                .iter()
                .copied()
                .collect();
            dirty.sort_unstable();
            if dirty.is_empty() {
                // An epoch whose net index state is unchanged (e.g. only
                // no-op deletes) just re-stamps the superblock; no pages.
                wrote_delta = true;
            } else {
                let stream = self.stream_for_blocks(&dirty);
                let capacity = (self.store.block_size() - INDEX_HEADER).max(1);
                let delta_pages = stream.len().div_ceil(capacity);
                let full_len = self.full_stream_len();
                let full_pages = full_len.div_ceil(capacity).max(1);
                // Only worth it while the delta is genuinely smaller than
                // a rewrite and the chain stays bounded (≤ ~2× the full
                // image): churn that dirties most blocks falls through to
                // the rewrite, which also reclaims the superseded chain.
                if stream.len() * 2 <= full_len
                    && self.chain_blocks.len() + delta_pages <= full_pages * 2 + 1
                {
                    let ids = self.write_chain_segment(&stream, self.index_root)?;
                    let mut chain: Vec<u32> = ids.iter().map(|b| b.0).collect();
                    chain.extend_from_slice(&self.chain_blocks);
                    self.chain_blocks = chain;
                    self.index_root = ids.first().map(|b| b.0).unwrap_or(self.index_root);
                    self.index_delta_epochs += 1;
                    self.store.counters().bump(|c| &c.index_delta_flushes);
                    self.store
                        .counters()
                        .bump_by(|c| &c.index_flush_bytes, stream.len() as u64);
                    wrote_delta = true;
                }
            }
        }
        if !wrote_delta {
            // Free the superseded chain (also when it is stale from a
            // crashed epoch — the head survives in the superblock either
            // way).
            let mut cur = self.index_root;
            let mut hops = 0u32;
            while cur != NO_BLOCK {
                hops += 1;
                if hops > self.store.num_blocks() {
                    break; // stale garbage; stop following it
                }
                let Ok(page) = self.store.read_block_vec(BlockId(cur)) else {
                    break;
                };
                if !Self::is_index_page(&page) {
                    break;
                }
                let next = u32::from_be_bytes(page[12..16].try_into().expect("fixed width"));
                self.free_block(BlockId(cur), false)?;
                cur = next;
            }
            self.index_root = NO_BLOCK;
            self.chain_blocks.clear();
            // An empty stream (zero tracked blocks) persists as a bare
            // `complete` flag with no chain pages, so a fresh store's first
            // checkpoint does not disturb the data device's block layout.
            if self.rindex_complete && !(self.rindex.is_empty() && self.dead.is_empty()) {
                let stream = self.index_stream();
                let ids = self.write_chain_segment(&stream, NO_BLOCK)?;
                self.chain_blocks = ids.iter().map(|b| b.0).collect();
                self.index_root = ids.first().map(|b| b.0).unwrap_or(NO_BLOCK);
                self.store
                    .counters()
                    .bump_by(|c| &c.index_flush_bytes, stream.len() as u64);
            }
            self.index_delta_epochs = 0;
            self.store.counters().bump(|c| &c.index_full_flushes);
        }
        self.index_dirty_blocks = Some(HashSet::new());
        self.index_persisted_complete = self.rindex_complete;
        self.index_epoch += 1;
        self.mut_epoch = self.index_epoch;
        self.index_dirty = false;
        self.write_superblock()?;
        self.store
            .counters()
            .obs()
            .stage(sks_storage::Stage::IndexFlush, t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_storage::MemDisk;

    fn store() -> RecordStore<MemDisk> {
        RecordStore::create(
            MemDisk::new(256),
            0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899,
            0,
        )
        .unwrap()
    }

    fn cached_store() -> RecordStore<MemDisk> {
        RecordStore::create(
            MemDisk::new(256),
            0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899,
            64,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut rs = store();
        let p1 = rs.insert(b"alpha").unwrap();
        let p2 = rs.insert(b"beta record with more bytes").unwrap();
        assert_eq!(rs.get(p1).unwrap().unwrap(), b"alpha");
        assert_eq!(rs.get(p2).unwrap().unwrap(), b"beta record with more bytes");
    }

    #[test]
    fn records_are_enciphered_on_disk() {
        let mut rs = store();
        let ptr = rs.insert(b"TOPSECRET-SALARY-90000").unwrap();
        let image = rs.store().raw_image();
        let found = image
            .iter()
            .any(|b| b.windows(8).any(|w| w == &b"TOPSECRE"[..]));
        assert!(!found, "plaintext leaked into the data block");
        assert_eq!(rs.get(ptr).unwrap().unwrap(), b"TOPSECRET-SALARY-90000");
    }

    #[test]
    fn fills_multiple_blocks() {
        let mut rs = store();
        let rec = vec![7u8; 100];
        let ptrs: Vec<RecordPtr> = (0..10).map(|_| rs.insert(&rec).unwrap()).collect();
        let blocks: std::collections::HashSet<u32> =
            ptrs.iter().map(|p| p.block().as_u32()).collect();
        assert!(
            blocks.len() >= 5,
            "100-byte records, 256-byte pages: ~2/page"
        );
        for p in ptrs {
            assert_eq!(rs.get(p).unwrap().unwrap(), rec);
        }
    }

    #[test]
    fn delete_tombstones() {
        let mut rs = store();
        let p = rs.insert(b"gone").unwrap();
        assert!(rs.delete(p).unwrap());
        assert_eq!(rs.get(p).unwrap(), None);
        assert!(!rs.delete(p).unwrap(), "double delete reports false");
        assert_eq!(rs.pending_tombstones().unwrap(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut rs = store();
        let too_big = vec![0u8; 10_000];
        assert!(matches!(rs.insert(&too_big), Err(CoreError::Record(_))));
        // Exactly max fits.
        let max = rs.max_record_len();
        let p = rs.insert(&vec![1u8; max]).unwrap();
        assert_eq!(rs.get(p).unwrap().unwrap().len(), max);
    }

    #[test]
    fn bad_slot_is_error() {
        let mut rs = store();
        let p = rs.insert(b"x").unwrap();
        let bogus = RecordPtr::pack(p.block(), 99);
        assert!(matches!(rs.get(bogus), Err(CoreError::Record(_))));
    }

    #[test]
    fn same_plaintext_different_slots_different_ciphertext() {
        let mut rs = store();
        let p1 = rs.insert(b"same-bytes").unwrap();
        let p2 = rs.insert(b"same-bytes").unwrap();
        assert_ne!(p1, p2);
        assert_eq!(rs.get(p1).unwrap(), rs.get(p2).unwrap());
    }

    #[test]
    fn counters_track_data_crypto() {
        let mut rs = store();
        let p = rs.insert(b"counted").unwrap();
        let _ = rs.get(p).unwrap();
        let s = rs.store().counters().snapshot();
        assert_eq!((s.data_encrypts, s.data_decrypts), (1, 1));
    }

    #[test]
    fn superblock_survives_reopen_and_generations_advance() {
        let mut rs = store();
        let rec = vec![3u8; 100];
        for _ in 0..6 {
            rs.insert(&rec).unwrap();
        }
        let gen_before = rs.next_gen;
        assert!(gen_before > 3, "several pages initialised");
        let disk = rs.into_store();
        let mut rs = RecordStore::open(disk, 0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899, 0).unwrap();
        assert_eq!(rs.next_gen, gen_before, "generation counter persisted");
        // Fresh pages after reopen keep advancing, never reusing keystream.
        for _ in 0..4 {
            rs.insert(&rec).unwrap();
        }
        assert!(rs.next_gen > gen_before);
    }

    #[test]
    fn open_rejects_a_non_record_store() {
        let mut disk = MemDisk::new(256);
        disk.allocate().unwrap(); // block 0 exists but holds no superblock
        assert!(matches!(
            RecordStore::open(disk, 1, 0),
            Err(CoreError::Record(_))
        ));
    }

    #[test]
    fn record_cache_hits_skip_physical_work_but_count_logically() {
        let mut rs = cached_store();
        let p = rs.insert(b"hot record").unwrap();
        rs.store().counters().reset();
        for _ in 0..10 {
            assert_eq!(rs.get(p).unwrap().unwrap(), b"hot record");
        }
        let s = rs.store().counters().snapshot();
        assert_eq!(s.data_decrypts, 10, "logical cost reported per get");
        assert_eq!(s.record_cache_hits, 10, "insert pre-warmed the cache");
        assert_eq!(s.block_reads, 0, "no physical page reads on hits");
    }

    #[test]
    fn record_cache_invalidated_on_delete() {
        let mut rs = cached_store();
        let p = rs.insert(b"soon gone").unwrap();
        assert_eq!(rs.get(p).unwrap().unwrap(), b"soon gone");
        rs.delete(p).unwrap();
        assert_eq!(rs.get(p).unwrap(), None, "stale cache entry must not serve");
    }

    #[test]
    fn record_cache_is_bounded() {
        let mut rs = cached_store(); // capacity 64
        let rec = vec![9u8; 40];
        for _ in 0..200 {
            rs.insert(&rec).unwrap();
        }
        assert!(rs.cached_records() <= 64);
    }

    #[test]
    fn compaction_reclaims_fully_dead_blocks() {
        let mut rs = store();
        let rec = vec![5u8; 100]; // 2 per 256-byte page
        let ptrs: Vec<RecordPtr> = (0..10).map(|_| rs.insert(&rec).unwrap()).collect();
        let blocks_before = rs.store().num_blocks();
        for &p in &ptrs {
            rs.delete(p).unwrap();
        }
        let victims = rs.victims(64, 0).unwrap();
        assert!(!victims.is_empty());
        let mut moves = 0;
        for v in victims {
            moves += rs.compact_block(v).unwrap().len();
        }
        assert_eq!(moves, 0, "every record was dead");
        // Reclaims are quarantined until the caller's node device has
        // committed; apply them as the enciphered-tree flush would.
        assert!(rs.has_pending_frees());
        rs.apply_pending_frees().unwrap();
        use sks_storage::BlockStore as _;
        assert!(
            rs.store().free_blocks() >= blocks_before - 2,
            "dead blocks returned to the free list ({} of {blocks_before})",
            rs.store().free_blocks()
        );
        // Reuse: new inserts pop freed blocks instead of growing the device.
        for _ in 0..8 {
            rs.insert(&rec).unwrap();
        }
        assert_eq!(rs.store().num_blocks(), blocks_before, "no growth");
    }

    #[test]
    fn compaction_moves_live_records_and_preserves_content() {
        let mut rs = store();
        // ~100-byte records: two per 256-byte page, so the set spans
        // several blocks and the open block keeps moving.
        let mk = |i: u64| format!("live-record-{i:03}-{}", "x".repeat(81)).into_bytes();
        let ptrs: Vec<RecordPtr> = (0..12).map(|i| rs.insert(&mk(i)).unwrap()).collect();
        // Kill every other record so most blocks are half dead.
        for (i, &p) in ptrs.iter().enumerate() {
            if i % 2 == 0 {
                rs.delete(p).unwrap();
            }
        }
        let victims = rs.victims(64, 0).unwrap();
        assert!(!victims.is_empty(), "half-dead blocks are victims");
        let mut moved = 0u64;
        for v in victims {
            for (old, new, _) in rs.compact_block(v).unwrap() {
                // Record i sits at block 1 + i/2 (block 0 is the
                // superblock), slot i%2; its content must survive the move
                // byte for byte.
                let i = (old.block().as_u32() as u64 - 1) * 2 + old.slot() as u64;
                assert_eq!(rs.get(new).unwrap().unwrap(), mk(i), "record {i}");
                moved += 1;
            }
        }
        assert!(moved >= 4, "live slots of the victims were rewritten");
        assert!(
            rs.pending_tombstones().unwrap() <= 1,
            "only the open fill block may still hold a tombstone"
        );
    }

    #[test]
    fn recycled_blocks_never_reuse_keystream() {
        // CTR nonce reuse across a block's incarnations would let an
        // opponent XOR old (stale, still on the medium) and new ciphertext
        // into plaintext. Generations make every incarnation's keystream
        // fresh: same block, same slot, different bytes for the *same*
        // plaintext.
        let mut rs = store();
        let rec = vec![0xAA; 100];
        let p0 = rs.insert(&rec).unwrap(); // block 1, slot 0
        let p1 = rs.insert(&rec).unwrap(); // block 1, slot 1 (page now full)
        let _p2 = rs.insert(&rec).unwrap(); // block 2 becomes the open block
        let block = p0.block();
        assert_eq!(p1.block(), block);
        let before = rs.store().raw_image()[block.as_u32() as usize].clone();
        rs.delete(p0).unwrap();
        rs.delete(p1).unwrap();
        for v in rs.victims(64, 0).unwrap() {
            rs.compact_block(v).unwrap();
        }
        rs.apply_pending_frees().unwrap();
        // Fill the open block, then the next insert recycles the freed one.
        let _p3 = rs.insert(&rec).unwrap();
        let p4 = rs.insert(&rec).unwrap();
        assert_eq!(p4.block(), block, "block recycled");
        assert_eq!(p4.slot(), 0, "slot recycled");
        let after = rs.store().raw_image()[block.as_u32() as usize].clone();
        let payload_differs = before
            .iter()
            .zip(&after)
            .skip(PAGE_HEADER + SLOT_ENTRY)
            .any(|(a, b)| a != b);
        assert!(
            payload_differs,
            "identical plaintext re-enciphered in a recycled slot must not repeat keystream"
        );
        assert_eq!(rs.get(p4).unwrap().unwrap(), rec);
    }

    const KEY: u128 = 0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899;

    #[test]
    fn reverse_index_tracks_keyed_churn_and_survives_flush_reopen() {
        let mut rs = store();
        let rec = vec![2u8; 100]; // 2 per 256-byte page
        let mut ptrs = Vec::new();
        for k in 0..10u64 {
            ptrs.push(rs.insert_keyed(1000 + k, &rec).unwrap());
        }
        rs.delete(ptrs[3]).unwrap();
        rs.delete(ptrs[4]).unwrap();
        assert!(rs.reverse_index_complete());
        let want: Vec<(u32, u16, u64)> = ptrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 3 && i != 4)
            .map(|(i, p)| (p.block().as_u32(), p.slot(), 1000 + i as u64))
            .collect();
        let mut want_sorted = want.clone();
        want_sorted.sort_unstable();
        assert_eq!(rs.reverse_index_snapshot(), want_sorted);
        // Persist + reopen: the index loads from the sealed chain, no
        // page sweep, accounting included.
        rs.flush().unwrap();
        let disk = rs.into_store();
        let mut rs = RecordStore::open(disk, KEY, 0).unwrap();
        assert!(rs.reverse_index_complete(), "trusted after clean flush");
        assert_eq!(rs.reverse_index_snapshot(), want_sorted);
        assert_eq!(rs.pending_tombstones().unwrap(), 2, "accounting loaded");
    }

    #[test]
    fn index_chain_is_sealed_on_the_medium() {
        let mut rs = store();
        // Keys with a recognisable plaintext pattern.
        for k in 0..6u64 {
            rs.insert_keyed(0xDEAD_BEEF_0000_0000 | k, &[1u8; 100])
                .unwrap();
        }
        rs.flush().unwrap();
        let image = rs.store().raw_image();
        let needle = 0xDEAD_BEEF_0000_0001u64.to_be_bytes();
        let found = image.iter().any(|b| b.windows(8).any(|w| w == needle));
        assert!(!found, "plaintext tree keys leaked into the index chain");
        // And the chain really is on the medium (some page carries the
        // marker).
        let marked = image
            .iter()
            .any(|b| b.len() >= 10 && b[8..10] == INDEX_MARKER.to_be_bytes());
        assert!(marked, "no index page found on the medium");
    }

    #[test]
    fn mutations_after_flush_distrust_the_persisted_index() {
        let mut rs = store();
        let rec = vec![7u8; 100];
        let mut ptrs = Vec::new();
        for k in 0..6u64 {
            ptrs.push(rs.insert_keyed(k, &rec).unwrap());
        }
        rs.flush().unwrap();
        // Post-flush mutations reach the (unbuffered) medium, the index
        // chain does not: the epoch guard must refuse the stale chain.
        rs.delete(ptrs[0]).unwrap();
        let disk = rs.into_store();
        let mut rs = RecordStore::open(disk, KEY, 0).unwrap();
        assert!(
            !rs.reverse_index_complete(),
            "stale index must not be trusted"
        );
        assert_eq!(
            rs.pending_tombstones().unwrap(),
            1,
            "lazy sweep sees the post-flush tombstone"
        );
        // The next flush persists a fresh, trustworthy state.
        rs.adopt_reverse_index(ptrs.iter().enumerate().skip(1).map(|(i, &p)| (p, i as u64)));
        rs.flush().unwrap();
        let disk = rs.into_store();
        let rs = RecordStore::open(disk, KEY, 0).unwrap();
        assert!(rs.reverse_index_complete());
        assert_eq!(rs.reverse_index_snapshot().len(), 5);
    }

    #[test]
    fn unkeyed_inserts_mark_the_index_incomplete_and_unpersisted() {
        let mut rs = store();
        rs.insert_keyed(1, b"keyed").unwrap();
        rs.insert(b"unkeyed").unwrap();
        assert!(!rs.reverse_index_complete());
        rs.flush().unwrap();
        let disk = rs.into_store();
        let rs = RecordStore::open(disk, KEY, 0).unwrap();
        assert!(
            !rs.reverse_index_complete(),
            "an incomplete index must not round-trip as complete"
        );
    }

    #[test]
    fn victims_are_ordered_deadest_first() {
        let mut rs = store();
        let rec = vec![9u8; 56]; // 4 per 256-byte page
        let mut ptrs = Vec::new();
        for k in 0..16u64 {
            ptrs.push(rs.insert_keyed(k, &rec).unwrap());
        }
        let blocks: Vec<u32> = {
            let mut b: Vec<u32> = ptrs.iter().map(|p| p.block().as_u32()).collect();
            b.dedup();
            b
        };
        assert!(blocks.len() >= 4);
        // Block 0: 1 dead; block 1: 3 dead; block 2: 2 dead; block 3 open.
        rs.delete(ptrs[0]).unwrap();
        for p in &ptrs[4..7] {
            rs.delete(*p).unwrap();
        }
        for p in &ptrs[8..10] {
            rs.delete(*p).unwrap();
        }
        let victims = rs.victims(10, 0).unwrap();
        assert_eq!(
            victims[..3],
            [BlockId(blocks[1]), BlockId(blocks[2]), BlockId(blocks[0])],
            "deadest ratio first"
        );
    }

    #[test]
    fn dead_ratio_floor_filters_lightly_dead_blocks() {
        let mut rs = store();
        let rec = vec![9u8; 56]; // 4 per 256-byte page
        let mut ptrs = Vec::new();
        for k in 0..16u64 {
            ptrs.push(rs.insert_keyed(k, &rec).unwrap());
        }
        let blocks: Vec<u32> = {
            let mut b: Vec<u32> = ptrs.iter().map(|p| p.block().as_u32()).collect();
            b.dedup();
            b
        };
        assert!(blocks.len() >= 4);
        // Block 0: 1 of 4 dead (25%); block 1: 3 of 4 dead (75%).
        rs.delete(ptrs[0]).unwrap();
        for p in &ptrs[4..7] {
            rs.delete(*p).unwrap();
        }
        // Floor 0 drains both; floor 25 keeps the exactly-at-floor block;
        // floor 50 defers the quarter-dead block until churn concentrates.
        assert_eq!(
            rs.victims(10, 0).unwrap(),
            [BlockId(blocks[1]), BlockId(blocks[0])]
        );
        assert_eq!(
            rs.victims(10, 25).unwrap(),
            [BlockId(blocks[1]), BlockId(blocks[0])],
            "a block exactly at the floor qualifies"
        );
        assert_eq!(
            rs.victims(10, 50).unwrap(),
            [BlockId(blocks[1])],
            "a lightly-dead block is deferred by the floor"
        );
        assert_eq!(rs.victims(10, 80).unwrap(), []);
    }

    #[test]
    fn shared_cache_namespaces_are_isolated_and_jointly_bounded() {
        let shared = SharedRecordCache::new(8);
        let mk = || {
            RecordStore::create(MemDisk::new(256), KEY, 0).unwrap() // no per-store cache
        };
        let mut a = mk();
        let mut b = mk();
        a.use_shared_cache(&shared, 0);
        b.use_shared_cache(&shared, 1);
        let pa = a.insert_keyed(1, b"store-a-record").unwrap();
        let pb = b.insert_keyed(1, b"store-b-record").unwrap();
        assert_eq!(pa, pb, "same pointer value in both stores");
        // Same ptr, different namespaces: no cross-talk.
        assert_eq!(a.get(pa).unwrap().unwrap(), b"store-a-record");
        assert_eq!(b.get(pb).unwrap().unwrap(), b"store-b-record");
        // Delete in a must not evict b's entry (and vice versa serve).
        a.delete(pa).unwrap();
        assert_eq!(a.get(pa).unwrap(), None);
        assert_eq!(b.get(pb).unwrap().unwrap(), b"store-b-record");
        // Joint bound: 20 hot records across both stores, one 8-slot clock.
        for k in 0..10u64 {
            a.insert_keyed(100 + k, &[k as u8; 40]).unwrap();
            b.insert_keyed(100 + k, &[k as u8; 40]).unwrap();
        }
        assert!(shared.len() <= 8, "{} > 8", shared.len());
        assert_eq!(shared.len(), a.cached_records() + b.cached_records());
    }

    #[test]
    fn compact_block_returns_owning_keys_from_the_index() {
        let mut rs = store();
        let rec = vec![4u8; 100];
        let p0 = rs.insert_keyed(500, &rec).unwrap();
        let p1 = rs.insert_keyed(501, &rec).unwrap();
        let _p2 = rs.insert_keyed(502, &rec).unwrap(); // new open block
        rs.delete(p0).unwrap();
        let moves = rs.compact_block(p1.block()).unwrap();
        assert_eq!(moves.len(), 1);
        let (old, new, key) = moves[0];
        assert_eq!(old, p1);
        assert_eq!(key, Some(501), "reverse index knew the owner");
        assert_eq!(rs.get(new).unwrap().unwrap(), rec);
    }

    #[test]
    fn reopened_store_rebuilds_tombstone_accounting() {
        let mut rs = store();
        let rec = vec![1u8; 100];
        let ptrs: Vec<RecordPtr> = (0..6).map(|_| rs.insert(&rec).unwrap()).collect();
        rs.delete(ptrs[0]).unwrap();
        rs.delete(ptrs[3]).unwrap();
        let disk = rs.into_store();
        let mut rs = RecordStore::open(disk, 0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899, 0).unwrap();
        assert!(rs.may_have_tombstones());
        assert_eq!(
            rs.pending_tombstones().unwrap(),
            2,
            "lazy sweep found the pre-restart tombstones"
        );
    }
}
