//! Data blocks: slotted pages of enciphered records.
//!
//! §5: "The encryption algorithm used for the encryption of data blocks can
//! be different and independent to that used for the tree and data pointers
//! in the node blocks." Records here are CTR-enciphered under their own key
//! with a per-(block, slot) nonce; compromising node blocks yields only the
//! *location* of data blocks, never their content.

use sks_btree_core::RecordPtr;
use sks_crypto::modes::ctr_xor;
use sks_crypto::speck::Speck64;
use sks_storage::{BlockId, BlockStore, PageReader, PageWriter};

use crate::error::CoreError;

/// Page layout: `[n_slots u16][free_off u16]` then the slot directory
/// (`off u16, len u16` per slot) growing forward; record bytes packed at
/// the tail, growing backward.
const PAGE_HEADER: usize = 4;
const SLOT_ENTRY: usize = 4;
/// Tombstone marker in the slot directory.
const TOMBSTONE: u16 = u16::MAX;

/// A slotted-page record store with per-record encipherment.
pub struct RecordStore<S: BlockStore> {
    store: S,
    cipher: Speck64,
    /// Block currently being filled.
    open_block: Option<BlockId>,
}

impl<S: BlockStore> RecordStore<S> {
    /// `data_key` is the independent data-block key of §5.
    pub fn new(store: S, data_key: u128) -> Self {
        RecordStore {
            store,
            cipher: Speck64::from_u128(data_key),
            open_block: None,
        }
    }

    /// Largest storable record.
    pub fn max_record_len(&self) -> usize {
        self.store.block_size() - PAGE_HEADER - SLOT_ENTRY
    }

    pub fn store(&self) -> &S {
        &self.store
    }

    pub fn into_store(self) -> S {
        self.store
    }

    /// Flushes the underlying store (a checkpoint on buffered backends).
    pub fn flush(&mut self) -> Result<(), CoreError> {
        Ok(self.store.flush()?)
    }

    fn nonce(block: BlockId, slot: u16) -> u64 {
        ((block.as_u64()) << 16) | slot as u64
    }

    fn read_page_meta(page: &[u8]) -> Result<(u16, u16), CoreError> {
        let mut r = PageReader::new(page);
        let n_slots = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        let free_off = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        Ok((n_slots, free_off))
    }

    fn slot_entry(page: &[u8], slot: u16) -> Result<(u16, u16), CoreError> {
        let mut r = PageReader::new(page);
        r.seek(PAGE_HEADER + slot as usize * SLOT_ENTRY)
            .map_err(|e| CoreError::Record(e.to_string()))?;
        let off = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        let len = r.get_u16().map_err(|e| CoreError::Record(e.to_string()))?;
        Ok((off, len))
    }

    /// Free bytes left in a page with the given metadata.
    fn free_space(&self, n_slots: u16, free_off: u16) -> usize {
        let dir_end = PAGE_HEADER + n_slots as usize * SLOT_ENTRY;
        (free_off as usize).saturating_sub(dir_end + SLOT_ENTRY)
    }

    /// Inserts a record, returning its pointer.
    pub fn insert(&mut self, record: &[u8]) -> Result<RecordPtr, CoreError> {
        if record.len() > self.max_record_len() {
            return Err(CoreError::Record(format!(
                "record of {} bytes exceeds max {}",
                record.len(),
                self.max_record_len()
            )));
        }
        // Find or open a block with room.
        let block_size = self.store.block_size();
        let (block, mut page) = match self.open_block {
            Some(b) => {
                let page = self.store.read_block_vec(b)?;
                let (n_slots, free_off) = Self::read_page_meta(&page)?;
                if self.free_space(n_slots, free_off) >= record.len() {
                    (b, page)
                } else {
                    let nb = self.store.allocate()?;
                    let mut fresh = vec![0u8; block_size];
                    Self::init_page(&mut fresh, block_size);
                    self.open_block = Some(nb);
                    (nb, fresh)
                }
            }
            None => {
                let nb = self.store.allocate()?;
                let mut fresh = vec![0u8; block_size];
                Self::init_page(&mut fresh, block_size);
                self.open_block = Some(nb);
                (nb, fresh)
            }
        };
        let (n_slots, free_off) = Self::read_page_meta(&page)?;
        let slot = n_slots;
        let new_off = free_off as usize - record.len();
        // Encrypt under the per-record nonce.
        self.store.counters().bump(|c| &c.data_encrypts);
        let ct = ctr_xor(&self.cipher, Self::nonce(block, slot), record);
        page[new_off..new_off + ct.len()].copy_from_slice(&ct);
        // Slot directory entry.
        {
            let mut w = PageWriter::new(&mut page);
            w.put_u16(n_slots + 1)
                .map_err(|e| CoreError::Record(e.to_string()))?;
            w.put_u16(new_off as u16)
                .map_err(|e| CoreError::Record(e.to_string()))?;
        }
        {
            let dir_off = PAGE_HEADER + slot as usize * SLOT_ENTRY;
            page[dir_off..dir_off + 2].copy_from_slice(&(new_off as u16).to_be_bytes());
            page[dir_off + 2..dir_off + 4].copy_from_slice(&(ct.len() as u16).to_be_bytes());
        }
        self.store.write_block(block, &page)?;
        Ok(RecordPtr::pack(block, slot))
    }

    fn init_page(page: &mut [u8], block_size: usize) {
        // n_slots = 0, free_off = block end.
        page[0..2].copy_from_slice(&0u16.to_be_bytes());
        page[2..4].copy_from_slice(&(block_size as u16).to_be_bytes());
    }

    /// Fetches and deciphers a record. `None` for tombstoned slots.
    pub fn get(&self, ptr: RecordPtr) -> Result<Option<Vec<u8>>, CoreError> {
        let page = self.store.read_block_vec(ptr.block())?;
        let (n_slots, _) = Self::read_page_meta(&page)?;
        if ptr.slot() >= n_slots {
            return Err(CoreError::Record(format!(
                "slot {} out of range (page has {n_slots})",
                ptr.slot()
            )));
        }
        let (off, len) = Self::slot_entry(&page, ptr.slot())?;
        if off == TOMBSTONE {
            return Ok(None);
        }
        let ct = &page[off as usize..off as usize + len as usize];
        self.store.counters().bump(|c| &c.data_decrypts);
        Ok(Some(ctr_xor(
            &self.cipher,
            Self::nonce(ptr.block(), ptr.slot()),
            ct,
        )))
    }

    /// Tombstones a record (space is not reclaimed — matching the paper's
    /// static view of data blocks; compaction is out of scope).
    pub fn delete(&mut self, ptr: RecordPtr) -> Result<bool, CoreError> {
        let mut page = self.store.read_block_vec(ptr.block())?;
        let (n_slots, _) = Self::read_page_meta(&page)?;
        if ptr.slot() >= n_slots {
            return Err(CoreError::Record(format!(
                "slot {} out of range (page has {n_slots})",
                ptr.slot()
            )));
        }
        let dir_off = PAGE_HEADER + ptr.slot() as usize * SLOT_ENTRY;
        let was_live = page[dir_off..dir_off + 2] != TOMBSTONE.to_be_bytes();
        page[dir_off..dir_off + 2].copy_from_slice(&TOMBSTONE.to_be_bytes());
        self.store.write_block(ptr.block(), &page)?;
        Ok(was_live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_storage::MemDisk;

    fn store() -> RecordStore<MemDisk> {
        RecordStore::new(MemDisk::new(256), 0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut rs = store();
        let p1 = rs.insert(b"alpha").unwrap();
        let p2 = rs.insert(b"beta record with more bytes").unwrap();
        assert_eq!(rs.get(p1).unwrap().unwrap(), b"alpha");
        assert_eq!(rs.get(p2).unwrap().unwrap(), b"beta record with more bytes");
    }

    #[test]
    fn records_are_enciphered_on_disk() {
        let mut rs = store();
        let ptr = rs.insert(b"TOPSECRET-SALARY-90000").unwrap();
        let image = rs.store().raw_image();
        let found = image
            .iter()
            .any(|b| b.windows(8).any(|w| w == &b"TOPSECRE"[..]));
        assert!(!found, "plaintext leaked into the data block");
        assert_eq!(rs.get(ptr).unwrap().unwrap(), b"TOPSECRET-SALARY-90000");
    }

    #[test]
    fn fills_multiple_blocks() {
        let mut rs = store();
        let rec = vec![7u8; 100];
        let ptrs: Vec<RecordPtr> = (0..10).map(|_| rs.insert(&rec).unwrap()).collect();
        let blocks: std::collections::HashSet<u32> =
            ptrs.iter().map(|p| p.block().as_u32()).collect();
        assert!(
            blocks.len() >= 5,
            "100-byte records, 256-byte pages: ~2/page"
        );
        for p in ptrs {
            assert_eq!(rs.get(p).unwrap().unwrap(), rec);
        }
    }

    #[test]
    fn delete_tombstones() {
        let mut rs = store();
        let p = rs.insert(b"gone").unwrap();
        assert!(rs.delete(p).unwrap());
        assert_eq!(rs.get(p).unwrap(), None);
        assert!(!rs.delete(p).unwrap(), "double delete reports false");
    }

    #[test]
    fn oversized_record_rejected() {
        let mut rs = store();
        let too_big = vec![0u8; 10_000];
        assert!(matches!(rs.insert(&too_big), Err(CoreError::Record(_))));
        // Exactly max fits.
        let max = rs.max_record_len();
        let p = rs.insert(&vec![1u8; max]).unwrap();
        assert_eq!(rs.get(p).unwrap().unwrap().len(), max);
    }

    #[test]
    fn bad_slot_is_error() {
        let mut rs = store();
        let p = rs.insert(b"x").unwrap();
        let bogus = RecordPtr::pack(p.block(), 99);
        assert!(matches!(rs.get(bogus), Err(CoreError::Record(_))));
    }

    #[test]
    fn same_plaintext_different_slots_different_ciphertext() {
        let mut rs = store();
        let p1 = rs.insert(b"same-bytes").unwrap();
        let p2 = rs.insert(b"same-bytes").unwrap();
        assert_ne!(p1, p2);
        let image = rs.store().raw_image();
        // Both records decrypt fine but their on-disk bytes differ (nonce).
        let all: Vec<u8> = image.concat();
        let mut positions = Vec::new();
        for i in 0..all.len().saturating_sub(10) {
            if &all[i..i + 10] == rs.get(p1).unwrap().unwrap().as_slice() {
                positions.push(i);
            }
        }
        assert_eq!(rs.get(p1).unwrap(), rs.get(p2).unwrap());
    }

    #[test]
    fn counters_track_data_crypto() {
        let mut rs = store();
        let p = rs.insert(b"counted").unwrap();
        let _ = rs.get(p).unwrap();
        let s = rs.store().counters().snapshot();
        assert_eq!((s.data_encrypts, s.data_decrypts), (1, 1));
    }
}
