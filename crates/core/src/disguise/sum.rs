//! §4.3 — substitution using the sum of treatments in blocks.
//!
//! Key `x` is associated with line `L_{w+x}` and substituted by the running
//! total of all integer treatments on lines `L_w ..= L_{w+x}` ("the
//! summation is done without reducing modulo v"). Because every line sum is
//! positive, the substitutes are strictly increasing in `x`: the disguise is
//! **order-preserving**, so the B-tree built over substitutes has the same
//! shape as the plaintext tree, range searches keep working, and the scheme
//! can run inside a high-level security filter in front of an unmodifiable
//! DBMS (the paper's §4.3 deployment story).
//!
//! The starting line `w > 0` hides the design's first block `B₀` from an
//! opponent who sees substitutes (§4.3: "chosen to prevent the opponent
//! from discovering the first block").

use sks_designs::diffset::DifferenceSet;
use sks_storage::OpCounters;

use super::{bump_disguise, bump_recover, DisguiseError, KeyDisguise};

/// The cumulative-sum substitution.
#[derive(Debug, Clone)]
pub struct SumSubstitution {
    design: DifferenceSet,
    w: u64,
    /// `prefix[x] = Σ_{α=w}^{w+x} line_sum(α)` — the substitute for key `x`.
    prefix: Vec<u64>,
    counters: OpCounters,
}

impl SumSubstitution {
    /// Supports keys `0 ..< capacity`; requires `w + capacity < v − 1`
    /// (the paper's `w + R < v − 1` bound).
    pub fn new(
        design: DifferenceSet,
        w: u64,
        capacity: u64,
        counters: OpCounters,
    ) -> Result<Self, DisguiseError> {
        if capacity == 0 {
            return Err(DisguiseError::BadParameters(
                "capacity must be positive".into(),
            ));
        }
        let v = design.v();
        if w.checked_add(capacity).is_none_or(|end| end >= v - 1) {
            return Err(DisguiseError::BadParameters(format!(
                "need w + R < v - 1 (w = {w}, R = {capacity}, v = {v})"
            )));
        }
        let mut prefix = Vec::with_capacity(capacity as usize);
        let mut acc: u128 = 0;
        for x in 0..capacity {
            acc += design.line_sum(w + x);
            let val = u64::try_from(acc).map_err(|_| {
                DisguiseError::BadParameters(format!(
                    "cumulative sum overflows u64 at key {x}; use a smaller design or capacity"
                ))
            })?;
            prefix.push(val);
        }
        Ok(SumSubstitution {
            design,
            w,
            prefix,
            counters,
        })
    }

    /// The paper's worked table: `(13,4,1)` with `w = 0`, all 13 keys.
    pub fn paper_example(counters: OpCounters) -> Self {
        SumSubstitution::new(DifferenceSet::paper_13_4_1(), 0, 11, counters)
            .expect("paper parameters are valid")
    }

    pub fn design(&self) -> &DifferenceSet {
        &self.design
    }

    pub fn starting_line(&self) -> u64 {
        self.w
    }

    /// Number of supported keys `R`.
    pub fn capacity(&self) -> u64 {
        self.prefix.len() as u64
    }

    /// The full substitute table (for regenerating the §4.3 table).
    pub fn substitute_table(&self) -> &[u64] {
        &self.prefix
    }
}

impl KeyDisguise for SumSubstitution {
    fn disguise(&self, key: u64) -> Result<u64, DisguiseError> {
        let Some(&val) = self.prefix.get(key as usize) else {
            return Err(DisguiseError::OutOfDomain {
                key,
                domain: format!("[0, {})", self.prefix.len()),
            });
        };
        bump_disguise(&self.counters);
        Ok(val)
    }

    fn recover(&self, disguised: u64) -> Result<u64, DisguiseError> {
        bump_recover(&self.counters);
        self.recover_uncounted(disguised)
    }

    fn recover_uncounted(&self, disguised: u64) -> Result<u64, DisguiseError> {
        match self.prefix.binary_search(&disguised) {
            Ok(i) => Ok(i as u64),
            Err(_) => Err(DisguiseError::NotInImage { value: disguised }),
        }
    }

    fn order_preserving(&self) -> bool {
        true
    }

    fn domain_size(&self) -> Option<u64> {
        Some(self.prefix.len() as u64)
    }

    fn secret_size_bytes(&self) -> usize {
        // {v, k, λ} + base block + w. The prefix table is derived from the
        // secret, not part of it.
        3 * 8 + self.design.base().len() * 8 + 8
    }

    fn name(&self) -> &'static str {
        "sum-of-treatments"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disguise::testutil::assert_disguise_contract;

    #[test]
    fn paper_table_values() {
        // §4.3: k̂ = 13, 30, 51, 76, 92, 112, 136, 164, 196, 232, 259 for
        // keys 0..=10 (w = 0; capacity limited by w + R < v - 1).
        let d = SumSubstitution::paper_example(OpCounters::new());
        let want = [13u64, 30, 51, 76, 92, 112, 136, 164, 196, 232, 259];
        for (k, &expected) in want.iter().enumerate() {
            assert_eq!(d.disguise(k as u64).unwrap(), expected, "key {k}");
        }
        assert_eq!(d.substitute_table(), &want);
    }

    #[test]
    fn full_paper_column_via_design() {
        // The remaining printed values (290, 312) exceed the w + R < v - 1
        // capacity bound but are reproducible straight from the design.
        let ds = DifferenceSet::paper_13_4_1();
        assert_eq!(ds.cumulative_sum(0, 11), 290);
        assert_eq!(ds.cumulative_sum(0, 12), 312);
    }

    #[test]
    fn contract_and_order_preservation() {
        let d = SumSubstitution::paper_example(OpCounters::new());
        let keys: Vec<u64> = (0..11).collect();
        assert_disguise_contract(&d, &keys);
        assert!(d.order_preserving());
    }

    #[test]
    fn nonzero_starting_line() {
        let ds = DifferenceSet::singer(7).unwrap(); // v = 57
        let d = SumSubstitution::new(ds.clone(), 5, 40, OpCounters::new()).unwrap();
        let keys: Vec<u64> = (0..40).collect();
        assert_disguise_contract(&d, &keys);
        // First substitute is line_sum(5), not line_sum(0).
        assert_eq!(d.disguise(0).unwrap() as u128, ds.line_sum(5));
    }

    #[test]
    fn capacity_bound_enforced() {
        let ds = DifferenceSet::paper_13_4_1();
        assert!(SumSubstitution::new(ds.clone(), 0, 12, OpCounters::new()).is_err());
        assert!(SumSubstitution::new(ds.clone(), 5, 7, OpCounters::new()).is_err());
        assert!(SumSubstitution::new(ds, 0, 0, OpCounters::new()).is_err());
    }

    #[test]
    fn out_of_domain_and_not_in_image() {
        let d = SumSubstitution::paper_example(OpCounters::new());
        assert!(matches!(
            d.disguise(11),
            Err(DisguiseError::OutOfDomain { .. })
        ));
        assert!(matches!(
            d.recover(14),
            Err(DisguiseError::NotInImage { .. })
        ));
    }

    #[test]
    fn singer_scale_capacity() {
        // v = 10303: support 10k keys.
        let ds = DifferenceSet::singer(101).unwrap();
        let d = SumSubstitution::new(ds, 17, 10_000, OpCounters::new()).unwrap();
        let keys: Vec<u64> = (0..10_000).step_by(103).collect();
        assert_disguise_contract(&d, &keys);
    }

    #[test]
    fn counts_ops() {
        let counters = OpCounters::new();
        let d = SumSubstitution::paper_example(counters.clone());
        let v = d.disguise(3).unwrap();
        let _ = d.recover(v).unwrap();
        let s = counters.snapshot();
        assert_eq!((s.disguise_ops, s.recover_ops), (1, 1));
    }
}
