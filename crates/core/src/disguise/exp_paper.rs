//! §4.2 — the *literal* worked example of substitution using exponentiation
//! modulus, reproduced exactly as printed (`v = N = 13`, `g = 7`, `t = 7`).
//!
//! The paper finds the treatment `t_αβ` of a key by scanning lines
//! `L₀, L₁, …` and comparing `g^treatment mod N` with the key, then
//! substitutes `g^(oval treatment) = g^(t·t_αβ mod v) mod N`. Because the
//! paper reduces exponents modulo `v = 13` while `g` has order `N − 1 = 12`,
//! treatments 0 and 12 denote the same key and the map collides (keys 1 and
//! 2 both substitute to 1 in the example). This type reproduces the printed
//! tables *verbatim* and restricts the usable key domain to the collision-
//! free subset; [`super::ExpSubstitution`] is the invertible reading used by
//! the quantitative experiments.

use sks_designs::arith::{inv_mod, mul_mod, pow_mod};
use sks_designs::diffset::DifferenceSet;
use sks_storage::OpCounters;

use super::{bump_disguise, bump_recover, DisguiseError, KeyDisguise};

/// The paper's literal exponentiation substitution.
#[derive(Debug, Clone)]
pub struct PaperExpSubstitution {
    design: DifferenceSet,
    g: u64,
    n: u64,
    t: u64,
    t_inv_mod_v: u64,
    counters: OpCounters,
}

impl PaperExpSubstitution {
    /// Requires `v == N` (the worked example's setting) so treatments and
    /// exponent residues coincide the way the paper uses them.
    pub fn new(
        design: DifferenceSet,
        g: u64,
        n: u64,
        t: u64,
        counters: OpCounters,
    ) -> Result<Self, DisguiseError> {
        if design.v() != n {
            return Err(DisguiseError::BadParameters(format!(
                "the literal construction needs v == N (got v = {}, N = {n})",
                design.v()
            )));
        }
        let t_inv_mod_v = inv_mod(t, design.v()).ok_or_else(|| {
            DisguiseError::BadParameters(format!("t = {t} not invertible mod v = {}", design.v()))
        })?;
        Ok(PaperExpSubstitution {
            design,
            g,
            n,
            t,
            t_inv_mod_v,
            counters,
        })
    }

    /// The exact Figure 2 parameters: `(13,4,1)`, `g = 7`, `N = 13`, `t = 7`.
    pub fn paper_example(counters: OpCounters) -> Self {
        PaperExpSubstitution::new(DifferenceSet::paper_13_4_1(), 7, 13, 7, counters)
            .expect("paper parameters are valid")
    }

    pub fn design(&self) -> &DifferenceSet {
        &self.design
    }

    /// Scans lines `L₀, L₁, …` for the first point whose exponentiation
    /// matches `key`, exactly as §4.2 prescribes. Returns
    /// `(line, point index within line, treatment)`.
    pub fn scan_for_treatment(&self, key: u64) -> Result<(u64, usize, u64), DisguiseError> {
        self.scan_inner(key, true)
    }

    fn scan_inner(&self, key: u64, count: bool) -> Result<(u64, usize, u64), DisguiseError> {
        if count {
            self.counters.bump(|c| &c.dlog_ops);
        }
        for y in 0..self.design.v() {
            let line = self.design.line_in_base_order(y);
            for (idx, &treatment) in line.iter().enumerate() {
                if count {
                    self.counters.bump(|c| &c.key_compares);
                }
                if pow_mod(self.g, treatment, self.n) == key {
                    return Ok((y, idx, treatment));
                }
            }
        }
        Err(DisguiseError::NotInImage { value: key })
    }

    /// The lines-side exponent grid: row `y` lists the treatments of line
    /// `L_y` (to be read as `g^treatment`), matching the left column of the
    /// p. 55 table.
    pub fn line_exponent_grid(&self) -> Vec<Vec<u64>> {
        (0..self.design.v())
            .map(|y| self.design.line_in_base_order(y))
            .collect()
    }

    /// The ovals-side exponent grid: row `y` lists `t·treatment mod v` — the
    /// right column of the p. 55 table.
    pub fn oval_exponent_grid(&self) -> Vec<Vec<u64>> {
        (0..self.design.v())
            .map(|y| self.design.oval_in_base_order(y, self.t))
            .collect()
    }

    /// Whether a key is inside the collision-free domain (its treatment's
    /// oval exponent does not alias `g`'s order wraparound).
    pub fn key_is_unambiguous(&self, key: u64) -> bool {
        if key == 0 || key >= self.n {
            return false;
        }
        let Ok((_, _, e)) = self.scan_for_treatment(key) else {
            return false;
        };
        let oval_exp = mul_mod(e, self.t, self.design.v());
        // Ambiguous iff either exponent is a multiple of the group order
        // N−1 (exponents 0 and N−1 denote the same element, the identity).
        e % (self.n - 1) != 0 && !oval_exp.is_multiple_of(self.n - 1)
    }
}

impl KeyDisguise for PaperExpSubstitution {
    fn disguise(&self, key: u64) -> Result<u64, DisguiseError> {
        if key == 0 || key >= self.n {
            return Err(DisguiseError::OutOfDomain {
                key,
                domain: format!("[1, {})", self.n),
            });
        }
        bump_disguise(&self.counters);
        let (_, _, e) = self.scan_for_treatment(key)?;
        let oval_exp = mul_mod(e, self.t, self.design.v());
        Ok(pow_mod(self.g, oval_exp, self.n))
    }

    fn recover(&self, disguised: u64) -> Result<u64, DisguiseError> {
        if disguised == 0 || disguised >= self.n {
            return Err(DisguiseError::NotInImage { value: disguised });
        }
        bump_recover(&self.counters);
        // Find the oval exponent by the same scan, invert the oval map mod
        // v, and re-exponentiate.
        let (_, _, e_prime) = self.scan_for_treatment(disguised)?;
        let e = mul_mod(e_prime, self.t_inv_mod_v, self.design.v());
        Ok(pow_mod(self.g, e, self.n))
    }

    fn recover_uncounted(&self, disguised: u64) -> Result<u64, DisguiseError> {
        if disguised == 0 || disguised >= self.n {
            return Err(DisguiseError::NotInImage { value: disguised });
        }
        let (_, _, e_prime) = self.scan_inner(disguised, false)?;
        let e = mul_mod(e_prime, self.t_inv_mod_v, self.design.v());
        Ok(pow_mod(self.g, e, self.n))
    }

    fn order_preserving(&self) -> bool {
        false
    }

    fn domain_size(&self) -> Option<u64> {
        Some(self.n)
    }

    fn secret_size_bytes(&self) -> usize {
        3 * 8 + self.design.base().len() * 8 + 3 * 8
    }

    fn name(&self) -> &'static str {
        "exponentiation-paper"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> PaperExpSubstitution {
        PaperExpSubstitution::paper_example(OpCounters::new())
    }

    #[test]
    fn exponent_grids_match_page_55() {
        let d = paper();
        let lines = d.line_exponent_grid();
        let ovals = d.oval_exponent_grid();
        // Row 0 of the printed table: 7^0 7^1 7^3 7^9  |  7^0 7^7 7^8 7^11.
        assert_eq!(lines[0], vec![0, 1, 3, 9]);
        assert_eq!(ovals[0], vec![0, 7, 8, 11]);
        // Row 7: 7^7 7^8 7^10 7^3  |  7^10 7^4 7^5 7^8.
        assert_eq!(lines[7], vec![7, 8, 10, 3]);
        assert_eq!(ovals[7], vec![10, 4, 5, 8]);
        assert_eq!(lines.len(), 13);
        assert_eq!(ovals.len(), 13);
    }

    #[test]
    fn scan_finds_smallest_treatment_in_line_order() {
        let d = paper();
        // Key 1 = 7^0: treatment 0 sits on line L0.
        assert_eq!(d.scan_for_treatment(1).unwrap(), (0, 0, 0));
        // Key 7 = 7^1: treatment 1 also sits on line L0 (point index 1).
        assert_eq!(d.scan_for_treatment(7).unwrap(), (0, 1, 1));
        // Key 10 = 7^2: treatment 2 first appears on line L1 at index 1.
        assert_eq!(d.scan_for_treatment(10).unwrap(), (1, 1, 2));
    }

    #[test]
    fn literal_substitution_values() {
        let d = paper();
        // Key 7 has treatment 1 → oval exponent 7 → k̂ = 7^7 mod 13 = 6.
        assert_eq!(d.disguise(7).unwrap(), pow_mod(7, 7, 13));
        // Key 10 has treatment 2 → oval exponent 1 → k̂ = 7.
        assert_eq!(d.disguise(10).unwrap(), 7);
    }

    #[test]
    fn documented_collision_of_the_literal_scheme() {
        // Keys 1 (treatment 0) and 2 (treatment 11, oval exponent 77 mod 13
        // = 12) both substitute to 7^0 = 7^12 = 1: the paper's construction
        // is not injective. This test pins the deviation we document.
        let d = paper();
        assert_eq!(d.disguise(1).unwrap(), 1);
        assert_eq!(d.disguise(2).unwrap(), 1);
        assert!(!d.key_is_unambiguous(1) || !d.key_is_unambiguous(2));
    }

    #[test]
    fn roundtrip_on_unambiguous_domain() {
        let d = paper();
        for key in 3..13u64 {
            if d.key_is_unambiguous(key) {
                let dk = d.disguise(key).unwrap();
                assert_eq!(d.recover(dk).unwrap(), key, "key {key}");
            }
        }
    }

    #[test]
    fn requires_v_equals_n() {
        let err =
            PaperExpSubstitution::new(DifferenceSet::paper_13_4_1(), 7, 17, 7, OpCounters::new())
                .unwrap_err();
        assert!(matches!(err, DisguiseError::BadParameters(_)));
    }

    #[test]
    fn counts_scans_as_dlogs() {
        let counters = OpCounters::new();
        let d = PaperExpSubstitution::paper_example(counters.clone());
        let _ = d.disguise(7).unwrap();
        let s = counters.snapshot();
        assert_eq!(s.dlog_ops, 1);
        assert!(s.key_compares >= 1, "the scan compares points on lines");
    }
}
