//! §4.2 — substitution using exponentiation modulus (invertible reading).
//!
//! The paper substitutes a key `k` by first finding the treatment `e` with
//! `g^e ≡ k (mod N)` (a discrete log the *legal user* computes, knowing `g`
//! and `N`), then re-exponentiating with the oval treatment `t·e`:
//! `k̂ = g^(t·e) mod N`. Taking exponent arithmetic modulo the group order
//! `N−1` — the reading under which the map is a bijection — this is exactly
//! the Pohlig–Hellman permutation `k̂ = k^t mod N` with inverse exponent
//! `t⁻¹ mod (N−1)`.
//!
//! (The paper's own worked example reduces exponents mod `v = N` instead,
//! which is not injective; [`super::PaperExpSubstitution`] reproduces that
//! literal construction for Figure 2 while this type is used for all
//! quantitative experiments. The deviation is documented in DESIGN.md.)

use sks_designs::arith::{inv_mod, pow_mod};
use sks_designs::diffset::DifferenceSet;
use sks_designs::dlog::DlogTable;
use sks_designs::primes::{is_prime, is_primitive_root};
use sks_storage::OpCounters;

use super::{bump_disguise, bump_recover, DisguiseError, KeyDisguise};

/// The invertible exponentiation substitution `k̂ = k^t mod N`.
///
/// Domain: `1 ..= N−1` (zero has no discrete log). The associated block
/// design supplies the treatments-as-exponents narrative and the secret
/// material accounting; `N ≥ v` as the paper requires.
#[derive(Debug, Clone)]
pub struct ExpSubstitution {
    design: DifferenceSet,
    g: u64,
    n: u64,
    t: u64,
    t_inv: u64,
    /// Baby-step table so the legal user's dlog (treatment lookup) can be
    /// exercised and counted, as the paper describes the substitution step.
    dlog: DlogTable,
    counters: OpCounters,
}

impl ExpSubstitution {
    /// `N` must be prime with `N ≥ v`; `g` a primitive root of `N`;
    /// `gcd(t, N−1) = 1`.
    pub fn new(
        design: DifferenceSet,
        g: u64,
        n: u64,
        t: u64,
        counters: OpCounters,
    ) -> Result<Self, DisguiseError> {
        if !is_prime(n) {
            return Err(DisguiseError::BadParameters(format!(
                "N = {n} is not prime"
            )));
        }
        if n < design.v() {
            return Err(DisguiseError::BadParameters(format!(
                "N = {n} must not be less than v = {} (§4.2: 'N should never be less than v')",
                design.v()
            )));
        }
        if !is_primitive_root(g, n) {
            return Err(DisguiseError::BadParameters(format!(
                "g = {g} is not a primitive element of Z_{n}"
            )));
        }
        let group = n - 1;
        let t = t % group;
        let t_inv = inv_mod(t, group).ok_or_else(|| {
            DisguiseError::BadParameters(format!(
                "t = {t} is not invertible mod N-1 = {group}; the exponent map would not be a bijection"
            ))
        })?;
        let dlog = DlogTable::new(g, n);
        Ok(ExpSubstitution {
            design,
            g,
            n,
            t,
            t_inv,
            dlog,
            counters,
        })
    }

    /// Paper-scale demo parameters: the `(13,4,1)` design with `g = 7`,
    /// `N = 13` and `t = 7` (note `gcd(7, 12) = 1`, so the invertible
    /// reading accepts the paper's multiplier unchanged).
    pub fn paper_scale(counters: OpCounters) -> Self {
        ExpSubstitution::new(DifferenceSet::paper_13_4_1(), 7, 13, 7, counters)
            .expect("demo parameters are valid")
    }

    pub fn modulus(&self) -> u64 {
        self.n
    }

    pub fn generator(&self) -> u64 {
        self.g
    }

    pub fn design(&self) -> &DifferenceSet {
        &self.design
    }

    /// The treatment (discrete log) of a key — the `t_αβ` the paper scans
    /// lines for. Exposed for the table/figure reproduction.
    pub fn treatment_of(&self, key: u64) -> Result<u64, DisguiseError> {
        self.counters.bump(|c| &c.dlog_ops);
        self.dlog
            .dlog(key)
            .ok_or(DisguiseError::NotInImage { value: key })
    }
}

impl KeyDisguise for ExpSubstitution {
    fn disguise(&self, key: u64) -> Result<u64, DisguiseError> {
        if key == 0 || key >= self.n {
            return Err(DisguiseError::OutOfDomain {
                key,
                domain: format!("[1, {})", self.n),
            });
        }
        bump_disguise(&self.counters);
        // Find the treatment e with g^e = k (the paper's scan), then emit
        // g^(t·e). Equivalently k^t, but we exercise the dlog to model the
        // legal user's procedure and count it.
        let e = self.treatment_of(key)?;
        let te = ((e as u128 * self.t as u128) % (self.n as u128 - 1)) as u64;
        Ok(pow_mod(self.g, te, self.n))
    }

    fn recover(&self, disguised: u64) -> Result<u64, DisguiseError> {
        if disguised == 0 || disguised >= self.n {
            return Err(DisguiseError::NotInImage { value: disguised });
        }
        bump_recover(&self.counters);
        Ok(pow_mod(disguised, self.t_inv, self.n))
    }

    fn recover_uncounted(&self, disguised: u64) -> Result<u64, DisguiseError> {
        if disguised == 0 || disguised >= self.n {
            return Err(DisguiseError::NotInImage { value: disguised });
        }
        Ok(pow_mod(disguised, self.t_inv, self.n))
    }

    fn order_preserving(&self) -> bool {
        false
    }

    fn domain_size(&self) -> Option<u64> {
        Some(self.n) // keys 1..N-1; 0 invalid but the bound is N
    }

    fn secret_size_bytes(&self) -> usize {
        // {v, k, λ} + base block + t + g + N.
        3 * 8 + self.design.base().len() * 8 + 3 * 8
    }

    fn name(&self) -> &'static str {
        "exponentiation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disguise::testutil::assert_disguise_contract;
    use sks_designs::primes::next_prime;

    fn paper_scale() -> ExpSubstitution {
        ExpSubstitution::paper_scale(OpCounters::new())
    }

    #[test]
    fn pohlig_hellman_equivalence() {
        // g^(t·dlog(k)) must equal k^t.
        let d = paper_scale();
        for k in 1..13u64 {
            assert_eq!(d.disguise(k).unwrap(), pow_mod(k, 7, 13), "k={k}");
        }
    }

    #[test]
    fn contract_over_domain() {
        let d = paper_scale();
        let keys: Vec<u64> = (1..13).collect();
        assert_disguise_contract(&d, &keys);
    }

    #[test]
    fn zero_and_overflow_rejected() {
        let d = paper_scale();
        assert!(matches!(
            d.disguise(0),
            Err(DisguiseError::OutOfDomain { .. })
        ));
        assert!(matches!(
            d.disguise(13),
            Err(DisguiseError::OutOfDomain { .. })
        ));
        assert!(matches!(
            d.recover(0),
            Err(DisguiseError::NotInImage { .. })
        ));
    }

    #[test]
    fn parameter_validation() {
        let ds = DifferenceSet::paper_13_4_1;
        // Composite N.
        assert!(ExpSubstitution::new(ds(), 7, 15, 7, OpCounters::new()).is_err());
        // N < v.
        assert!(ExpSubstitution::new(ds(), 7, 11, 7, OpCounters::new()).is_err());
        // Non-primitive g (3 has order 3 mod 13).
        assert!(ExpSubstitution::new(ds(), 3, 13, 7, OpCounters::new()).is_err());
        // t not coprime to N-1 = 12.
        assert!(ExpSubstitution::new(ds(), 7, 13, 6, OpCounters::new()).is_err());
    }

    #[test]
    fn treatments_match_dlog() {
        let d = paper_scale();
        // 7^1 = 7, so treatment of key 7 is 1.
        assert_eq!(d.treatment_of(7).unwrap(), 1);
        assert_eq!(d.treatment_of(1).unwrap(), 0);
        // 7^2 = 49 = 10 mod 13.
        assert_eq!(d.treatment_of(10).unwrap(), 2);
    }

    #[test]
    fn counts_dlogs_and_disguises() {
        let counters = OpCounters::new();
        let d = ExpSubstitution::paper_scale(counters.clone());
        let _ = d.disguise(5).unwrap();
        let _ = d.recover(5).unwrap();
        let s = counters.snapshot();
        assert_eq!(s.disguise_ops, 1);
        assert_eq!(s.dlog_ops, 1, "disguising pays one discrete log");
        assert_eq!(s.recover_ops, 1);
    }

    #[test]
    fn larger_modulus_with_singer_design() {
        // v = 10303 (Singer q=101); N = next prime >= v.
        let ds = DifferenceSet::singer(101).unwrap();
        let n = next_prime(ds.v());
        let g = sks_designs::primes::primitive_root(n);
        // Pick t coprime to n-1.
        let t = (3..n)
            .find(|&t| sks_designs::arith::coprime(t, n - 1))
            .unwrap();
        let d = ExpSubstitution::new(ds, g, n, t, OpCounters::new()).unwrap();
        let keys: Vec<u64> = (1..n).step_by(131).collect();
        assert_disguise_contract(&d, &keys);
    }
}
