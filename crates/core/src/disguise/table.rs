//! The conversion-table strawman.
//!
//! §4.1 stresses that with design-based substitution, "conversion tables to
//! maintain the correspondence between the actual and the disguised search
//! keys are not required". This type *is* that conversion table — a random
//! permutation held in memory — implemented so experiment E8 can measure the
//! secret-material gap the paper claims (O(k) design parameters vs. O(R)
//! table entries).

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;
use sks_storage::OpCounters;

use super::{bump_disguise, bump_recover, DisguiseError, KeyDisguise};

/// An explicit random-permutation disguise over `[0, n)`.
#[derive(Debug, Clone)]
pub struct TableDisguise {
    forward: Vec<u64>,
    inverse: HashMap<u64, u64>,
    counters: OpCounters,
}

impl TableDisguise {
    /// A uniformly random permutation of `[0, n)`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: u64, counters: OpCounters) -> Self {
        let mut forward: Vec<u64> = (0..n).collect();
        forward.shuffle(rng);
        let inverse = forward
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, k as u64))
            .collect();
        TableDisguise {
            forward,
            inverse,
            counters,
        }
    }

    /// Wraps an explicit mapping (must be a permutation of `[0, len)`).
    pub fn from_permutation(
        forward: Vec<u64>,
        counters: OpCounters,
    ) -> Result<Self, DisguiseError> {
        let n = forward.len() as u64;
        let mut seen = vec![false; forward.len()];
        for &v in &forward {
            if v >= n || seen[v as usize] {
                return Err(DisguiseError::BadParameters(
                    "mapping is not a permutation of [0, len)".into(),
                ));
            }
            seen[v as usize] = true;
        }
        let inverse = forward
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, k as u64))
            .collect();
        Ok(TableDisguise {
            forward,
            inverse,
            counters,
        })
    }
}

impl KeyDisguise for TableDisguise {
    fn disguise(&self, key: u64) -> Result<u64, DisguiseError> {
        let Some(&v) = self.forward.get(key as usize) else {
            return Err(DisguiseError::OutOfDomain {
                key,
                domain: format!("[0, {})", self.forward.len()),
            });
        };
        bump_disguise(&self.counters);
        Ok(v)
    }

    fn recover(&self, disguised: u64) -> Result<u64, DisguiseError> {
        bump_recover(&self.counters);
        self.recover_uncounted(disguised)
    }

    fn recover_uncounted(&self, disguised: u64) -> Result<u64, DisguiseError> {
        self.inverse
            .get(&disguised)
            .copied()
            .ok_or(DisguiseError::NotInImage { value: disguised })
    }

    fn order_preserving(&self) -> bool {
        false
    }

    fn domain_size(&self) -> Option<u64> {
        Some(self.forward.len() as u64)
    }

    fn secret_size_bytes(&self) -> usize {
        // The whole table is secret: one (key, image) pair per entry.
        self.forward.len() * 16
    }

    fn name(&self) -> &'static str {
        "conversion-table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disguise::testutil::assert_disguise_contract;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_table_contract() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = TableDisguise::random(&mut rng, 500, OpCounters::new());
        let keys: Vec<u64> = (0..500).collect();
        assert_disguise_contract(&d, &keys);
    }

    #[test]
    fn explicit_permutation() {
        let d = TableDisguise::from_permutation(vec![2, 0, 1], OpCounters::new()).unwrap();
        assert_eq!(d.disguise(0).unwrap(), 2);
        assert_eq!(d.recover(2).unwrap(), 0);
        assert!(TableDisguise::from_permutation(vec![0, 0, 1], OpCounters::new()).is_err());
        assert!(TableDisguise::from_permutation(vec![0, 3], OpCounters::new()).is_err());
    }

    #[test]
    fn secret_size_scales_with_records_not_design() {
        let mut rng = StdRng::seed_from_u64(5);
        let small = TableDisguise::random(&mut rng, 100, OpCounters::new());
        let big = TableDisguise::random(&mut rng, 10_000, OpCounters::new());
        assert_eq!(small.secret_size_bytes(), 1600);
        assert_eq!(big.secret_size_bytes(), 160_000);
        // This is the contrast with the oval scheme, whose secret stays O(k).
    }

    #[test]
    fn domain_errors() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = TableDisguise::random(&mut rng, 10, OpCounters::new());
        assert!(matches!(
            d.disguise(10),
            Err(DisguiseError::OutOfDomain { .. })
        ));
        assert!(matches!(
            d.recover(10),
            Err(DisguiseError::NotInImage { .. })
        ));
    }
}
