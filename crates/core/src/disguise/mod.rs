//! Key disguises — the `f` of §3 and the substitution schemes of §4.
//!
//! A [`KeyDisguise`] is an injective map on search keys applied just before
//! the disk-write stage, "after the correct tree pointer and data pointer
//! have been obtained" (§4.1). Unlike encryption, a disguise leaves the key
//! field one machine word wide and costs integer arithmetic instead of
//! cipher rounds; unlike a conversion table, a design-based disguise needs
//! only the design parameters as secret material.
//!
//! | impl | paper section | order-preserving | secret |
//! |------|--------------|------------------|--------|
//! | [`IdentityDisguise`] | baseline | yes | none |
//! | [`OvalSubstitution`] | §4.1 | no | design + `t` |
//! | [`ExpSubstitution`] | §4.2 (invertible reading) | no | design + `g`, `N`, `t` |
//! | [`PaperExpSubstitution`] | §4.2 (literal worked example) | no | design + `g`, `N`, `t` |
//! | [`SumSubstitution`] | §4.3 | **yes** | design + `w` |
//! | [`TableDisguise`] | §4.1's strawman | no | whole table |

mod exp;
mod exp_paper;
mod oval;
mod sum;
mod table;

pub use exp::ExpSubstitution;
pub use exp_paper::PaperExpSubstitution;
pub use oval::OvalSubstitution;
pub use sum::SumSubstitution;
pub use table::TableDisguise;

use sks_storage::OpCounters;

/// Errors from disguise application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisguiseError {
    /// Key outside the disguise's domain (e.g. `k ≥ v`, or `k = 0` for the
    /// exponentiation scheme).
    OutOfDomain { key: u64, domain: String },
    /// A disguised value could not be inverted (corrupt page or wrong
    /// secret parameters).
    NotInImage { value: u64 },
    /// Parameters are internally inconsistent.
    BadParameters(String),
}

impl std::fmt::Display for DisguiseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DisguiseError::OutOfDomain { key, domain } => {
                write!(f, "key {key} outside disguise domain {domain}")
            }
            DisguiseError::NotInImage { value } => {
                write!(
                    f,
                    "value {value} is not a disguised key under these parameters"
                )
            }
            DisguiseError::BadParameters(msg) => write!(f, "bad disguise parameters: {msg}"),
        }
    }
}

impl std::error::Error for DisguiseError {}

/// An invertible search-key disguise.
pub trait KeyDisguise: Send + Sync {
    /// `f(k)`: the value written to disk in the key field.
    fn disguise(&self, key: u64) -> Result<u64, DisguiseError>;

    /// `f⁻¹(k̂)`: recovers the original key.
    fn recover(&self, disguised: u64) -> Result<u64, DisguiseError>;

    /// [`KeyDisguise::recover`] without touching the operation counters.
    /// The plaintext node cache uses this to materialise entries: cache
    /// maintenance is physical work outside the paper's cost model, which
    /// charges only the probes themselves. Counting disguises must
    /// override this with a silent computation.
    fn recover_uncounted(&self, disguised: u64) -> Result<u64, DisguiseError> {
        self.recover(disguised)
    }

    /// Whether `a < b ⇒ f(a) < f(b)` — the property that keeps the B-tree
    /// shape identical to the plaintext tree (§4.3) and allows direct
    /// comparisons against on-disk values.
    fn order_preserving(&self) -> bool;

    /// Largest valid key plus one, if the domain is bounded.
    fn domain_size(&self) -> Option<u64>;

    /// Bytes of secret material a legal user must carry (the §4.1/§6
    /// "small amount of information that needs to be kept secret").
    fn secret_size_bytes(&self) -> usize;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}

/// The identity disguise: `f(k) = k`. Baseline for all experiments.
#[derive(Debug, Clone, Default)]
pub struct IdentityDisguise;

impl KeyDisguise for IdentityDisguise {
    fn disguise(&self, key: u64) -> Result<u64, DisguiseError> {
        Ok(key)
    }

    fn recover(&self, disguised: u64) -> Result<u64, DisguiseError> {
        Ok(disguised)
    }

    fn order_preserving(&self) -> bool {
        true
    }

    fn domain_size(&self) -> Option<u64> {
        None
    }

    fn secret_size_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Shared helper: bump the disguise/recover counters consistently.
pub(crate) fn bump_disguise(counters: &OpCounters) {
    counters.bump(|c| &c.disguise_ops);
}

pub(crate) fn bump_recover(counters: &OpCounters) {
    counters.bump(|c| &c.recover_ops);
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::KeyDisguise;

    /// Behavioural contract every disguise must satisfy over a key sample.
    pub fn assert_disguise_contract<D: KeyDisguise>(d: &D, keys: &[u64]) {
        let mut images = std::collections::HashSet::new();
        for &k in keys {
            let dk = d
                .disguise(k)
                .unwrap_or_else(|e| panic!("{}: disguise({k}): {e}", d.name()));
            assert!(
                images.insert(dk),
                "{}: disguise is not injective at {k} -> {dk}",
                d.name()
            );
            let back = d
                .recover(dk)
                .unwrap_or_else(|e| panic!("{}: recover({dk}): {e}", d.name()));
            assert_eq!(back, k, "{}: roundtrip failed for {k}", d.name());
        }
        if d.order_preserving() {
            let mut sorted = keys.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let disguised: Vec<u64> = sorted.iter().map(|&k| d.disguise(k).unwrap()).collect();
            assert!(
                disguised.windows(2).all(|w| w[0] < w[1]),
                "{}: claims order preservation but violates it",
                d.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_contract() {
        let d = IdentityDisguise;
        testutil::assert_disguise_contract(&d, &[0, 1, 5, 1000, u64::MAX]);
        assert!(d.order_preserving());
        assert_eq!(d.secret_size_bytes(), 0);
        assert_eq!(d.domain_size(), None);
    }
}
