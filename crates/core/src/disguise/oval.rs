//! §4.1 — substitution using treatments on ovals.
//!
//! Search keys are identified with treatments of a `(v, k, λ)` difference-set
//! design; the line→oval map multiplies treatments by `t` with
//! `gcd(t, v) = 1`, so the substitution is `k̂ = k·t (mod v)` and its inverse
//! is multiplication by `t⁻¹ (mod v)`. With the paper's `(13,4,1)` design and
//! `t = 7`: "the search key 1 is substituted by 7, 2 by 1, 3 by 8, 4 by 2
//! and so on".
//!
//! The secret material is only `{v, k, λ}`, the first line `L₀`, and the
//! multiplier — no conversion tables (§4.1's headline advantage).

use sks_designs::arith::{inv_mod, mul_mod};
use sks_designs::diffset::DifferenceSet;
use sks_storage::OpCounters;

use super::{bump_disguise, bump_recover, DisguiseError, KeyDisguise};

/// The oval substitution `k̂ = k·t mod v`.
#[derive(Debug, Clone)]
pub struct OvalSubstitution {
    design: DifferenceSet,
    t: u64,
    t_inv: u64,
    counters: OpCounters,
}

impl OvalSubstitution {
    /// Builds the disguise from a design and multiplier. `t` must be a unit
    /// of `Z_v` (otherwise lines do not map to ovals bijectively).
    pub fn new(design: DifferenceSet, t: u64, counters: OpCounters) -> Result<Self, DisguiseError> {
        let v = design.v();
        let t = t % v;
        let t_inv = inv_mod(t, v).ok_or_else(|| {
            DisguiseError::BadParameters(format!("t = {t} is not invertible mod v = {v}"))
        })?;
        Ok(OvalSubstitution {
            design,
            t,
            t_inv,
            counters,
        })
    }

    /// The paper's running example: `(13,4,1)`, `D = {0,1,3,9}`, `t = 7`.
    pub fn paper_example(counters: OpCounters) -> Self {
        OvalSubstitution::new(DifferenceSet::paper_13_4_1(), 7, counters)
            .expect("paper parameters are valid")
    }

    pub fn design(&self) -> &DifferenceSet {
        &self.design
    }

    pub fn multiplier(&self) -> u64 {
        self.t
    }

    /// The oval image of line `L_y` in base order (a row of the right-hand
    /// table on p. 53).
    pub fn oval(&self, y: u64) -> Vec<u64> {
        self.design.oval_in_base_order(y, self.t)
    }
}

impl KeyDisguise for OvalSubstitution {
    fn disguise(&self, key: u64) -> Result<u64, DisguiseError> {
        let v = self.design.v();
        if key >= v {
            return Err(DisguiseError::OutOfDomain {
                key,
                domain: format!("[0, {v})"),
            });
        }
        bump_disguise(&self.counters);
        Ok(mul_mod(key, self.t, v))
    }

    fn recover(&self, disguised: u64) -> Result<u64, DisguiseError> {
        let v = self.design.v();
        if disguised >= v {
            return Err(DisguiseError::NotInImage { value: disguised });
        }
        bump_recover(&self.counters);
        Ok(mul_mod(disguised, self.t_inv, v))
    }

    fn recover_uncounted(&self, disguised: u64) -> Result<u64, DisguiseError> {
        let v = self.design.v();
        if disguised >= v {
            return Err(DisguiseError::NotInImage { value: disguised });
        }
        Ok(mul_mod(disguised, self.t_inv, v))
    }

    fn order_preserving(&self) -> bool {
        false
    }

    fn domain_size(&self) -> Option<u64> {
        Some(self.design.v())
    }

    fn secret_size_bytes(&self) -> usize {
        // {v, k, λ} + the k base-block treatments of L₀ + t.
        3 * 8 + self.design.base().len() * 8 + 8
    }

    fn name(&self) -> &'static str {
        "oval"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disguise::testutil::assert_disguise_contract;
    use proptest::prelude::*;

    fn paper() -> OvalSubstitution {
        OvalSubstitution::paper_example(OpCounters::new())
    }

    #[test]
    fn paper_substitutions_match_section_4_1() {
        // "the search key 1 is substituted by 7, 2 by 1, 3 by 8, 4 by 2".
        let d = paper();
        assert_eq!(d.disguise(1).unwrap(), 7);
        assert_eq!(d.disguise(2).unwrap(), 1);
        assert_eq!(d.disguise(3).unwrap(), 8);
        assert_eq!(d.disguise(4).unwrap(), 2);
        assert_eq!(d.disguise(0).unwrap(), 0);
    }

    #[test]
    fn contract_over_full_domain() {
        let d = paper();
        let keys: Vec<u64> = (0..13).collect();
        assert_disguise_contract(&d, &keys);
    }

    #[test]
    fn domain_enforced() {
        let d = paper();
        assert!(matches!(
            d.disguise(13),
            Err(DisguiseError::OutOfDomain { .. })
        ));
        assert!(matches!(
            d.recover(13),
            Err(DisguiseError::NotInImage { .. })
        ));
    }

    #[test]
    fn non_coprime_multiplier_rejected() {
        let err = OvalSubstitution::new(DifferenceSet::paper_13_4_1(), 13, OpCounters::new())
            .unwrap_err();
        assert!(matches!(err, DisguiseError::BadParameters(_)));
    }

    #[test]
    fn counts_operations() {
        let counters = OpCounters::new();
        let d = OvalSubstitution::paper_example(counters.clone());
        let _ = d.disguise(5).unwrap();
        let _ = d.disguise(6).unwrap();
        let _ = d.recover(7).unwrap();
        let s = counters.snapshot();
        assert_eq!((s.disguise_ops, s.recover_ops), (2, 1));
        assert_eq!(s.total_decrypts(), 0, "disguising is not decryption");
    }

    #[test]
    fn not_order_preserving_scrambles_shape() {
        let d = paper();
        let disguised: Vec<u64> = (0..13).map(|k| d.disguise(k).unwrap()).collect();
        let mut sorted = disguised.clone();
        sorted.sort_unstable();
        assert_ne!(disguised, sorted, "oval substitution must scramble order");
    }

    #[test]
    fn oval_rows_match_design() {
        let d = paper();
        assert_eq!(d.oval(0), vec![0, 7, 8, 11]);
        assert_eq!(d.oval(1), vec![7, 1, 2, 5]);
    }

    #[test]
    fn singer_scale_roundtrip() {
        let ds = DifferenceSet::singer(101).unwrap(); // v = 10303
        let d = OvalSubstitution::new(ds, 4999, OpCounters::new()).unwrap();
        let keys: Vec<u64> = (0..10303).step_by(97).collect();
        assert_disguise_contract(&d, &keys);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random_multipliers(t in 1u64..13, k in 0u64..13) {
            prop_assume!(sks_designs::arith::coprime(t, 13));
            let d = OvalSubstitution::new(
                DifferenceSet::paper_13_4_1(), t, OpCounters::new()
            ).unwrap();
            prop_assert_eq!(d.recover(d.disguise(k).unwrap()).unwrap(), k);
        }
    }
}
