//! The Bayer–Metzger baseline with §3's *binary search-and-decrypt*.
//!
//! Every triplet `(kᵢ, aᵢ, pᵢ)` is one cryptogram under the page key
//! `K_{P} = PK(K_E, P_id)` (so identical triplets in different nodes yield
//! different cryptograms), and navigating a node costs up to `log₂ n`
//! triplet decryptions. Reorganisation (split/merge) must decrypt and
//! re-encrypt every moved triplet *including its never-changing search key*
//! — the overhead the paper's scheme removes.

use std::cell::RefCell;

use sks_btree_core::{CachedNode, CodecError, Node, NodeCodec, Probe, RecordPtr, NODE_HEADER_LEN};
use sks_crypto::cipher::BlockCipher64;
use sks_crypto::pagekey::PageKeyScheme;
use sks_storage::{BlockId, OpCounters, PageReader, PageWriter};

const TAG: u8 = 0x42; // 'B'

/// Triplet cryptogram width: `k(8) ‖ a(8) ‖ p(4) ‖ check(4)` = 24 bytes
/// (three cipher blocks, CBC, zero IV — uniqueness comes from the page key).
const SEALED_TRIPLET_LEN: usize = 24;

/// The Bayer–Metzger per-triplet codec.
pub struct BayerMetzgerCodec {
    pages: PageKeyScheme,
    counters: OpCounters,
}

impl BayerMetzgerCodec {
    pub fn new(pages: PageKeyScheme, counters: OpCounters) -> Self {
        BayerMetzgerCodec { pages, counters }
    }

    fn seal_triplet(
        &self,
        cipher: &dyn BlockCipher64,
        k: u64,
        a: u64,
        p: u32,
        block: u32,
    ) -> [u8; SEALED_TRIPLET_LEN] {
        let mut pt = [0u8; SEALED_TRIPLET_LEN];
        pt[0..8].copy_from_slice(&k.to_be_bytes());
        pt[8..16].copy_from_slice(&a.to_be_bytes());
        pt[16..20].copy_from_slice(&p.to_be_bytes());
        pt[20..24].copy_from_slice(&block.to_be_bytes());
        let mut out = [0u8; SEALED_TRIPLET_LEN];
        let mut prev = 0u64;
        for i in 0..3 {
            let b = u64::from_be_bytes(pt[i * 8..(i + 1) * 8].try_into().expect("fixed"));
            let c = cipher.encrypt_block(b ^ prev);
            out[i * 8..(i + 1) * 8].copy_from_slice(&c.to_be_bytes());
            prev = c;
        }
        out
    }

    fn unseal_triplet(
        &self,
        cipher: &dyn BlockCipher64,
        ct: &[u8],
        block: u32,
    ) -> Result<(u64, u64, u32), CodecError> {
        if ct.len() != SEALED_TRIPLET_LEN {
            return Err(CodecError::Corrupt(format!(
                "triplet cryptogram must be {SEALED_TRIPLET_LEN} bytes, got {}",
                ct.len()
            )));
        }
        let mut pt = [0u8; SEALED_TRIPLET_LEN];
        let mut prev = 0u64;
        for i in 0..3 {
            let c = u64::from_be_bytes(ct[i * 8..(i + 1) * 8].try_into().expect("fixed"));
            let b = cipher.decrypt_block(c) ^ prev;
            pt[i * 8..(i + 1) * 8].copy_from_slice(&b.to_be_bytes());
            prev = c;
        }
        let check = u32::from_be_bytes(pt[20..24].try_into().expect("fixed"));
        if check != block {
            return Err(CodecError::BindingMismatch {
                expected: block,
                got: check,
            });
        }
        let k = u64::from_be_bytes(pt[0..8].try_into().expect("fixed"));
        let a = u64::from_be_bytes(pt[8..16].try_into().expect("fixed"));
        let p = u32::from_be_bytes(pt[16..20].try_into().expect("fixed"));
        Ok((k, a, p))
    }

    /// Offset of sealed triplet `i` (slot 0 = the leftmost-pointer seal for
    /// internal nodes; keyed triplets follow).
    fn triplet_offset(is_leaf: bool, i: usize) -> usize {
        let base = NODE_HEADER_LEN + if is_leaf { 0 } else { SEALED_TRIPLET_LEN };
        base + i * SEALED_TRIPLET_LEN
    }
}

impl NodeCodec for BayerMetzgerCodec {
    fn encode(&self, node: &Node, page: &mut [u8]) -> Result<(), CodecError> {
        node.check_shape().map_err(CodecError::Corrupt)?;
        let cipher = self.pages.page_cipher(node.id.as_u64());
        let mut w = PageWriter::new(page);
        sks_btree_core::codec::write_header(&mut w, TAG, node)?;
        let b = node.id.0;
        if !node.is_leaf() {
            // The lone leftmost pointer, sealed without a key.
            self.counters.bump(|c| &c.ptr_encrypts);
            let ct = self.seal_triplet(cipher.as_ref(), 0, 0, node.children[0].0, b);
            w.put_bytes(&ct)?;
        }
        for i in 0..node.n() {
            let p = if node.is_leaf() {
                0
            } else {
                node.children[i + 1].0
            };
            // The whole triplet — key included — is one cryptogram; this is
            // the key re-encipherment §3 complains about.
            self.counters.bump(|c| &c.key_encrypts);
            let ct = self.seal_triplet(cipher.as_ref(), node.keys[i], node.data_ptrs[i].0, p, b);
            w.put_bytes(&ct)?;
        }
        w.pad_remaining();
        Ok(())
    }

    fn decode(&self, id: BlockId, page: &[u8]) -> Result<Node, CodecError> {
        let cipher = self.pages.page_cipher(id.as_u64());
        let mut r = PageReader::new(page);
        let (is_leaf, n) = sks_btree_core::codec::read_header(&mut r, TAG, id)?;
        let mut keys = Vec::with_capacity(n);
        let mut data_ptrs = Vec::with_capacity(n);
        let mut children = Vec::new();
        if !is_leaf {
            let ct = r.get_bytes(SEALED_TRIPLET_LEN)?;
            self.counters.bump(|c| &c.ptr_decrypts);
            let (_, _, p0) = self.unseal_triplet(cipher.as_ref(), ct, id.0)?;
            children.push(BlockId(p0));
        }
        for _ in 0..n {
            let ct = r.get_bytes(SEALED_TRIPLET_LEN)?;
            self.counters.bump(|c| &c.key_decrypts);
            let (k, a, p) = self.unseal_triplet(cipher.as_ref(), ct, id.0)?;
            keys.push(k);
            data_ptrs.push(RecordPtr(a));
            if !is_leaf {
                children.push(BlockId(p));
            }
        }
        let node = Node {
            id,
            keys,
            data_ptrs,
            children,
        };
        node.check_shape().map_err(CodecError::Corrupt)?;
        Ok(node)
    }

    fn probe(&self, id: BlockId, page: &[u8], key: u64) -> Result<Probe, CodecError> {
        let cipher = self.pages.page_cipher(id.as_u64());
        let mut r = PageReader::new(page);
        let (is_leaf, n) = sks_btree_core::codec::read_header(&mut r, TAG, id)?;

        // Binary search-and-decrypt with memoisation: each triplet is
        // decrypted at most once per probe.
        let memo: RefCell<Vec<Option<(u64, u64, u32)>>> = RefCell::new(vec![None; n]);
        let triplet_at = |i: usize| -> Result<(u64, u64, u32), CodecError> {
            if let Some(t) = memo.borrow()[i] {
                return Ok(t);
            }
            let mut rr = PageReader::new(page);
            rr.seek(Self::triplet_offset(is_leaf, i))?;
            let ct = rr.get_bytes(SEALED_TRIPLET_LEN)?;
            self.counters.bump(|c| &c.key_decrypts);
            let t = self.unseal_triplet(cipher.as_ref(), ct, id.0)?;
            memo.borrow_mut()[i] = Some(t);
            Ok(t)
        };

        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            self.counters.bump(|c| &c.key_compares);
            let (k, a, _) = triplet_at(mid)?;
            match k.cmp(&key) {
                std::cmp::Ordering::Equal => {
                    return Ok(Probe::Found {
                        data_ptr: RecordPtr(a),
                    })
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        if is_leaf {
            return Ok(Probe::Missing);
        }
        // Child `lo`: p₀ from the leftmost seal, child i+1 from triplet i.
        if lo == 0 {
            let mut rr = PageReader::new(page);
            rr.seek(NODE_HEADER_LEN)?;
            let ct = rr.get_bytes(SEALED_TRIPLET_LEN)?;
            self.counters.bump(|c| &c.ptr_decrypts);
            let (_, _, p0) = self.unseal_triplet(cipher.as_ref(), ct, id.0)?;
            Ok(Probe::Descend { child: BlockId(p0) })
        } else {
            let (_, _, p) = triplet_at(lo - 1)?;
            Ok(Probe::Descend { child: BlockId(p) })
        }
    }

    fn max_keys(&self, page_size: usize) -> usize {
        let fixed = NODE_HEADER_LEN + SEALED_TRIPLET_LEN; // header + leftmost
        if page_size <= fixed {
            return 0;
        }
        (page_size - fixed) / SEALED_TRIPLET_LEN
    }

    fn name(&self) -> &'static str {
        "bayer-metzger"
    }

    fn supports_node_cache(&self) -> bool {
        true
    }

    fn decode_for_cache(&self, id: BlockId, page: &[u8]) -> Result<CachedNode, CodecError> {
        // `decode`, counter-silent. No raw-key sidecar: the probe replay
        // needs only the plaintext keys (the search compares decrypted
        // keys, and their positions are plaintext order).
        let cipher = self.pages.page_cipher(id.as_u64());
        let mut r = PageReader::new(page);
        let (is_leaf, n) = sks_btree_core::codec::read_header(&mut r, TAG, id)?;
        let mut keys = Vec::with_capacity(n);
        let mut data_ptrs = Vec::with_capacity(n);
        let mut children = Vec::new();
        if !is_leaf {
            let ct = r.get_bytes(SEALED_TRIPLET_LEN)?;
            let (_, _, p0) = self.unseal_triplet(cipher.as_ref(), ct, id.0)?;
            children.push(BlockId(p0));
        }
        for _ in 0..n {
            let ct = r.get_bytes(SEALED_TRIPLET_LEN)?;
            let (k, a, p) = self.unseal_triplet(cipher.as_ref(), ct, id.0)?;
            keys.push(k);
            data_ptrs.push(RecordPtr(a));
            if !is_leaf {
                children.push(BlockId(p));
            }
        }
        let node = Node {
            id,
            keys,
            data_ptrs,
            children,
        };
        node.check_shape().map_err(CodecError::Corrupt)?;
        Ok(CachedNode {
            node,
            raw_keys: Vec::new(),
            page_len: page.len(),
        })
    }

    fn probe_cached(&self, entry: &CachedNode, key: u64) -> Result<Probe, CodecError> {
        let node = &entry.node;
        let n = node.n();
        // The probe's memoised binary search-and-decrypt: each triplet
        // charged one key decryption the first time it is touched.
        let mut probed = vec![false; n];
        let mut charge = |i: usize, counters: &OpCounters| {
            if !probed[i] {
                probed[i] = true;
                counters.bump(|c| &c.key_decrypts);
            }
        };
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            self.counters.bump(|c| &c.key_compares);
            charge(mid, &self.counters);
            match node.keys[mid].cmp(&key) {
                std::cmp::Ordering::Equal => {
                    return Ok(Probe::Found {
                        data_ptr: node.data_ptrs[mid],
                    })
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        if node.is_leaf() {
            return Ok(Probe::Missing);
        }
        if lo == 0 {
            self.counters.bump(|c| &c.ptr_decrypts);
        } else {
            charge(lo - 1, &self.counters);
        }
        Ok(Probe::Descend {
            child: node.children[lo],
        })
    }

    fn decode_cached(&self, entry: &CachedNode) -> Result<Node, CodecError> {
        // A raw decode decrypts every keyed triplet (one key_decrypt each)
        // plus the keyless leftmost-pointer seal on internal nodes.
        let node = &entry.node;
        if !node.is_leaf() {
            self.counters.bump(|c| &c.ptr_decrypts);
        }
        self.counters.bump_by(|c| &c.key_decrypts, node.n() as u64);
        Ok(node.clone())
    }

    fn supports_write_behind(&self) -> bool {
        true
    }

    fn encode_to_cache(&self, node: &Node, page_len: usize) -> Result<CachedNode, CodecError> {
        // `encode`'s exact validation and counter profile with the CBC
        // work skipped: shape check, fit check, one ptr_encrypts for the
        // leftmost-pointer seal and one key_encrypts per keyed triplet.
        // No sidecar is needed — the eventual seal re-derives every
        // cryptogram from the plaintext node.
        node.check_shape().map_err(CodecError::Corrupt)?;
        let end = Self::triplet_offset(node.is_leaf(), node.n());
        if end > page_len {
            return Err(CodecError::Overflow(sks_storage::PageOverflow {
                offset: page_len,
                requested: end - page_len,
                page_len,
            }));
        }
        if !node.is_leaf() {
            self.counters.bump(|c| &c.ptr_encrypts);
        }
        self.counters.bump_by(|c| &c.key_encrypts, node.n() as u64);
        Ok(CachedNode {
            node: node.clone(),
            raw_keys: Vec::new(),
            page_len,
        })
    }

    fn encode_from_cache(&self, entry: &CachedNode, page: &mut [u8]) -> Result<(), CodecError> {
        // Counter-silent physical seal producing `encode`'s exact page
        // bytes (the cryptograms are deterministic under the page key).
        let node = &entry.node;
        let cipher = self.pages.page_cipher(node.id.as_u64());
        let mut w = PageWriter::new(page);
        sks_btree_core::codec::write_header(&mut w, TAG, node)?;
        let b = node.id.0;
        if !node.is_leaf() {
            let ct = self.seal_triplet(cipher.as_ref(), 0, 0, node.children[0].0, b);
            w.put_bytes(&ct)?;
        }
        for i in 0..node.n() {
            let p = if node.is_leaf() {
                0
            } else {
                node.children[i + 1].0
            };
            let ct = self.seal_triplet(cipher.as_ref(), node.keys[i], node.data_ptrs[i].0, p, b);
            w.put_bytes(&ct)?;
        }
        w.pad_remaining();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_crypto::pagekey::PageCipherKind;

    fn codec() -> (BayerMetzgerCodec, OpCounters) {
        let counters = OpCounters::new();
        (
            BayerMetzgerCodec::new(
                PageKeyScheme::new(0xDEAD_BEEF_F00D_CAFE, PageCipherKind::Des),
                counters.clone(),
            ),
            counters,
        )
    }

    fn sample_internal() -> Node {
        Node {
            id: BlockId(7),
            keys: vec![10, 20, 30, 40, 50],
            data_ptrs: (1..=5).map(RecordPtr).collect(),
            children: (11..=16).map(BlockId).collect(),
        }
    }

    #[test]
    fn roundtrip() {
        let (codec, _) = codec();
        let node = sample_internal();
        let mut page = vec![0u8; 512];
        codec.encode(&node, &mut page).unwrap();
        assert_eq!(codec.decode(BlockId(7), &page).unwrap(), node);
    }

    #[test]
    fn keys_are_not_visible_on_disk() {
        let (codec, _) = codec();
        let node = sample_internal();
        let mut page = vec![0u8; 512];
        codec.encode(&node, &mut page).unwrap();
        // No plaintext key value may appear anywhere in the page body.
        for &k in &node.keys {
            let needle = k.to_be_bytes();
            let hits = page.windows(8).filter(|w| *w == needle).count();
            assert_eq!(hits, 0, "plaintext key {k} leaked to the page");
        }
    }

    #[test]
    fn probe_costs_log2_decryptions() {
        let (codec, counters) = codec();
        let node = sample_internal(); // n = 5
        let mut page = vec![0u8; 512];
        codec.encode(&node, &mut page).unwrap();
        counters.reset();
        let p = codec.probe(BlockId(7), &page, 30).unwrap();
        assert_eq!(
            p,
            Probe::Found {
                data_ptr: RecordPtr(3)
            }
        );
        let s = counters.snapshot();
        // Midpoint found immediately: exactly 1 decryption here; worst case
        // checked below.
        assert!(s.key_decrypts >= 1);

        counters.reset();
        let p = codec.probe(BlockId(7), &page, 15).unwrap();
        assert_eq!(p, Probe::Descend { child: BlockId(12) });
        let s = counters.snapshot();
        assert!(
            s.key_decrypts as f64 <= (5f64).log2().ceil() + 1.0,
            "binary search-and-decrypt must stay ~log2(n): {}",
            s.key_decrypts
        );
    }

    #[test]
    fn memoisation_avoids_double_decrypting_a_triplet() {
        let (codec, counters) = codec();
        let node = sample_internal();
        let mut page = vec![0u8; 512];
        codec.encode(&node, &mut page).unwrap();
        counters.reset();
        // Descending between keys 20 and 30 needs triplet 1 both as a probe
        // and as the pointer source; it must be decrypted once.
        let p = codec.probe(BlockId(7), &page, 25).unwrap();
        assert_eq!(p, Probe::Descend { child: BlockId(13) });
        let s = counters.snapshot();
        assert!(
            s.key_decrypts <= 3,
            "memoised probe decrypted {}",
            s.key_decrypts
        );
    }

    #[test]
    fn identical_triplets_different_blocks_different_cryptograms() {
        // The page-key property of §2.
        let (codec, _) = codec();
        let mut a = Node::leaf(BlockId(1));
        a.keys = vec![42];
        a.data_ptrs = vec![RecordPtr(7)];
        let mut b = a.clone();
        b.id = BlockId(2);
        let mut pa = vec![0u8; 128];
        let mut pb = vec![0u8; 128];
        codec.encode(&a, &mut pa).unwrap();
        codec.encode(&b, &mut pb).unwrap();
        assert_ne!(
            pa[NODE_HEADER_LEN..NODE_HEADER_LEN + SEALED_TRIPLET_LEN],
            pb[NODE_HEADER_LEN..NODE_HEADER_LEN + SEALED_TRIPLET_LEN],
            "same triplet in different blocks must differ on disk"
        );
    }

    #[test]
    fn encode_counts_key_encryptions() {
        // §3: every triplet moved = one key re-encipherment. The counter is
        // how experiment E4 measures reorganisation overhead.
        let (codec, counters) = codec();
        let node = sample_internal();
        let mut page = vec![0u8; 512];
        codec.encode(&node, &mut page).unwrap();
        let s = counters.snapshot();
        assert_eq!(s.key_encrypts, 5, "one per triplet");
        assert_eq!(s.ptr_encrypts, 1, "the lone leftmost pointer");
    }

    #[test]
    fn wrong_page_key_detected() {
        let (codec, _) = codec();
        let other = BayerMetzgerCodec::new(
            PageKeyScheme::new(0x1111, PageCipherKind::Des),
            OpCounters::new(),
        );
        let node = sample_internal();
        let mut page = vec![0u8; 512];
        codec.encode(&node, &mut page).unwrap();
        assert!(other.decode(BlockId(7), &page).is_err());
    }

    #[test]
    fn relocated_page_detected() {
        let (codec, _) = codec();
        let node = sample_internal();
        let mut page = vec![0u8; 512];
        codec.encode(&node, &mut page).unwrap();
        page[4..8].copy_from_slice(&9u32.to_be_bytes());
        assert!(codec.decode(BlockId(9), &page).is_err());
    }

    #[test]
    fn max_keys_consistent_with_encode() {
        let (codec, _) = codec();
        for page_size in [128usize, 256, 512] {
            let m = codec.max_keys(page_size);
            let node = Node {
                id: BlockId(1),
                keys: (0..m as u64).collect(),
                data_ptrs: (0..m as u64).map(RecordPtr).collect(),
                children: (0..=m as u32).map(BlockId).collect(),
            };
            let mut page = vec![0u8; page_size];
            codec.encode(&node, &mut page).unwrap();
        }
    }
}
