//! Node-block encipherment codecs — §3 and §5 of the paper.
//!
//! Four on-disk formats, all implementing
//! [`NodeCodec`](sks_btree_core::NodeCodec):
//!
//! * [`SubstitutionCodec`] — **the paper's format**: per triplet,
//!   `f(k), E(b ‖ a ‖ p)` — disguised key in plaintext, pointers sealed with
//!   the block number bound inside. One pointer decryption per node visit.
//! * [`BayerMetzgerCodec`] — the 1976 baseline refined with §3's "binary
//!   search-and-decrypt": each whole triplet `(k, a, p)` is one cryptogram
//!   under the page key; search decrypts `~log₂ n` triplets per node.
//! * [`FullPageCodec`] — the plain Bayer–Metzger page scheme: the entire
//!   node block is one CBC cryptogram under the page key; any access
//!   decrypts the whole page.
//! * `PlainCodec` (re-exported from `sks-btree-core`) — no cryptography.
//!
//! Pointer cryptograms go through a pluggable [`TripletSealer`] (DES, Speck
//! or secret-parameter RSA — §5 explicitly leaves the cipher open), which is
//! how experiment E7 swaps ciphers and E3 measures RSA-sized fields.

mod bayer_metzger;
mod fullpage;
mod substitution;

pub use bayer_metzger::BayerMetzgerCodec;
pub use fullpage::FullPageCodec;
pub use substitution::SubstitutionCodec;

use sks_btree_core::CodecError;
use sks_crypto::cipher::BlockCipher64;
use sks_crypto::des::Des;
use sks_crypto::rsa::RsaKey;
use sks_crypto::speck::Speck64;

/// Fixed pointer-seal payload: `b(4) ‖ a(8) ‖ p(4)` = 16 bytes.
pub const SEAL_PAYLOAD_LEN: usize = 16;

/// Seals/unseals 16-byte triplet-pointer payloads into fixed-width
/// cryptograms.
pub trait TripletSealer: Send + Sync {
    /// Cryptogram width in bytes.
    fn sealed_len(&self) -> usize;

    fn seal(&self, payload: &[u8; SEAL_PAYLOAD_LEN]) -> Vec<u8>;

    fn unseal(&self, ct: &[u8]) -> Result<[u8; SEAL_PAYLOAD_LEN], CodecError>;

    fn name(&self) -> &'static str;
}

/// Deterministic two-block CBC (zero IV) under a 64-bit block cipher. The
/// block number inside the payload provides cross-block cryptogram
/// uniqueness, mirroring the paper's `E(b ‖ a ‖ p)`.
#[derive(Clone)]
pub struct BlockCipherSealer<C> {
    cipher: C,
    name: &'static str,
}

impl BlockCipherSealer<Des> {
    pub fn des(key: u64) -> Self {
        BlockCipherSealer {
            cipher: Des::new(key),
            name: "des",
        }
    }
}

impl BlockCipherSealer<Speck64> {
    pub fn speck(key: u128) -> Self {
        BlockCipherSealer {
            cipher: Speck64::from_u128(key),
            name: "speck",
        }
    }
}

impl<C: BlockCipher64 + Send + Sync> TripletSealer for BlockCipherSealer<C> {
    fn sealed_len(&self) -> usize {
        SEAL_PAYLOAD_LEN
    }

    fn seal(&self, payload: &[u8; SEAL_PAYLOAD_LEN]) -> Vec<u8> {
        let b0 = u64::from_be_bytes(payload[0..8].try_into().expect("fixed width"));
        let b1 = u64::from_be_bytes(payload[8..16].try_into().expect("fixed width"));
        let c0 = self.cipher.encrypt_block(b0);
        let c1 = self.cipher.encrypt_block(b1 ^ c0);
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&c0.to_be_bytes());
        out.extend_from_slice(&c1.to_be_bytes());
        out
    }

    fn unseal(&self, ct: &[u8]) -> Result<[u8; SEAL_PAYLOAD_LEN], CodecError> {
        if ct.len() != 16 {
            return Err(CodecError::Corrupt(format!(
                "{} seal must be 16 bytes, got {}",
                self.name,
                ct.len()
            )));
        }
        let c0 = u64::from_be_bytes(ct[0..8].try_into().expect("fixed width"));
        let c1 = u64::from_be_bytes(ct[8..16].try_into().expect("fixed width"));
        let b0 = self.cipher.decrypt_block(c0);
        let b1 = self.cipher.decrypt_block(c1) ^ c0;
        let mut out = [0u8; SEAL_PAYLOAD_LEN];
        out[0..8].copy_from_slice(&b0.to_be_bytes());
        out[8..16].copy_from_slice(&b1.to_be_bytes());
        Ok(out)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Secret-parameter RSA sealer (§5). Cryptograms are modulus-width, which is
/// exactly the node-layout cost experiment E3 measures.
pub struct RsaSealer {
    key: RsaKey,
}

impl RsaSealer {
    /// Requires a modulus of at least 160 bits so the 16-byte payload plus
    /// framing fits below `n`.
    pub fn new(key: RsaKey) -> Result<Self, CodecError> {
        if key.max_plaintext_len() < SEAL_PAYLOAD_LEN + 1 {
            return Err(CodecError::Corrupt(format!(
                "RSA modulus too small: {} plaintext bytes available, need {}",
                key.max_plaintext_len(),
                SEAL_PAYLOAD_LEN + 1
            )));
        }
        Ok(RsaSealer { key })
    }
}

impl TripletSealer for RsaSealer {
    fn sealed_len(&self) -> usize {
        self.key.ciphertext_len()
    }

    fn seal(&self, payload: &[u8; SEAL_PAYLOAD_LEN]) -> Vec<u8> {
        self.key
            .encrypt_bytes(payload)
            .expect("payload verified to fit at construction")
    }

    fn unseal(&self, ct: &[u8]) -> Result<[u8; SEAL_PAYLOAD_LEN], CodecError> {
        let pt = self
            .key
            .decrypt_bytes(ct)
            .map_err(|e| CodecError::Corrupt(format!("rsa unseal: {e}")))?;
        pt.try_into()
            .map_err(|_| CodecError::Corrupt("rsa unseal produced wrong payload width".into()))
    }

    fn name(&self) -> &'static str {
        "rsa"
    }
}

/// Packs the paper's pointer payload `b ‖ a ‖ p`.
pub(crate) fn pack_payload(block: u32, a: u64, p: u32) -> [u8; SEAL_PAYLOAD_LEN] {
    let mut out = [0u8; SEAL_PAYLOAD_LEN];
    out[0..4].copy_from_slice(&block.to_be_bytes());
    out[4..12].copy_from_slice(&a.to_be_bytes());
    out[12..16].copy_from_slice(&p.to_be_bytes());
    out
}

/// Unpacks and validates the block binding.
pub(crate) fn unpack_payload(
    payload: &[u8; SEAL_PAYLOAD_LEN],
    expected_block: u32,
) -> Result<(u64, u32), CodecError> {
    let b = u32::from_be_bytes(payload[0..4].try_into().expect("fixed width"));
    if b != expected_block {
        return Err(CodecError::BindingMismatch {
            expected: expected_block,
            got: b,
        });
    }
    let a = u64::from_be_bytes(payload[4..12].try_into().expect("fixed width"));
    let p = u32::from_be_bytes(payload[12..16].try_into().expect("fixed width"));
    Ok((a, p))
}

/// Type-erased codec so one tree type can run every scheme (enum dispatch —
/// the codec is chosen once at tree construction).
pub enum AnyCodec {
    Plain(sks_btree_core::PlainCodec),
    Substitution(SubstitutionCodec),
    BayerMetzger(BayerMetzgerCodec),
    FullPage(FullPageCodec),
}

impl sks_btree_core::NodeCodec for AnyCodec {
    fn encode(&self, node: &sks_btree_core::Node, page: &mut [u8]) -> Result<(), CodecError> {
        match self {
            AnyCodec::Plain(c) => c.encode(node, page),
            AnyCodec::Substitution(c) => c.encode(node, page),
            AnyCodec::BayerMetzger(c) => c.encode(node, page),
            AnyCodec::FullPage(c) => c.encode(node, page),
        }
    }

    fn decode(
        &self,
        id: sks_storage::BlockId,
        page: &[u8],
    ) -> Result<sks_btree_core::Node, CodecError> {
        match self {
            AnyCodec::Plain(c) => c.decode(id, page),
            AnyCodec::Substitution(c) => c.decode(id, page),
            AnyCodec::BayerMetzger(c) => c.decode(id, page),
            AnyCodec::FullPage(c) => c.decode(id, page),
        }
    }

    fn probe(
        &self,
        id: sks_storage::BlockId,
        page: &[u8],
        key: u64,
    ) -> Result<sks_btree_core::Probe, CodecError> {
        match self {
            AnyCodec::Plain(c) => c.probe(id, page, key),
            AnyCodec::Substitution(c) => c.probe(id, page, key),
            AnyCodec::BayerMetzger(c) => c.probe(id, page, key),
            AnyCodec::FullPage(c) => c.probe(id, page, key),
        }
    }

    fn max_keys(&self, page_size: usize) -> usize {
        match self {
            AnyCodec::Plain(c) => c.max_keys(page_size),
            AnyCodec::Substitution(c) => c.max_keys(page_size),
            AnyCodec::BayerMetzger(c) => c.max_keys(page_size),
            AnyCodec::FullPage(c) => c.max_keys(page_size),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyCodec::Plain(c) => c.name(),
            AnyCodec::Substitution(c) => c.name(),
            AnyCodec::BayerMetzger(c) => c.name(),
            AnyCodec::FullPage(c) => c.name(),
        }
    }

    fn supports_node_cache(&self) -> bool {
        match self {
            AnyCodec::Plain(c) => c.supports_node_cache(),
            AnyCodec::Substitution(c) => c.supports_node_cache(),
            AnyCodec::BayerMetzger(c) => c.supports_node_cache(),
            AnyCodec::FullPage(c) => c.supports_node_cache(),
        }
    }

    fn decode_for_cache(
        &self,
        id: sks_storage::BlockId,
        page: &[u8],
    ) -> Result<sks_btree_core::CachedNode, CodecError> {
        match self {
            AnyCodec::Plain(c) => c.decode_for_cache(id, page),
            AnyCodec::Substitution(c) => c.decode_for_cache(id, page),
            AnyCodec::BayerMetzger(c) => c.decode_for_cache(id, page),
            AnyCodec::FullPage(c) => c.decode_for_cache(id, page),
        }
    }

    fn probe_cached(
        &self,
        entry: &sks_btree_core::CachedNode,
        key: u64,
    ) -> Result<sks_btree_core::Probe, CodecError> {
        match self {
            AnyCodec::Plain(c) => c.probe_cached(entry, key),
            AnyCodec::Substitution(c) => c.probe_cached(entry, key),
            AnyCodec::BayerMetzger(c) => c.probe_cached(entry, key),
            AnyCodec::FullPage(c) => c.probe_cached(entry, key),
        }
    }

    fn decode_cached(
        &self,
        entry: &sks_btree_core::CachedNode,
    ) -> Result<sks_btree_core::Node, CodecError> {
        match self {
            AnyCodec::Plain(c) => c.decode_cached(entry),
            AnyCodec::Substitution(c) => c.decode_cached(entry),
            AnyCodec::BayerMetzger(c) => c.decode_cached(entry),
            AnyCodec::FullPage(c) => c.decode_cached(entry),
        }
    }

    fn supports_write_behind(&self) -> bool {
        match self {
            AnyCodec::Plain(c) => c.supports_write_behind(),
            AnyCodec::Substitution(c) => c.supports_write_behind(),
            AnyCodec::BayerMetzger(c) => c.supports_write_behind(),
            AnyCodec::FullPage(c) => c.supports_write_behind(),
        }
    }

    fn encode_to_cache(
        &self,
        node: &sks_btree_core::Node,
        page_len: usize,
    ) -> Result<sks_btree_core::CachedNode, CodecError> {
        match self {
            AnyCodec::Plain(c) => c.encode_to_cache(node, page_len),
            AnyCodec::Substitution(c) => c.encode_to_cache(node, page_len),
            AnyCodec::BayerMetzger(c) => c.encode_to_cache(node, page_len),
            AnyCodec::FullPage(c) => c.encode_to_cache(node, page_len),
        }
    }

    fn encode_from_cache(
        &self,
        entry: &sks_btree_core::CachedNode,
        page: &mut [u8],
    ) -> Result<(), CodecError> {
        match self {
            AnyCodec::Plain(c) => c.encode_from_cache(entry, page),
            AnyCodec::Substitution(c) => c.encode_from_cache(entry, page),
            AnyCodec::BayerMetzger(c) => c.encode_from_cache(entry, page),
            AnyCodec::FullPage(c) => c.encode_from_cache(entry, page),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sealers() -> Vec<Box<dyn TripletSealer>> {
        let mut rng = StdRng::seed_from_u64(7);
        vec![
            Box::new(BlockCipherSealer::des(0x0123456789ABCDEF)),
            Box::new(BlockCipherSealer::speck(
                0xFEEDFACE_CAFEBEEF_00112233_44556677,
            )),
            Box::new(RsaSealer::new(RsaKey::generate(&mut rng, 256)).unwrap()),
        ]
    }

    #[test]
    fn all_sealers_roundtrip() {
        for sealer in sealers() {
            let payload = pack_payload(42, 0xdeadbeef, 7);
            let ct = sealer.seal(&payload);
            assert_eq!(ct.len(), sealer.sealed_len(), "{}", sealer.name());
            let back = sealer.unseal(&ct).unwrap();
            assert_eq!(back, payload, "{}", sealer.name());
            let (a, p) = unpack_payload(&back, 42).unwrap();
            assert_eq!((a, p), (0xdeadbeef, 7));
        }
    }

    #[test]
    fn binding_mismatch_detected_after_unseal() {
        let payload = pack_payload(42, 1, 2);
        assert!(matches!(
            unpack_payload(&payload, 43),
            Err(CodecError::BindingMismatch {
                expected: 43,
                got: 42
            })
        ));
    }

    #[test]
    fn same_pointers_different_blocks_different_cryptograms() {
        // The paper's motivation for including b in the cryptogram.
        let sealer = BlockCipherSealer::des(0x1122334455667788);
        let c1 = sealer.seal(&pack_payload(1, 99, 5));
        let c2 = sealer.seal(&pack_payload(2, 99, 5));
        assert_ne!(c1, c2);
    }

    #[test]
    fn wrong_length_rejected() {
        let sealer = BlockCipherSealer::des(1);
        assert!(sealer.unseal(&[0u8; 15]).is_err());
        let mut rng = StdRng::seed_from_u64(8);
        let rsa = RsaSealer::new(RsaKey::generate(&mut rng, 256)).unwrap();
        assert!(rsa.unseal(&[0u8; 16]).is_err());
    }

    #[test]
    fn rsa_sealer_rejects_tiny_modulus() {
        let mut rng = StdRng::seed_from_u64(9);
        let key = RsaKey::generate(&mut rng, 64);
        assert!(RsaSealer::new(key).is_err());
    }

    #[test]
    fn rsa_cryptograms_are_modulus_width() {
        let mut rng = StdRng::seed_from_u64(10);
        for bits in [192usize, 256, 512] {
            let sealer = RsaSealer::new(RsaKey::generate(&mut rng, bits)).unwrap();
            assert_eq!(sealer.sealed_len(), bits / 8);
            let ct = sealer.seal(&pack_payload(3, 4, 5));
            assert_eq!(ct.len(), bits / 8);
        }
    }
}
