//! The original Bayer–Metzger *page* scheme (§2): the whole node block is a
//! single cryptogram under the page key.
//!
//! Simple and maximally opaque, but any access — even probing a single key —
//! decrypts the entire page. Counters record one `page_decrypt` per cipher
//! block processed (the honest hardware-unit cost), so for a `B`-byte page
//! each probe pays `B/8` block decryptions versus `log₂ n` triplets
//! (Bayer–Metzger refined) versus one pointer seal (the paper's scheme).

use sks_btree_core::{CachedNode, CodecError, Node, NodeCodec, Probe, RecordPtr};
use sks_crypto::cipher::BlockCipher64;
use sks_crypto::pagekey::PageKeyScheme;
use sks_storage::{BlockId, OpCounters, PageReader, PageWriter};

const TAG: u8 = 0x50; // 'P'

/// Whole-page encipherment codec.
pub struct FullPageCodec {
    pages: PageKeyScheme,
    counters: OpCounters,
}

impl FullPageCodec {
    pub fn new(pages: PageKeyScheme, counters: OpCounters) -> Self {
        FullPageCodec { pages, counters }
    }

    fn cipher_blocks(page_len: usize) -> u64 {
        (page_len / 8) as u64
    }

    fn encrypt_page(&self, cipher: &dyn BlockCipher64, page: &mut [u8]) {
        // CBC over the whole page, zero IV (the page key is unique per
        // block, which is what provides cross-page distinctness).
        Self::encrypt_page_silent(cipher, page);
        self.counters
            .bump_by(|c| &c.page_encrypts, Self::cipher_blocks(page.len()));
    }

    fn decrypt_page(&self, cipher: &dyn BlockCipher64, page: &[u8]) -> Vec<u8> {
        let out = Self::decrypt_page_silent(cipher, page);
        self.counters
            .bump_by(|c| &c.page_decrypts, Self::cipher_blocks(page.len()));
        out
    }

    fn encrypt_page_silent(cipher: &dyn BlockCipher64, page: &mut [u8]) {
        let mut prev = 0u64;
        for chunk in page.chunks_exact_mut(8) {
            let b = u64::from_be_bytes(chunk.try_into().expect("exact chunk"));
            let c = cipher.encrypt_block(b ^ prev);
            chunk.copy_from_slice(&c.to_be_bytes());
            prev = c;
        }
    }

    fn decrypt_page_silent(cipher: &dyn BlockCipher64, page: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; page.len()];
        let mut prev = 0u64;
        for (i, chunk) in page.chunks_exact(8).enumerate() {
            let c = u64::from_be_bytes(chunk.try_into().expect("exact chunk"));
            let b = cipher.decrypt_block(c) ^ prev;
            out[i * 8..(i + 1) * 8].copy_from_slice(&b.to_be_bytes());
            prev = c;
        }
        out
    }

    /// Serialises the node plaintext (PlainCodec-like layout but with this
    /// codec's tag) into `buf`.
    fn encode_plain(&self, node: &Node, buf: &mut [u8]) -> Result<(), CodecError> {
        node.check_shape().map_err(CodecError::Corrupt)?;
        let mut w = PageWriter::new(buf);
        sks_btree_core::codec::write_header(&mut w, TAG, node)?;
        for (&k, &a) in node.keys.iter().zip(&node.data_ptrs) {
            w.put_u64(k)?;
            w.put_u64(a.0)?;
        }
        for &c in &node.children {
            w.put_u32(c.0)?;
        }
        w.pad_remaining();
        Ok(())
    }

    fn decode_plain(&self, id: BlockId, buf: &[u8]) -> Result<Node, CodecError> {
        let mut r = PageReader::new(buf);
        let (is_leaf, n) = sks_btree_core::codec::read_header(&mut r, TAG, id)?;
        let mut keys = Vec::with_capacity(n);
        let mut data_ptrs = Vec::with_capacity(n);
        for _ in 0..n {
            keys.push(r.get_u64()?);
            data_ptrs.push(RecordPtr(r.get_u64()?));
        }
        let mut children = Vec::new();
        if !is_leaf {
            for _ in 0..=n {
                children.push(BlockId(r.get_u32()?));
            }
        }
        let node = Node {
            id,
            keys,
            data_ptrs,
            children,
        };
        node.check_shape().map_err(CodecError::Corrupt)?;
        Ok(node)
    }
}

impl NodeCodec for FullPageCodec {
    fn encode(&self, node: &Node, page: &mut [u8]) -> Result<(), CodecError> {
        if !page.len().is_multiple_of(8) {
            return Err(CodecError::Corrupt(
                "page size must be a multiple of the cipher block (8)".into(),
            ));
        }
        self.encode_plain(node, page)?;
        let cipher = self.pages.page_cipher(node.id.as_u64());
        self.encrypt_page(cipher.as_ref(), page);
        Ok(())
    }

    fn decode(&self, id: BlockId, page: &[u8]) -> Result<Node, CodecError> {
        if !page.len().is_multiple_of(8) {
            return Err(CodecError::Corrupt(
                "page size must be a multiple of the cipher block (8)".into(),
            ));
        }
        let cipher = self.pages.page_cipher(id.as_u64());
        let plain = self.decrypt_page(cipher.as_ref(), page);
        self.decode_plain(id, &plain)
    }

    fn probe(&self, id: BlockId, page: &[u8], key: u64) -> Result<Probe, CodecError> {
        // No partial access is possible: the whole page must be decrypted.
        let node = self.decode(id, page)?;
        match node.search(key) {
            sks_btree_core::NodeSearch::Here(i) => Ok(Probe::Found {
                data_ptr: node.data_ptrs[i],
            }),
            sks_btree_core::NodeSearch::Child(i) => {
                self.counters.bump(|c| &c.key_compares);
                if node.is_leaf() {
                    Ok(Probe::Missing)
                } else {
                    Ok(Probe::Descend {
                        child: node.children[i],
                    })
                }
            }
        }
    }

    fn max_keys(&self, page_size: usize) -> usize {
        if page_size <= sks_btree_core::NODE_HEADER_LEN + 4 {
            return 0;
        }
        (page_size - sks_btree_core::NODE_HEADER_LEN - 4) / 20
    }

    fn name(&self) -> &'static str {
        "bm-full-page"
    }

    fn supports_node_cache(&self) -> bool {
        true
    }

    fn decode_for_cache(&self, id: BlockId, page: &[u8]) -> Result<CachedNode, CodecError> {
        if !page.len().is_multiple_of(8) {
            return Err(CodecError::Corrupt(
                "page size must be a multiple of the cipher block (8)".into(),
            ));
        }
        let cipher = self.pages.page_cipher(id.as_u64());
        let plain = Self::decrypt_page_silent(cipher.as_ref(), page);
        Ok(CachedNode {
            node: self.decode_plain(id, &plain)?,
            raw_keys: Vec::new(),
            page_len: page.len(),
        })
    }

    fn decode_cached(&self, entry: &CachedNode) -> Result<Node, CodecError> {
        // A raw decode deciphers the whole page.
        self.counters
            .bump_by(|c| &c.page_decrypts, Self::cipher_blocks(entry.page_len));
        Ok(entry.node.clone())
    }

    fn probe_cached(&self, entry: &CachedNode, key: u64) -> Result<Probe, CodecError> {
        // A raw probe has no partial access: it always charges the whole
        // page's worth of block decryptions before searching.
        self.counters
            .bump_by(|c| &c.page_decrypts, Self::cipher_blocks(entry.page_len));
        let node = &entry.node;
        match node.search(key) {
            sks_btree_core::NodeSearch::Here(i) => Ok(Probe::Found {
                data_ptr: node.data_ptrs[i],
            }),
            sks_btree_core::NodeSearch::Child(i) => {
                self.counters.bump(|c| &c.key_compares);
                if node.is_leaf() {
                    Ok(Probe::Missing)
                } else {
                    Ok(Probe::Descend {
                        child: node.children[i],
                    })
                }
            }
        }
    }

    fn supports_write_behind(&self) -> bool {
        true
    }

    fn encode_to_cache(&self, node: &Node, page_len: usize) -> Result<CachedNode, CodecError> {
        // `encode`'s exact validation (block-multiple page, shape, fit —
        // verified by a scratch plaintext serialisation, which is
        // counter-free) and counter profile: one page_encrypts per cipher
        // block of the page.
        if !page_len.is_multiple_of(8) {
            return Err(CodecError::Corrupt(
                "page size must be a multiple of the cipher block (8)".into(),
            ));
        }
        let mut scratch = vec![0u8; page_len];
        self.encode_plain(node, &mut scratch)?;
        self.counters
            .bump_by(|c| &c.page_encrypts, Self::cipher_blocks(page_len));
        Ok(CachedNode {
            node: node.clone(),
            raw_keys: Vec::new(),
            page_len,
        })
    }

    fn encode_from_cache(&self, entry: &CachedNode, page: &mut [u8]) -> Result<(), CodecError> {
        // Counter-silent physical seal producing `encode`'s exact page
        // bytes (CBC under the page key is deterministic).
        if !page.len().is_multiple_of(8) {
            return Err(CodecError::Corrupt(
                "page size must be a multiple of the cipher block (8)".into(),
            ));
        }
        self.encode_plain(&entry.node, page)?;
        let cipher = self.pages.page_cipher(entry.node.id.as_u64());
        Self::encrypt_page_silent(cipher.as_ref(), page);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_crypto::pagekey::PageCipherKind;

    fn codec() -> (FullPageCodec, OpCounters) {
        let counters = OpCounters::new();
        (
            FullPageCodec::new(
                PageKeyScheme::new(0xFACE_0FF0_1234_5678, PageCipherKind::Des),
                counters.clone(),
            ),
            counters,
        )
    }

    fn sample() -> Node {
        Node {
            id: BlockId(4),
            keys: vec![3, 6, 9],
            data_ptrs: vec![RecordPtr(30), RecordPtr(60), RecordPtr(90)],
            children: vec![BlockId(10), BlockId(11), BlockId(12), BlockId(13)],
        }
    }

    #[test]
    fn roundtrip() {
        let (codec, _) = codec();
        let node = sample();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert_eq!(codec.decode(BlockId(4), &page).unwrap(), node);
    }

    #[test]
    fn nothing_is_plaintext_on_disk() {
        let (codec, _) = codec();
        let node = sample();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert_ne!(page[0], TAG, "even the header is enciphered");
        for &k in &node.keys {
            let needle = k.to_be_bytes();
            assert_eq!(page.windows(8).filter(|w| *w == needle).count(), 0);
        }
    }

    #[test]
    fn probe_pays_whole_page_decryption() {
        let (codec, counters) = codec();
        let node = sample();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        counters.reset();
        let p = codec.probe(BlockId(4), &page, 6).unwrap();
        assert_eq!(
            p,
            Probe::Found {
                data_ptr: RecordPtr(60)
            }
        );
        let s = counters.snapshot();
        assert_eq!(s.page_decrypts, 256 / 8, "every cipher block of the page");
    }

    #[test]
    fn wrong_block_or_key_fails() {
        let (codec, _) = codec();
        let node = sample();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert!(codec.decode(BlockId(5), &page).is_err());
        let other = FullPageCodec::new(
            PageKeyScheme::new(0x999, PageCipherKind::Des),
            OpCounters::new(),
        );
        assert!(other.decode(BlockId(4), &page).is_err());
    }

    #[test]
    fn ragged_page_rejected() {
        let (codec, _) = codec();
        let node = sample();
        let mut page = vec![0u8; 255];
        assert!(matches!(
            codec.encode(&node, &mut page),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn same_node_content_different_blocks_differ() {
        let (codec, _) = codec();
        let mut a = Node::leaf(BlockId(1));
        a.keys = vec![5];
        a.data_ptrs = vec![RecordPtr(50)];
        let mut b = a.clone();
        b.id = BlockId(2);
        let mut pa = vec![0u8; 128];
        let mut pb = vec![0u8; 128];
        codec.encode(&a, &mut pa).unwrap();
        codec.encode(&b, &mut pb).unwrap();
        assert_ne!(pa, pb);
    }
}
