//! The paper's node-block format (§3/§4):
//!
//! ```text
//! header | [E(b‖0‖p₀)]          (internal nodes: the lone leftmost pointer)
//!        | f(k₁), E(b‖a₁‖p₁)
//!        | …
//!        | f(k_n), E(b‖a_n‖p_n)
//! ```
//!
//! Disguised keys are stored in the clear, so navigation is integer
//! comparisons; only the one pointer cryptogram actually followed is
//! decrypted — **one decryption per node visit** versus `log₂ n` for
//! search-and-decrypt (§6's headline claim). On reorganisation the keys are
//! re-disguised (cheap integer ops, counted separately) but never
//! re-*encrypted*.

use std::sync::Arc;

use sks_btree_core::{CachedNode, CodecError, Node, NodeCodec, Probe, RecordPtr, NODE_HEADER_LEN};
use sks_storage::{BlockId, OpCounters, PageReader, PageWriter};

use crate::codec::{pack_payload, unpack_payload, TripletSealer, SEAL_PAYLOAD_LEN};
use crate::disguise::KeyDisguise;

const TAG: u8 = 0x53; // 'S'

/// Node codec implementing the paper's search-key-substitution format.
pub struct SubstitutionCodec {
    disguise: Arc<dyn KeyDisguise>,
    sealer: Arc<dyn TripletSealer>,
    counters: OpCounters,
}

impl SubstitutionCodec {
    pub fn new(
        disguise: Arc<dyn KeyDisguise>,
        sealer: Arc<dyn TripletSealer>,
        counters: OpCounters,
    ) -> Self {
        SubstitutionCodec {
            disguise,
            sealer,
            counters,
        }
    }

    pub fn disguise(&self) -> &Arc<dyn KeyDisguise> {
        &self.disguise
    }

    fn entry_len(&self) -> usize {
        8 + self.sealer.sealed_len()
    }

    fn seal_at(&self, page: &[u8], offset: usize) -> Result<[u8; SEAL_PAYLOAD_LEN], CodecError> {
        let mut r = PageReader::new(page);
        r.seek(offset)?;
        let ct = r.get_bytes(self.sealer.sealed_len())?;
        self.counters.bump(|c| &c.ptr_decrypts);
        self.sealer.unseal(ct)
    }

    /// Offset of the disguised key of entry `i`.
    fn key_offset(&self, is_leaf: bool, i: usize) -> usize {
        let base = NODE_HEADER_LEN + if is_leaf { 0 } else { self.sealer.sealed_len() };
        base + i * self.entry_len()
    }

    /// Reads the raw disguised key of entry `i` from the page.
    fn raw_key_at(&self, page: &[u8], is_leaf: bool, i: usize) -> Result<u64, CodecError> {
        let mut r = PageReader::new(page);
        r.seek(self.key_offset(is_leaf, i))?;
        Ok(r.get_u64()?)
    }

    fn map_disguise_err(e: crate::disguise::DisguiseError) -> CodecError {
        match e {
            crate::disguise::DisguiseError::OutOfDomain { key, domain } => CodecError::KeyDomain {
                key,
                limit: domain
                    .trim_start_matches(|c| c != ',')
                    .trim_matches(|c: char| !c.is_ascii_digit())
                    .parse()
                    .unwrap_or(0),
            },
            other => CodecError::Corrupt(format!("disguise failure: {other}")),
        }
    }
}

impl NodeCodec for SubstitutionCodec {
    fn encode(&self, node: &Node, page: &mut [u8]) -> Result<(), CodecError> {
        node.check_shape().map_err(CodecError::Corrupt)?;
        let mut w = PageWriter::new(page);
        sks_btree_core::codec::write_header(&mut w, TAG, node)?;
        let b = node.id.0;
        if !node.is_leaf() {
            // The lone leftmost tree pointer: E(b ‖ 0 ‖ p₀).
            self.counters.bump(|c| &c.ptr_encrypts);
            let ct = self.sealer.seal(&pack_payload(b, 0, node.children[0].0));
            w.put_bytes(&ct)?;
        }
        for i in 0..node.n() {
            let disguised = self
                .disguise
                .disguise(node.keys[i])
                .map_err(Self::map_disguise_err)?;
            w.put_u64(disguised)?;
            let p = if node.is_leaf() {
                0
            } else {
                node.children[i + 1].0
            };
            self.counters.bump(|c| &c.ptr_encrypts);
            let ct = self.sealer.seal(&pack_payload(b, node.data_ptrs[i].0, p));
            w.put_bytes(&ct)?;
        }
        w.pad_remaining();
        Ok(())
    }

    fn decode(&self, id: BlockId, page: &[u8]) -> Result<Node, CodecError> {
        let mut r = PageReader::new(page);
        let (is_leaf, n) = sks_btree_core::codec::read_header(&mut r, TAG, id)?;
        let mut keys = Vec::with_capacity(n);
        let mut data_ptrs = Vec::with_capacity(n);
        let mut children = Vec::new();
        if !is_leaf {
            let ct = r.get_bytes(self.sealer.sealed_len())?;
            self.counters.bump(|c| &c.ptr_decrypts);
            let payload = self.sealer.unseal(ct)?;
            let (_, p0) = unpack_payload(&payload, id.0)?;
            children.push(BlockId(p0));
        }
        for _ in 0..n {
            let disguised = r.get_u64()?;
            let key = self
                .disguise
                .recover(disguised)
                .map_err(|e| CodecError::Corrupt(format!("recover failed: {e}")))?;
            keys.push(key);
            let ct = r.get_bytes(self.sealer.sealed_len())?;
            self.counters.bump(|c| &c.ptr_decrypts);
            let payload = self.sealer.unseal(ct)?;
            let (a, p) = unpack_payload(&payload, id.0)?;
            data_ptrs.push(RecordPtr(a));
            if !is_leaf {
                children.push(BlockId(p));
            }
        }
        let node = Node {
            id,
            keys,
            data_ptrs,
            children,
        };
        node.check_shape().map_err(CodecError::Corrupt)?;
        Ok(node)
    }

    fn probe(&self, id: BlockId, page: &[u8], key: u64) -> Result<Probe, CodecError> {
        let mut r = PageReader::new(page);
        let (is_leaf, n) = sks_btree_core::codec::read_header(&mut r, TAG, id)?;

        // Locate the key by comparisons on (dis)guised values — no pointer
        // decryption yet.
        let found: Result<usize, usize> = if self.disguise.order_preserving() {
            // Disguise the query once; compare against raw on-disk values.
            match self.disguise.disguise(key) {
                Ok(dq) => {
                    let mut lo = 0usize;
                    let mut hi = n;
                    let mut hit = None;
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        self.counters.bump(|c| &c.key_compares);
                        let raw = self.raw_key_at(page, is_leaf, mid)?;
                        match raw.cmp(&dq) {
                            std::cmp::Ordering::Equal => {
                                hit = Some(mid);
                                break;
                            }
                            std::cmp::Ordering::Less => lo = mid + 1,
                            std::cmp::Ordering::Greater => hi = mid,
                        }
                    }
                    match hit {
                        Some(i) => Ok(i),
                        None => Err(lo),
                    }
                }
                // Query key outside the disguise domain cannot be stored.
                Err(_) => Err(if n == 0 { 0 } else { n }),
            }
        } else {
            // Recover each probed key (cheap integer inverse, counted as
            // recover_ops) — triplet positions are in plaintext order, so
            // binary search over recovered values is sound.
            let mut lo = 0usize;
            let mut hi = n;
            let mut hit = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                self.counters.bump(|c| &c.key_compares);
                let raw = self.raw_key_at(page, is_leaf, mid)?;
                let recovered = self
                    .disguise
                    .recover(raw)
                    .map_err(|e| CodecError::Corrupt(format!("recover failed: {e}")))?;
                match recovered.cmp(&key) {
                    std::cmp::Ordering::Equal => {
                        hit = Some(mid);
                        break;
                    }
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                }
            }
            match hit {
                Some(i) => Ok(i),
                None => Err(lo),
            }
        };

        match found {
            Ok(i) => {
                // Exactly one pointer decryption: entry i's seal.
                let off = self.key_offset(is_leaf, i) + 8;
                let payload = self.seal_at(page, off)?;
                let (a, _) = unpack_payload(&payload, id.0)?;
                Ok(Probe::Found {
                    data_ptr: RecordPtr(a),
                })
            }
            Err(slot) => {
                if is_leaf {
                    return Ok(Probe::Missing);
                }
                // Child `slot`: p₀ lives in the leftmost seal, child i+1 in
                // entry i's seal. One pointer decryption either way.
                if slot == 0 {
                    let payload = self.seal_at(page, NODE_HEADER_LEN)?;
                    let (_, p0) = unpack_payload(&payload, id.0)?;
                    Ok(Probe::Descend { child: BlockId(p0) })
                } else {
                    let off = self.key_offset(is_leaf, slot - 1) + 8;
                    let payload = self.seal_at(page, off)?;
                    let (_, p) = unpack_payload(&payload, id.0)?;
                    Ok(Probe::Descend { child: BlockId(p) })
                }
            }
        }
    }

    fn max_keys(&self, page_size: usize) -> usize {
        // Internal node (worst case): header + leftmost seal + n entries.
        let fixed = NODE_HEADER_LEN + self.sealer.sealed_len();
        if page_size <= fixed {
            return 0;
        }
        (page_size - fixed) / self.entry_len()
    }

    fn name(&self) -> &'static str {
        "substitution"
    }

    fn supports_node_cache(&self) -> bool {
        true
    }

    fn decode_for_cache(&self, id: BlockId, page: &[u8]) -> Result<CachedNode, CodecError> {
        // `decode`, counter-silent, additionally retaining the raw
        // disguised key fields so `probe_cached` can replay the probe's
        // exact recover/compare sequence.
        let mut r = PageReader::new(page);
        let (is_leaf, n) = sks_btree_core::codec::read_header(&mut r, TAG, id)?;
        let mut keys = Vec::with_capacity(n);
        let mut raw_keys = Vec::with_capacity(n);
        let mut data_ptrs = Vec::with_capacity(n);
        let mut children = Vec::new();
        if !is_leaf {
            let ct = r.get_bytes(self.sealer.sealed_len())?;
            let payload = self.sealer.unseal(ct)?;
            let (_, p0) = unpack_payload(&payload, id.0)?;
            children.push(BlockId(p0));
        }
        for _ in 0..n {
            let disguised = r.get_u64()?;
            let key = self
                .disguise
                .recover_uncounted(disguised)
                .map_err(|e| CodecError::Corrupt(format!("recover failed: {e}")))?;
            raw_keys.push(disguised);
            keys.push(key);
            let ct = r.get_bytes(self.sealer.sealed_len())?;
            let payload = self.sealer.unseal(ct)?;
            let (a, p) = unpack_payload(&payload, id.0)?;
            data_ptrs.push(RecordPtr(a));
            if !is_leaf {
                children.push(BlockId(p));
            }
        }
        let node = Node {
            id,
            keys,
            data_ptrs,
            children,
        };
        node.check_shape().map_err(CodecError::Corrupt)?;
        Ok(CachedNode {
            node,
            raw_keys,
            page_len: page.len(),
        })
    }

    fn probe_cached(&self, entry: &CachedNode, key: u64) -> Result<Probe, CodecError> {
        let node = &entry.node;
        let n = node.n();
        let is_leaf = node.is_leaf();

        // The same in-node search as `probe`, over the retained raw key
        // fields — including the real disguise/recover calls, so their
        // counter profile (disguise_ops, recover_ops, dlog_ops …) is
        // identical step for step. Only the pointer unseals are skipped.
        let found: Result<usize, usize> = if self.disguise.order_preserving() {
            match self.disguise.disguise(key) {
                Ok(dq) => {
                    let mut lo = 0usize;
                    let mut hi = n;
                    let mut hit = None;
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        self.counters.bump(|c| &c.key_compares);
                        match entry.raw_keys[mid].cmp(&dq) {
                            std::cmp::Ordering::Equal => {
                                hit = Some(mid);
                                break;
                            }
                            std::cmp::Ordering::Less => lo = mid + 1,
                            std::cmp::Ordering::Greater => hi = mid,
                        }
                    }
                    match hit {
                        Some(i) => Ok(i),
                        None => Err(lo),
                    }
                }
                Err(_) => Err(if n == 0 { 0 } else { n }),
            }
        } else {
            let mut lo = 0usize;
            let mut hi = n;
            let mut hit = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                self.counters.bump(|c| &c.key_compares);
                let recovered = self
                    .disguise
                    .recover(entry.raw_keys[mid])
                    .map_err(|e| CodecError::Corrupt(format!("recover failed: {e}")))?;
                match recovered.cmp(&key) {
                    std::cmp::Ordering::Equal => {
                        hit = Some(mid);
                        break;
                    }
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                }
            }
            match hit {
                Some(i) => Ok(i),
                None => Err(lo),
            }
        };

        match found {
            Ok(i) => {
                // The probe would unseal exactly entry i's pointer.
                self.counters.bump(|c| &c.ptr_decrypts);
                Ok(Probe::Found {
                    data_ptr: node.data_ptrs[i],
                })
            }
            Err(slot) => {
                if is_leaf {
                    return Ok(Probe::Missing);
                }
                // One pointer decryption either way (leftmost seal for
                // slot 0, entry slot-1's seal otherwise).
                self.counters.bump(|c| &c.ptr_decrypts);
                Ok(Probe::Descend {
                    child: node.children[slot],
                })
            }
        }
    }

    fn decode_cached(&self, entry: &CachedNode) -> Result<Node, CodecError> {
        // A raw decode unseals every pointer cryptogram (plus the lone
        // leftmost one on internal nodes) and runs the *real* disguise
        // recovery per key — replay the recoveries against the retained
        // raw key fields so their counter profile (recover_ops, dlog_ops
        // …) is identical step for step, and charge the pointer unseals.
        let node = &entry.node;
        let seals = node.n() + usize::from(!node.is_leaf());
        self.counters.bump_by(|c| &c.ptr_decrypts, seals as u64);
        for &raw in &entry.raw_keys {
            self.disguise
                .recover(raw)
                .map_err(|e| CodecError::Corrupt(format!("recover failed: {e}")))?;
        }
        Ok(node.clone())
    }

    fn supports_write_behind(&self) -> bool {
        true
    }

    fn encode_to_cache(&self, node: &Node, page_len: usize) -> Result<CachedNode, CodecError> {
        // `encode`'s exact validation and counter profile with the seals
        // skipped: shape check, fit check, one ptr_encrypts per pointer
        // cryptogram, and the real *counted* disguise per key (which also
        // enforces the key domain). The disguised values become the raw-key
        // sidecar, so the eventual seal and every cached probe/decode
        // replay use the same on-page key fields.
        node.check_shape().map_err(CodecError::Corrupt)?;
        let end = self.key_offset(node.is_leaf(), node.n());
        if end > page_len {
            return Err(CodecError::Overflow(sks_storage::PageOverflow {
                offset: page_len,
                requested: end - page_len,
                page_len,
            }));
        }
        if !node.is_leaf() {
            self.counters.bump(|c| &c.ptr_encrypts);
        }
        let mut raw_keys = Vec::with_capacity(node.n());
        for i in 0..node.n() {
            let disguised = self
                .disguise
                .disguise(node.keys[i])
                .map_err(Self::map_disguise_err)?;
            raw_keys.push(disguised);
            self.counters.bump(|c| &c.ptr_encrypts);
        }
        Ok(CachedNode {
            node: node.clone(),
            raw_keys,
            page_len,
        })
    }

    fn encode_from_cache(&self, entry: &CachedNode, page: &mut [u8]) -> Result<(), CodecError> {
        // Counter-silent physical seal: same page bytes as `encode`, with
        // the disguised key fields replayed from the sidecar instead of
        // re-running the (already charged) disguise.
        let node = &entry.node;
        if entry.raw_keys.len() != node.n() {
            return Err(CodecError::Corrupt(format!(
                "write-behind entry for block {} lacks its disguised keys",
                node.id
            )));
        }
        let mut w = PageWriter::new(page);
        sks_btree_core::codec::write_header(&mut w, TAG, node)?;
        let b = node.id.0;
        if !node.is_leaf() {
            let ct = self.sealer.seal(&pack_payload(b, 0, node.children[0].0));
            w.put_bytes(&ct)?;
        }
        for i in 0..node.n() {
            w.put_u64(entry.raw_keys[i])?;
            let p = if node.is_leaf() {
                0
            } else {
                node.children[i + 1].0
            };
            let ct = self.sealer.seal(&pack_payload(b, node.data_ptrs[i].0, p));
            w.put_bytes(&ct)?;
        }
        w.pad_remaining();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BlockCipherSealer;
    use crate::disguise::{IdentityDisguise, OvalSubstitution, SumSubstitution};

    /// Builds a codec whose disguise shares the codec's counter set, so
    /// tests observe disguise/recover ops alongside seal ops.
    fn codec_with_shared(
        make: impl FnOnce(OpCounters) -> Arc<dyn KeyDisguise>,
    ) -> (SubstitutionCodec, OpCounters) {
        let counters = OpCounters::new();
        let disguise = make(counters.clone());
        let sealer = Arc::new(BlockCipherSealer::des(0xA5A5_5A5A_0F0F_F0F0));
        (
            SubstitutionCodec::new(disguise, sealer, counters.clone()),
            counters,
        )
    }

    fn codec_with(disguise: Arc<dyn KeyDisguise>) -> (SubstitutionCodec, OpCounters) {
        let counters = OpCounters::new();
        let sealer = Arc::new(BlockCipherSealer::des(0xA5A5_5A5A_0F0F_F0F0));
        (
            SubstitutionCodec::new(disguise, sealer, counters.clone()),
            counters,
        )
    }

    fn sample_internal() -> Node {
        Node {
            id: BlockId(7),
            keys: vec![2, 5, 9],
            data_ptrs: vec![RecordPtr(20), RecordPtr(50), RecordPtr(90)],
            children: vec![BlockId(11), BlockId(12), BlockId(13), BlockId(14)],
        }
    }

    #[test]
    fn roundtrip_with_oval_disguise() {
        let (codec, _) = codec_with(Arc::new(OvalSubstitution::paper_example(OpCounters::new())));
        let node = sample_internal();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert_eq!(codec.decode(BlockId(7), &page).unwrap(), node);
    }

    #[test]
    fn disk_keys_are_disguised_not_plaintext() {
        let disguise = Arc::new(OvalSubstitution::paper_example(OpCounters::new()));
        let (codec, _) = codec_with(disguise.clone());
        let node = sample_internal();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        // Entry 0's key field must hold f(2) = 2*7 mod 13 = 1, not 2.
        let raw = codec.raw_key_at(&page, false, 0).unwrap();
        assert_eq!(raw, 1);
        assert_ne!(raw, node.keys[0]);
    }

    #[test]
    fn probe_costs_exactly_one_pointer_decryption() {
        let (codec, counters) =
            codec_with(Arc::new(OvalSubstitution::paper_example(OpCounters::new())));
        let node = sample_internal();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        counters.reset();

        // Found.
        let p = codec.probe(BlockId(7), &page, 5).unwrap();
        assert_eq!(
            p,
            Probe::Found {
                data_ptr: RecordPtr(50)
            }
        );
        assert_eq!(counters.snapshot().ptr_decrypts, 1);

        counters.reset();
        // Descend (middle child).
        let p = codec.probe(BlockId(7), &page, 3).unwrap();
        assert_eq!(p, Probe::Descend { child: BlockId(12) });
        assert_eq!(counters.snapshot().ptr_decrypts, 1);

        counters.reset();
        // Descend leftmost.
        let p = codec.probe(BlockId(7), &page, 1).unwrap();
        assert_eq!(p, Probe::Descend { child: BlockId(11) });
        assert_eq!(counters.snapshot().ptr_decrypts, 1);
    }

    #[test]
    fn leaf_miss_costs_zero_decryptions() {
        let (codec, counters) =
            codec_with(Arc::new(OvalSubstitution::paper_example(OpCounters::new())));
        let mut leaf = Node::leaf(BlockId(3));
        leaf.keys = vec![4, 8];
        leaf.data_ptrs = vec![RecordPtr(1), RecordPtr(2)];
        let mut page = vec![0u8; 256];
        codec.encode(&leaf, &mut page).unwrap();
        counters.reset();
        assert_eq!(codec.probe(BlockId(3), &page, 6).unwrap(), Probe::Missing);
        assert_eq!(counters.snapshot().ptr_decrypts, 0);
    }

    #[test]
    fn order_preserving_path_disguises_query_once() {
        let (codec, counters) = codec_with_shared(|c| Arc::new(SumSubstitution::paper_example(c)));
        let mut leaf = Node::leaf(BlockId(3));
        leaf.keys = vec![1, 4, 8];
        leaf.data_ptrs = vec![RecordPtr(1), RecordPtr(2), RecordPtr(3)];
        let mut page = vec![0u8; 256];
        codec.encode(&leaf, &mut page).unwrap();
        counters.reset();
        let p = codec.probe(BlockId(3), &page, 4).unwrap();
        assert_eq!(
            p,
            Probe::Found {
                data_ptr: RecordPtr(2)
            }
        );
        let s = counters.snapshot();
        assert_eq!(s.disguise_ops, 1, "query disguised once");
        assert_eq!(s.recover_ops, 0, "no per-entry recovery needed");
    }

    #[test]
    fn non_order_preserving_path_recovers_probed_entries() {
        let (codec, counters) = codec_with_shared(|c| Arc::new(OvalSubstitution::paper_example(c)));
        let mut leaf = Node::leaf(BlockId(3));
        leaf.keys = vec![1, 4, 8, 10, 12];
        leaf.data_ptrs = (0..5).map(RecordPtr).collect();
        let mut page = vec![0u8; 256];
        codec.encode(&leaf, &mut page).unwrap();
        counters.reset();
        let _ = codec.probe(BlockId(3), &page, 10).unwrap();
        let s = counters.snapshot();
        assert!(
            s.recover_ops >= 1 && s.recover_ops <= 3,
            "~log2(5) recoveries"
        );
        assert_eq!(s.disguise_ops, 0);
    }

    #[test]
    fn no_key_encryption_ever() {
        let (codec, counters) = codec_with_shared(|c| Arc::new(OvalSubstitution::paper_example(c)));
        let node = sample_internal();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        let _ = codec.decode(BlockId(7), &page).unwrap();
        let s = counters.snapshot();
        assert_eq!(s.key_encrypts, 0, "§4: keys are disguised, never encrypted");
        assert_eq!(s.key_decrypts, 0);
        assert!(s.disguise_ops >= 3);
    }

    #[test]
    fn key_domain_violation_reported() {
        let (codec, _) = codec_with(Arc::new(OvalSubstitution::paper_example(OpCounters::new())));
        let mut leaf = Node::leaf(BlockId(3));
        leaf.keys = vec![99]; // >= v = 13
        leaf.data_ptrs = vec![RecordPtr(1)];
        let mut page = vec![0u8; 256];
        assert!(matches!(
            codec.encode(&leaf, &mut page),
            Err(CodecError::KeyDomain { key: 99, .. })
        ));
    }

    #[test]
    fn binding_detects_block_relocation() {
        // Copying a node page to a different block id must fail decode: the
        // cryptograms are bound to b.
        let (codec, _) = codec_with(Arc::new(OvalSubstitution::paper_example(OpCounters::new())));
        let node = sample_internal();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        // Overwrite the plaintext header block id so the header check passes
        // and the cryptographic binding does the work.
        page[4..8].copy_from_slice(&8u32.to_be_bytes());
        let err = codec.decode(BlockId(8), &page).unwrap_err();
        assert!(matches!(err, CodecError::BindingMismatch { .. }));
    }

    #[test]
    fn identity_disguise_works_as_degenerate_case() {
        let (codec, _) = codec_with(Arc::new(IdentityDisguise));
        let node = sample_internal();
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert_eq!(codec.decode(BlockId(7), &page).unwrap(), node);
    }

    #[test]
    fn max_keys_consistent_with_encode() {
        let (codec, _) = codec_with(Arc::new(IdentityDisguise));
        for page_size in [128usize, 256, 512] {
            let m = codec.max_keys(page_size);
            let node = Node {
                id: BlockId(1),
                keys: (0..m as u64).collect(),
                data_ptrs: (0..m as u64).map(RecordPtr).collect(),
                children: (0..=m as u32).map(BlockId).collect(),
            };
            let mut page = vec![0u8; page_size];
            codec.encode(&node, &mut page).unwrap();
        }
    }
}
