//! The observability neutrality pin: the paper's comparative claims are
//! *counts*, so turning clocks and the flight recorder on or off must
//! never change a single counter. This runs an identical workload for
//! every measured scheme at every observability level and requires the
//! full counter snapshot — logical crypto counters and physical I/O
//! counters alike — to be byte-identical across levels.

use sks_core::{EncipheredBTree, ObsLevel, Scheme, SchemeConfig};

/// A workload touching every counted path: inserts (with replaces),
/// gets (hits and misses), deletes, range scans, compaction sweeps and
/// node-device passes, and a flush.
fn run_workload(scheme: Scheme, level: ObsLevel) -> Vec<(&'static str, u64)> {
    let cfg = SchemeConfig::with_capacity(scheme, 512).observability(level);
    let mut tree = EncipheredBTree::create_in_memory(cfg).unwrap();
    // Exponentiation disguises exclude key 0; start at 1 everywhere so
    // the workload is scheme-independent.
    for k in 1..=120u64 {
        tree.insert(k, vec![k as u8; 48]).unwrap();
    }
    for k in (1..=120u64).step_by(3) {
        tree.insert(k, vec![0xC3; 64]).unwrap(); // replaces
    }
    for k in 1..=160u64 {
        let _ = tree.get(k); // hits and (beyond 120) misses
    }
    for k in (1..=120u64).step_by(2) {
        tree.delete(k).unwrap();
    }
    tree.range(10, 90).unwrap();
    for _ in 0..6 {
        tree.compact_step(8).unwrap();
        tree.compact_nodes(8).unwrap();
    }
    tree.flush().unwrap();
    tree.validate().unwrap();
    tree.snapshot().fields()
}

#[test]
fn observability_preserves_logical_counters_exactly() {
    for scheme in Scheme::MEASURED {
        let baseline = run_workload(scheme, ObsLevel::Off);
        for level in [
            ObsLevel::Counters,
            ObsLevel::Histograms,
            ObsLevel::FullTrace,
        ] {
            let got = run_workload(scheme, level);
            for (base, other) in baseline.iter().zip(&got) {
                assert_eq!(base.0, other.0, "counter order is fixed");
                assert_eq!(
                    base.1,
                    other.1,
                    "{}: counter `{}` changed between Off and {} ({} vs {})",
                    scheme.name(),
                    base.0,
                    level.name(),
                    base.1,
                    other.1,
                );
            }
        }
    }
}
