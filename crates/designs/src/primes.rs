//! Primality testing, factorisation and primitive roots over `u64`.
//!
//! The exponentiation disguise (§4.2 of the paper) needs a prime modulus `N`
//! and a primitive element `g ∈ Z_N`; the Singer construction needs the
//! factorisation of `q³ − 1` to certify a generator of `GF(q³)*`. Everything
//! is deterministic for the full `u64` range.

use crate::arith::{gcd, mul_mod, pow_mod};

/// Deterministic Miller–Rabin witnesses covering all `u64`
/// (Sinclair 2011 / Jaeschke; standard minimal base set).
const MR_WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Deterministic primality test for any `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &MR_WITNESSES {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime `>= n` (panics only if no prime fits in `u64`, which cannot
/// happen for `n <= 18446744073709551557`).
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    loop {
        if is_prime(n) {
            return n;
        }
        n = n.checked_add(2).expect("no prime found in u64 range");
    }
}

/// Largest prime `<= n`, if any.
pub fn prev_prime(mut n: u64) -> Option<u64> {
    if n < 2 {
        return None;
    }
    if n == 2 {
        return Some(2);
    }
    if n.is_multiple_of(2) {
        n -= 1;
    }
    while n >= 3 {
        if is_prime(n) {
            return Some(n);
        }
        n -= 2;
    }
    Some(2)
}

/// Pollard's rho with Brent's cycle detection. Returns a non-trivial factor
/// of composite `n` (which must be odd, composite and not a prime power check
/// is not required — any composite works eventually).
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(n > 1 && !is_prime(n));
    if n.is_multiple_of(2) {
        return 2;
    }
    // Deterministic seed sequence; retry with a different increment on failure.
    let mut c: u64 = 1;
    loop {
        let f = |x: u64| -> u64 { (mul_mod(x, x, n) + c) % n };
        let mut x: u64 = 2;
        let mut y: u64 = 2;
        let mut d: u64 = 1;
        let mut count = 0u64;
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
            count += 1;
            if count > 1 << 24 {
                break; // pathological cycle, retry with new c
            }
        }
        if d != n && d != 1 {
            return d;
        }
        c += 1;
    }
}

/// Full prime factorisation of `n`, returned as ascending `(prime, exponent)`
/// pairs. `factorize(0)` and `factorize(1)` return an empty vector.
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut out: Vec<(u64, u32)> = Vec::new();
    if n < 2 {
        return out;
    }
    // Strip small primes first; this keeps Pollard rho off easy cases.
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        if n == 1 {
            break;
        }
        let mut e = 0u32;
        while n.is_multiple_of(p) {
            n /= p;
            e += 1;
        }
        if e > 0 {
            out.push((p, e));
        }
    }
    let mut stack = vec![n];
    let mut rest: Vec<u64> = Vec::new();
    while let Some(m) = stack.pop() {
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            rest.push(m);
        } else {
            let d = pollard_rho(m);
            stack.push(d);
            stack.push(m / d);
        }
    }
    rest.sort_unstable();
    let mut i = 0;
    while i < rest.len() {
        let p = rest[i];
        let mut e = 0u32;
        while i < rest.len() && rest[i] == p {
            e += 1;
            i += 1;
        }
        out.push((p, e));
    }
    out.sort_unstable();
    out
}

/// The distinct prime factors of `n`.
pub fn distinct_prime_factors(n: u64) -> Vec<u64> {
    factorize(n).into_iter().map(|(p, _)| p).collect()
}

/// Euler's totient via factorisation.
pub fn euler_phi(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut phi = n;
    for (p, _) in factorize(n) {
        phi = phi / p * (p - 1);
    }
    phi
}

/// Multiplicative order of `a` modulo prime `p` (requires `gcd(a,p) = 1`).
pub fn order_mod_prime(a: u64, p: u64) -> u64 {
    debug_assert!(is_prime(p));
    debug_assert!(!a.is_multiple_of(p));
    let group = p - 1;
    let mut ord = group;
    for (q, _) in factorize(group) {
        while ord.is_multiple_of(q) && pow_mod(a, ord / q, p) == 1 {
            ord /= q;
        }
    }
    ord
}

/// `true` iff `g` generates the multiplicative group of `Z_p` (`p` prime).
pub fn is_primitive_root(g: u64, p: u64) -> bool {
    if p == 2 {
        return g % 2 == 1;
    }
    if g.is_multiple_of(p) {
        return false;
    }
    let group = p - 1;
    distinct_prime_factors(group)
        .into_iter()
        .all(|q| pow_mod(g, group / q, p) != 1)
}

/// Smallest primitive root of prime `p`.
pub fn primitive_root(p: u64) -> u64 {
    debug_assert!(is_prime(p), "{p} is not prime");
    if p == 2 {
        return 1;
    }
    let factors = distinct_prime_factors(p - 1);
    (2..p)
        .find(|&g| factors.iter().all(|&q| pow_mod(g, (p - 1) / q, p) != 1))
        .expect("every prime has a primitive root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_primes_classified() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn large_prime_and_composite() {
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime(18_446_744_073_709_551_555));
        assert!(is_prime(2_147_483_647)); // 2^31 - 1 (Mersenne)
        assert!(!is_prime(2_147_483_649));
        // Carmichael numbers must be rejected.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(!is_prime(c), "{c} is Carmichael, not prime");
        }
    }

    #[test]
    fn next_prev_prime() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(17), 17);
        assert_eq!(prev_prime(1), None);
        assert_eq!(prev_prime(2), Some(2));
        assert_eq!(prev_prime(16), Some(13));
    }

    #[test]
    fn factorize_known() {
        assert_eq!(factorize(1), vec![]);
        assert_eq!(factorize(12), vec![(2, 2), (3, 1)]);
        assert_eq!(factorize(97), vec![(97, 1)]);
        assert_eq!(
            factorize(2 * 3 * 5 * 7 * 11 * 13),
            vec![(2, 1), (3, 1), (5, 1), (7, 1), (11, 1), (13, 1)]
        );
        // q^3 - 1 for q = 1009 (Singer-sized input)
        let n = 1009u64.pow(3) - 1;
        let f = factorize(n);
        let back: u64 = f.iter().map(|&(p, e)| p.pow(e)).product();
        assert_eq!(back, n);
        assert!(f.iter().all(|&(p, _)| is_prime(p)));
    }

    #[test]
    fn factorize_semiprime() {
        // Two ~30-bit primes: forces Pollard rho.
        let p = 1_073_741_789u64;
        let q = 1_073_741_827u64;
        assert!(is_prime(p) && is_prime(q));
        assert_eq!(factorize(p * q), vec![(p, 1), (q, 1)]);
    }

    #[test]
    fn phi_known() {
        assert_eq!(euler_phi(1), 1);
        assert_eq!(euler_phi(10), 4);
        assert_eq!(euler_phi(97), 96);
        assert_eq!(euler_phi(36), 12);
    }

    #[test]
    fn primitive_roots_of_13() {
        // Z_13* generators: 2, 6, 7, 11. The paper uses g = 7.
        let roots: Vec<u64> = (1..13).filter(|&g| is_primitive_root(g, 13)).collect();
        assert_eq!(roots, vec![2, 6, 7, 11]);
        assert_eq!(primitive_root(13), 2);
        assert!(is_primitive_root(7, 13));
    }

    #[test]
    fn order_divides_group() {
        for p in [13u64, 97, 1009] {
            for a in 2..20 {
                if a % p != 0 {
                    let ord = order_mod_prime(a, p);
                    assert_eq!((p - 1) % ord, 0);
                    assert_eq!(pow_mod(a, ord, p), 1);
                    assert!((1..ord).all(|e| pow_mod(a, e, p) != 1));
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_factorize_roundtrip(n in 2u64..1_000_000_000) {
            let f = factorize(n);
            let back: u64 = f.iter().map(|&(p, e)| p.pow(e)).product();
            prop_assert_eq!(back, n);
            for &(p, _) in &f {
                prop_assert!(is_prime(p));
            }
        }

        #[test]
        fn prop_is_prime_matches_trial_division(n in 0u64..50_000) {
            let trial = n >= 2 && (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0);
            prop_assert_eq!(is_prime(n), trial);
        }

        #[test]
        fn prop_primitive_root_generates(pidx in 0usize..16) {
            let primes = [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59];
            let p = primes[pidx];
            let g = primitive_root(p);
            let mut seen = vec![false; p as usize];
            let mut x = 1u64;
            for _ in 0..p - 1 {
                seen[x as usize] = true;
                x = mul_mod(x, g, p);
            }
            prop_assert!((1..p).all(|i| seen[i as usize]));
        }
    }
}
