//! The cubic extension field `GF(p³)`, used by the Singer construction of
//! planar difference sets (see [`crate::diffset::DifferenceSet::singer`]).
//!
//! Elements are polynomials `c0 + c1·α + c2·α²` over `GF(p)` reduced modulo a
//! monic irreducible cubic `x³ + a2·x² + a1·x + a0`, represented as `[u64; 3]`
//! coefficient arrays (low degree first).

use crate::gf::Gf;
use crate::primes::{distinct_prime_factors, is_prime};

/// An element of `GF(p³)`: coefficients `[c0, c1, c2]` of `c0 + c1 α + c2 α²`.
pub type Elt = [u64; 3];

/// The field `GF(p³)` for a prime `p`, with a certified irreducible modulus.
#[derive(Debug, Clone)]
pub struct GfCubic {
    base: Gf,
    /// `[a0, a1, a2]` of the monic modulus `x³ + a2 x² + a1 x + a0`.
    modulus_poly: [u64; 3],
    /// Trace of the basis elements `1, α, α²` (precomputed closed forms).
    trace_basis: [u64; 3],
}

impl GfCubic {
    /// Builds `GF(p³)` by searching deterministically for an irreducible
    /// monic cubic over `GF(p)`.
    pub fn new(p: u64) -> Self {
        assert!(is_prime(p), "GF(p^3) characteristic {p} must be prime");
        let base = Gf::new(p);
        // Deterministic scan over x^3 + a1 x + a0 first (depressed cubics),
        // then fall back to full cubics. Roughly 1/3 of cubics are
        // irreducible, so this terminates almost immediately.
        let mut found: Option<[u64; 3]> = None;
        'search: for a1 in 0..p {
            for a0 in 1..p {
                let cand = [a0, a1, 0];
                if cubic_is_irreducible(&base, cand) {
                    found = Some(cand);
                    break 'search;
                }
            }
        }
        let modulus_poly = found.expect("irreducible cubics exist over every GF(p)");
        Self::with_modulus(p, modulus_poly)
    }

    /// Builds `GF(p³)` with an explicit modulus `x³ + a2 x² + a1 x + a0`
    /// given as `[a0, a1, a2]`. Panics if the cubic is reducible.
    pub fn with_modulus(p: u64, modulus_poly: [u64; 3]) -> Self {
        let base = Gf::new(p);
        assert!(
            cubic_is_irreducible(&base, modulus_poly),
            "modulus cubic is reducible over GF({p})"
        );
        let [_, a1, a2] = modulus_poly;
        // Power sums of the roots of the monic cubic: Tr(1) = 3,
        // Tr(α) = -a2, Tr(α²) = a2² - 2·a1.
        let trace_basis = [
            base.reduce(3),
            base.neg(a2),
            base.sub(base.mul(a2, a2), base.mul(2, a1)),
        ];
        GfCubic {
            base,
            modulus_poly,
            trace_basis,
        }
    }

    /// The base field `GF(p)`.
    pub fn base(&self) -> &Gf {
        &self.base
    }

    /// Characteristic `p`.
    pub fn characteristic(&self) -> u64 {
        self.base.modulus()
    }

    /// Field size `p³` as `u128` (may exceed `u64`).
    pub fn order(&self) -> u128 {
        let p = self.base.modulus() as u128;
        p * p * p
    }

    /// Multiplicative group order `p³ − 1` (panics on overflow past `u64`;
    /// Singer parameters keep this far below the limit).
    pub fn group_order(&self) -> u64 {
        let o = self.order() - 1;
        u64::try_from(o).expect("p^3 - 1 must fit in u64 for this construction")
    }

    /// Modulus coefficients `[a0, a1, a2]`.
    pub fn modulus_poly(&self) -> [u64; 3] {
        self.modulus_poly
    }

    pub fn zero(&self) -> Elt {
        [0, 0, 0]
    }

    pub fn one(&self) -> Elt {
        [1, 0, 0]
    }

    /// The adjoined root `α` of the modulus cubic.
    pub fn alpha(&self) -> Elt {
        [0, 1, 0]
    }

    /// Embeds a base-field scalar.
    pub fn scalar(&self, c: u64) -> Elt {
        [self.base.reduce(c), 0, 0]
    }

    pub fn is_zero(&self, a: &Elt) -> bool {
        a.iter().all(|&c| c == 0)
    }

    pub fn add(&self, a: &Elt, b: &Elt) -> Elt {
        [
            self.base.add(a[0], b[0]),
            self.base.add(a[1], b[1]),
            self.base.add(a[2], b[2]),
        ]
    }

    pub fn sub(&self, a: &Elt, b: &Elt) -> Elt {
        [
            self.base.sub(a[0], b[0]),
            self.base.sub(a[1], b[1]),
            self.base.sub(a[2], b[2]),
        ]
    }

    pub fn scale(&self, c: u64, a: &Elt) -> Elt {
        [
            self.base.mul(c, a[0]),
            self.base.mul(c, a[1]),
            self.base.mul(c, a[2]),
        ]
    }

    /// Product with reduction modulo the cubic.
    pub fn mul(&self, a: &Elt, b: &Elt) -> Elt {
        let f = &self.base;
        // Schoolbook convolution to degree 4.
        let mut c = [0u64; 5];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                c[i + j] = f.add(c[i + j], f.mul(ai, bj));
            }
        }
        // Reduce: x³ ≡ -(a2 x² + a1 x + a0).
        let [a0, a1, a2] = self.modulus_poly;
        for deg in (3..=4).rev() {
            let coef = c[deg];
            if coef == 0 {
                continue;
            }
            c[deg] = 0;
            c[deg - 1] = f.sub(c[deg - 1], f.mul(coef, a2));
            c[deg - 2] = f.sub(c[deg - 2], f.mul(coef, a1));
            c[deg - 3] = f.sub(c[deg - 3], f.mul(coef, a0));
        }
        [c[0], c[1], c[2]]
    }

    /// `a^e` by square-and-multiply.
    pub fn pow(&self, a: &Elt, mut e: u64) -> Elt {
        let mut acc = self.one();
        let mut base = *a;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(&acc, &base);
            }
            base = self.mul(&base, &base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via `a^(p³−2)`; `None` for zero.
    pub fn inv(&self, a: &Elt) -> Option<Elt> {
        if self.is_zero(a) {
            return None;
        }
        Some(self.pow(a, self.group_order() - 1))
    }

    /// Field trace to `GF(p)`: `Tr(x) = x + x^p + x^(p²)`, computed via the
    /// precomputed traces of the basis (trace is `GF(p)`-linear).
    pub fn trace(&self, a: &Elt) -> u64 {
        let f = &self.base;
        let t = &self.trace_basis;
        f.add(
            f.add(f.mul(a[0], t[0]), f.mul(a[1], t[1])),
            f.mul(a[2], t[2]),
        )
    }

    /// A generator of the cyclic group `GF(p³)*`, found by deterministic
    /// search certified against the factorisation of `p³ − 1`.
    pub fn primitive_element(&self) -> Elt {
        let n = self.group_order();
        let factors = distinct_prime_factors(n);
        let is_generator = |g: &Elt| -> bool {
            !self.is_zero(g) && factors.iter().all(|&q| self.pow(g, n / q) != self.one())
        };
        // α itself is often primitive; then walk simple affine candidates.
        let alpha = self.alpha();
        if is_generator(&alpha) {
            return alpha;
        }
        let p = self.characteristic();
        for c1 in 1..p {
            for c0 in 0..p {
                let g = [c0, c1, 0];
                if is_generator(&g) {
                    return g;
                }
            }
        }
        for c2 in 1..p {
            for c0 in 0..p {
                let g = [c0, 1, c2];
                if is_generator(&g) {
                    return g;
                }
            }
        }
        unreachable!("GF(p^3)* is cyclic and must contain a generator")
    }
}

/// Irreducibility test for a monic cubic over `GF(p)`: a cubic is reducible
/// iff it has a root in the base field, i.e. iff `gcd(x^p − x, f) ≠ 1`.
fn cubic_is_irreducible(base: &Gf, modulus: [u64; 3]) -> bool {
    let [a0, _, _] = modulus;
    if a0 == 0 {
        return false; // x divides f
    }
    let p = base.modulus();
    if p <= 4096 {
        // Direct root scan is cheapest at small characteristic.
        let coeffs = [modulus[0], modulus[1], modulus[2], 1];
        return (0..p).all(|x| base.eval_poly(&coeffs, x) != 0);
    }
    // x^p mod f by square-and-multiply on degree-<3 residues.
    let xp = poly_pow_x(base, modulus, p);
    // gcd(x^p - x, f): x^p - x as residue is xp with x subtracted.
    let mut g = xp;
    g[1] = base.sub(g[1], 1);
    poly_gcd_is_one(base, modulus, g)
}

/// Computes `x^e mod (x³ + a2 x² + a1 x + a0)` over `GF(p)`.
fn poly_pow_x(base: &Gf, modulus: [u64; 3], e: u64) -> [u64; 3] {
    let fld = CubicModCtx { base, modulus };
    let mut acc = [1u64, 0, 0];
    let mut b = [0u64, 1, 0];
    let mut e = e;
    while e > 0 {
        if e & 1 == 1 {
            acc = fld.mul(&acc, &b);
        }
        b = fld.mul(&b, &b);
        e >>= 1;
    }
    acc
}

/// Minimal residue-multiplication context (avoids constructing a full
/// `GfCubic`, which asserts irreducibility — circular during the test).
struct CubicModCtx<'a> {
    base: &'a Gf,
    modulus: [u64; 3],
}

impl CubicModCtx<'_> {
    fn mul(&self, a: &[u64; 3], b: &[u64; 3]) -> [u64; 3] {
        let f = self.base;
        let mut c = [0u64; 5];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                c[i + j] = f.add(c[i + j], f.mul(ai, bj));
            }
        }
        let [a0, a1, a2] = self.modulus;
        for deg in (3..=4).rev() {
            let coef = c[deg];
            if coef == 0 {
                continue;
            }
            c[deg] = 0;
            c[deg - 1] = f.sub(c[deg - 1], f.mul(coef, a2));
            c[deg - 2] = f.sub(c[deg - 2], f.mul(coef, a1));
            c[deg - 3] = f.sub(c[deg - 3], f.mul(coef, a0));
        }
        [c[0], c[1], c[2]]
    }
}

/// `true` iff `gcd(f, g) == 1` where `f` is the monic cubic `[a0,a1,a2]`+x³
/// and `g` is a polynomial of degree < 3 given by its coefficients.
fn poly_gcd_is_one(base: &Gf, modulus: [u64; 3], g: [u64; 3]) -> bool {
    // Represent polys as Vec<u64> low-first, trimmed.
    let trim = |mut v: Vec<u64>| -> Vec<u64> {
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    };
    let mut a: Vec<u64> = trim(vec![modulus[0], modulus[1], modulus[2], 1]);
    let mut b: Vec<u64> = trim(g.to_vec());
    while !b.is_empty() {
        // a mod b
        let mut r = a.clone();
        let bl = *b.last().unwrap();
        let bl_inv = base.inv(bl).expect("leading coeff nonzero in GF(p)");
        while r.len() >= b.len() && !r.is_empty() {
            let shift = r.len() - b.len();
            let q = base.mul(*r.last().unwrap(), bl_inv);
            for (i, &bc) in b.iter().enumerate() {
                let idx = i + shift;
                r[idx] = base.sub(r[idx], base.mul(q, bc));
            }
            r = trim(r);
        }
        a = b;
        b = r;
    }
    a.len() == 1 // gcd is a nonzero constant
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_small_fields() {
        for p in [2u64, 3, 5, 7, 13, 97] {
            let f = GfCubic::new(p);
            assert_eq!(f.characteristic(), p);
            assert_eq!(f.order(), (p as u128).pow(3));
        }
    }

    #[test]
    fn mul_matches_manual_gf2() {
        // GF(8) with some irreducible cubic; check α³ resolves per modulus.
        let f = GfCubic::new(2);
        let [a0, a1, a2] = f.modulus_poly();
        let alpha = f.alpha();
        let a3 = f.mul(&f.mul(&alpha, &alpha), &alpha);
        // α³ = -(a2 α² + a1 α + a0) = a2 α² + a1 α + a0 over GF(2)
        assert_eq!(a3, [a0, a1, a2]);
    }

    #[test]
    fn group_order_and_inverse() {
        let f = GfCubic::new(5);
        let n = f.group_order();
        assert_eq!(n, 124);
        for elt in [[1u64, 2, 3], [4, 0, 1], [0, 0, 2], [3, 3, 3]] {
            let inv = f.inv(&elt).unwrap();
            assert_eq!(f.mul(&elt, &inv), f.one());
            assert_eq!(f.pow(&elt, n), f.one(), "Lagrange for {elt:?}");
        }
        assert_eq!(f.inv(&f.zero()), None);
    }

    #[test]
    fn primitive_element_has_full_order() {
        for p in [2u64, 3, 5, 7, 11, 13] {
            let f = GfCubic::new(p);
            let g = f.primitive_element();
            let n = f.group_order();
            assert_eq!(f.pow(&g, n), f.one());
            for q in crate::primes::distinct_prime_factors(n) {
                assert_ne!(f.pow(&g, n / q), f.one(), "p={p}, q={q}");
            }
        }
    }

    #[test]
    fn trace_matches_frobenius_definition() {
        // Tr(x) = x + x^p + x^{p²} must land in GF(p) and match closed form.
        for p in [3u64, 5, 7, 13] {
            let f = GfCubic::new(p);
            for elt in [
                [1u64, 0, 0],
                [0, 1, 0],
                [0, 0, 1],
                [2, 1, 2],
                [p - 1, 3 % p, 1],
            ] {
                let frob1 = f.pow(&elt, p);
                let frob2 = f.pow(&frob1, p);
                let s = f.add(&f.add(&elt, &frob1), &frob2);
                assert_eq!(s[1], 0, "trace must be scalar (p={p}, e={elt:?})");
                assert_eq!(s[2], 0);
                assert_eq!(s[0], f.trace(&elt), "closed form (p={p}, e={elt:?})");
            }
        }
    }

    #[test]
    fn trace_is_linear_and_onto() {
        let f = GfCubic::new(7);
        // Linearity over random-ish pairs.
        let a = [3u64, 5, 1];
        let b = [6u64, 2, 4];
        assert_eq!(
            f.trace(&f.add(&a, &b)),
            f.base().add(f.trace(&a), f.trace(&b))
        );
        // Surjectivity: the kernel has size p², so every value is hit p² times.
        let mut counts = [0u64; 7];
        for c0 in 0..7 {
            for c1 in 0..7 {
                for c2 in 0..7 {
                    counts[f.trace(&[c0, c1, c2]) as usize] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 49));
    }

    #[test]
    fn explicit_modulus_rejected_if_reducible() {
        // x³ - 1 = (x-1)(x²+x+1) over GF(7) is reducible.
        let res = std::panic::catch_unwind(|| GfCubic::with_modulus(7, [6, 0, 0]));
        assert!(res.is_err());
    }

    #[test]
    fn larger_characteristic_smoke() {
        // q = 1009 is the Singer scale used by benches.
        let f = GfCubic::new(1009);
        let g = f.primitive_element();
        assert_ne!(f.pow(&g, f.group_order() / 3), f.one());
        assert_eq!(f.pow(&g, f.group_order()), f.one());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_mul_commutes_and_associates(
            a0 in 0u64..13, a1 in 0u64..13, a2 in 0u64..13,
            b0 in 0u64..13, b1 in 0u64..13, b2 in 0u64..13,
            c0 in 0u64..13, c1 in 0u64..13, c2 in 0u64..13,
        ) {
            let f = GfCubic::new(13);
            let a = [a0, a1, a2];
            let b = [b0, b1, b2];
            let c = [c0, c1, c2];
            prop_assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
            prop_assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
            prop_assert_eq!(
                f.mul(&a, &f.add(&b, &c)),
                f.add(&f.mul(&a, &b), &f.mul(&a, &c))
            );
        }

        #[test]
        fn prop_pow_adds_exponents(e1 in 0u64..200, e2 in 0u64..200) {
            let f = GfCubic::new(11);
            let g = f.primitive_element();
            let lhs = f.mul(&f.pow(&g, e1), &f.pow(&g, e2));
            prop_assert_eq!(lhs, f.pow(&g, e1 + e2));
        }
    }
}
