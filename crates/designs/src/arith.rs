//! Modular arithmetic over `u64` operands.
//!
//! Everything here widens to `u128` internally so that all `u64` moduli are
//! supported without overflow. These are the primitive operations the rest of
//! the design machinery (difference sets, finite fields, discrete logs) is
//! built on.

/// `(a + b) mod m`, correct for all operand values with `m > 0`.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    (((a as u128) + (b as u128)) % (m as u128)) as u64
}

/// `(a - b) mod m`, yielding a value in `[0, m)`.
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    let (a, b) = (a % m, b % m);
    if a >= b {
        a - b
    } else {
        a + (m - b)
    }
}

/// `(a * b) mod m` via 128-bit widening.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    (((a as u128) * (b as u128)) % (m as u128)) as u64
}

/// `a^e mod m` by binary exponentiation. `0^0` is defined as `1 mod m`.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// Greatest common divisor (binary-free Euclid; inputs may be zero).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Extended Euclid on signed 128-bit: returns `(g, x, y)` with
/// `a*x + b*y = g = gcd(a, b)`.
pub fn egcd(a: u64, b: u64) -> (u64, i128, i128) {
    let (mut old_r, mut r) = (a as i128, b as i128);
    let (mut old_x, mut x) = (1i128, 0i128);
    let (mut old_y, mut y) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_x, x) = (x, old_x - q * x);
        (old_y, y) = (y, old_y - q * y);
    }
    (old_r as u64, old_x, old_y)
}

/// Modular inverse of `a` modulo `m`, if `gcd(a, m) == 1`.
pub fn inv_mod(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    if m == 1 {
        return Some(0);
    }
    let (g, x, _) = egcd(a % m, m);
    if g != 1 {
        return None;
    }
    let m_i = m as i128;
    Some((((x % m_i) + m_i) % m_i) as u64)
}

/// `true` when `gcd(a, m) == 1`.
#[inline]
pub fn coprime(a: u64, m: u64) -> bool {
    gcd(a, m) == 1
}

/// Integer square root (floor) of a `u64`.
pub fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u64;
    // Newton touch-up: float sqrt is within 1 ulp for u64 range.
    while x.checked_mul(x).is_none_or(|sq| sq > n) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= n) {
        x += 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_mod_wraps() {
        assert_eq!(add_mod(u64::MAX, u64::MAX, 7), 2);
        assert_eq!(add_mod(5, 9, 13), 1);
        assert_eq!(add_mod(0, 0, 1), 0);
    }

    #[test]
    fn sub_mod_basic() {
        assert_eq!(sub_mod(3, 8, 13), 8);
        assert_eq!(sub_mod(8, 3, 13), 5);
        assert_eq!(sub_mod(0, 1, 2), 1);
        assert_eq!(sub_mod(20, 6, 13), 1);
    }

    #[test]
    fn mul_mod_large() {
        // (2^63)(2^63) mod (2^64-59) computed independently.
        let m = u64::MAX - 58;
        let got = mul_mod(1 << 63, 1 << 63, m);
        let want = ((1u128 << 126) % m as u128) as u64;
        assert_eq!(got, want);
    }

    #[test]
    fn pow_mod_known_values() {
        assert_eq!(pow_mod(7, 0, 13), 1);
        assert_eq!(pow_mod(7, 1, 13), 7);
        assert_eq!(pow_mod(7, 2, 13), 10);
        assert_eq!(pow_mod(7, 12, 13), 1); // Fermat
        assert_eq!(pow_mod(2, 64, 1), 0);
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 9), 9);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn inverse_roundtrip_small() {
        for m in [2u64, 13, 97, 1_000_003] {
            for a in 1..m.min(200) {
                if gcd(a, m) == 1 {
                    let inv = inv_mod(a, m).unwrap();
                    assert_eq!(mul_mod(a, inv, m), 1, "a={a} m={m}");
                }
            }
        }
    }

    #[test]
    fn inverse_none_when_not_coprime() {
        assert_eq!(inv_mod(6, 9), None);
        assert_eq!(inv_mod(0, 5), None);
        assert_eq!(inv_mod(4, 0), None);
    }

    #[test]
    fn isqrt_edges() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(u64::MAX), 4294967295);
    }

    proptest! {
        #[test]
        fn prop_pow_mod_matches_naive(a in 0u64..1000, e in 0u64..12, m in 1u64..1000) {
            let mut want = 1u64 % m;
            for _ in 0..e {
                want = (want * a) % m;
            }
            prop_assert_eq!(pow_mod(a, e, m), want);
        }

        #[test]
        fn prop_egcd_bezout(a in 0u64..u64::MAX/2, b in 0u64..u64::MAX/2) {
            let (g, x, y) = egcd(a, b);
            prop_assert_eq!(g, gcd(a, b));
            prop_assert_eq!((a as i128) * x + (b as i128) * y, g as i128);
        }

        #[test]
        fn prop_inv_mod(a in 1u64..100_000, m in 2u64..100_000) {
            match inv_mod(a, m) {
                Some(inv) => prop_assert_eq!(mul_mod(a % m, inv, m), 1 % m),
                None => prop_assert!(gcd(a, m) != 1),
            }
        }

        #[test]
        fn prop_isqrt(n in 0u64..u64::MAX) {
            let r = isqrt(n);
            prop_assert!((r as u128) * (r as u128) <= n as u128);
            prop_assert!(((r as u128) + 1) * ((r as u128) + 1) > n as u128);
        }
    }
}
