//! The prime field `GF(p)`.
//!
//! A lightweight context type: elements are plain `u64` residues and all
//! operations go through a [`Gf`] handle that carries the modulus. This keeps
//! element values trivially copyable and serialisable, which matters because
//! disguised search keys are stored raw in node blocks.

use crate::arith::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod};
use crate::primes::is_prime;

/// A prime field `GF(p)`. Construct with [`Gf::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gf {
    p: u64,
}

impl Gf {
    /// Creates the field `GF(p)`. Panics if `p` is not prime — a non-prime
    /// modulus silently breaks inversion, so this is a programming error.
    pub fn new(p: u64) -> Self {
        assert!(is_prime(p), "GF modulus {p} must be prime");
        Gf { p }
    }

    /// The field characteristic / modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Canonical representative of `x`.
    #[inline]
    pub fn reduce(&self, x: u64) -> u64 {
        x % self.p
    }

    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        add_mod(a, b, self.p)
    }

    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        sub_mod(a, b, self.p)
    }

    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        sub_mod(0, a, self.p)
    }

    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        mul_mod(a, b, self.p)
    }

    /// Multiplicative inverse; `None` for zero.
    #[inline]
    pub fn inv(&self, a: u64) -> Option<u64> {
        inv_mod(a % self.p, self.p)
    }

    /// `a / b`; `None` when `b == 0`.
    #[inline]
    pub fn div(&self, a: u64, b: u64) -> Option<u64> {
        self.inv(b).map(|bi| self.mul(a, bi))
    }

    #[inline]
    pub fn pow(&self, a: u64, e: u64) -> u64 {
        pow_mod(a, e, self.p)
    }

    /// Iterator over all field elements `0..p`.
    pub fn elements(&self) -> impl Iterator<Item = u64> {
        0..self.p
    }

    /// Evaluates the polynomial with coefficients `coeffs` (low-to-high
    /// degree) at `x`, by Horner's rule.
    pub fn eval_poly(&self, coeffs: &[u64], x: u64) -> u64 {
        coeffs
            .iter()
            .rev()
            .fold(0u64, |acc, &c| self.add(self.mul(acc, x), c))
    }

    /// `true` iff `a` is a quadratic residue mod `p` (Euler's criterion);
    /// zero counts as a residue.
    pub fn is_square(&self, a: u64) -> bool {
        let a = a % self.p;
        if a == 0 || self.p == 2 {
            return true;
        }
        self.pow(a, (self.p - 1) / 2) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn field_axioms_gf13() {
        let f = Gf::new(13);
        for a in 0..13 {
            for b in 0..13 {
                assert_eq!(f.add(a, b), (a + b) % 13);
                assert_eq!(f.mul(a, b), (a * b) % 13);
                assert_eq!(f.add(a, f.neg(a)), 0);
                if b != 0 {
                    let q = f.div(a, b).unwrap();
                    assert_eq!(f.mul(q, b), a);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn rejects_composite_modulus() {
        Gf::new(12);
    }

    #[test]
    fn inverse_of_zero_is_none() {
        let f = Gf::new(7);
        assert_eq!(f.inv(0), None);
        assert_eq!(f.div(3, 0), None);
    }

    #[test]
    fn horner_eval() {
        let f = Gf::new(13);
        // 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38 = 12 mod 13
        assert_eq!(f.eval_poly(&[3, 2, 1], 5), 12);
        assert_eq!(f.eval_poly(&[], 5), 0);
        assert_eq!(f.eval_poly(&[7], 5), 7);
    }

    #[test]
    fn quadratic_residues_of_13() {
        let f = Gf::new(13);
        let squares: Vec<u64> = (1..13).filter(|&a| f.is_square(a)).collect();
        assert_eq!(squares, vec![1, 3, 4, 9, 10, 12]);
    }

    proptest! {
        #[test]
        fn prop_distributivity(a in 0u64..97, b in 0u64..97, c in 0u64..97) {
            let f = Gf::new(97);
            prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        }

        #[test]
        fn prop_inverse(a in 1u64..996, pidx in 0usize..3) {
            let p = [997u64, 499, 157][pidx];
            let f = Gf::new(p);
            let a = a % p;
            if a != 0 {
                prop_assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
            }
        }
    }
}
