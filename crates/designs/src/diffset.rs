//! Cyclic `(v, k, λ)` difference sets — the secret material of every disguise
//! in the paper.
//!
//! A subset `D = {d₀, …, d_{k−1}} ⊆ Z_v` is a `(v, k, λ)` difference set when
//! every nonzero residue of `Z_v` arises exactly `λ` times as a difference
//! `dᵢ − dⱼ (mod v)`. Its *development* (the translates `D + y mod v`) is a
//! symmetric BIBD with `b = v` blocks and replication `r = k`; for `λ = 1`
//! the development is a finite projective plane of order `n = k − 1` and the
//! blocks are its *lines* — the object §4 of the paper works with.
//!
//! Constructions provided:
//! * [`DifferenceSet::paper_13_4_1`] — the `(13,4,1)` set `{0,1,3,9}` used in
//!   every worked example of the paper.
//! * [`DifferenceSet::singer`] — planar `(q²+q+1, q+1, 1)` Singer sets for
//!   any prime `q`, built from the trace-zero hyperplane of `GF(q³)`. These
//!   scale to the millions of treatments needed for `v ≫ R` (§4: "we must
//!   have `v ≫ R`, where `R` is the number of records").
//! * [`DifferenceSet::quadratic_residue`] — Paley `(p, (p−1)/2, (p−3)/4)`
//!   sets for primes `p ≡ 3 (mod 4)`.
//! * [`DifferenceSet::brute_force`] — exhaustive search for tiny parameters
//!   (test oracle).

use crate::arith::{coprime, mul_mod};
use crate::gfext::GfCubic;
use crate::primes::is_prime;

/// Errors from difference-set construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Parameters fail a structural precondition (message explains which).
    BadParameters(String),
    /// The element set is not a `(v,k,λ)` difference set.
    NotADifferenceSet {
        residue: u64,
        count: u64,
        expected: u64,
    },
    /// No set exists / was found for the requested parameters.
    NotFound,
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::BadParameters(msg) => write!(f, "bad design parameters: {msg}"),
            DesignError::NotADifferenceSet {
                residue,
                count,
                expected,
            } => write!(
                f,
                "not a difference set: residue {residue} occurs {count} times, expected {expected}"
            ),
            DesignError::NotFound => write!(f, "no difference set found"),
        }
    }
}

impl std::error::Error for DesignError {}

/// A verified cyclic `(v, k, λ)` difference set over `Z_v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferenceSet {
    v: u64,
    k: u64,
    lambda: u64,
    /// Base block, sorted ascending, all `< v`.
    base: Vec<u64>,
}

impl DifferenceSet {
    /// Wraps and verifies an explicit base block as a `(v, k, λ)` set.
    pub fn new(v: u64, lambda: u64, mut base: Vec<u64>) -> Result<Self, DesignError> {
        if v == 0 {
            return Err(DesignError::BadParameters("v must be positive".into()));
        }
        base.sort_unstable();
        base.dedup();
        if base.iter().any(|&d| d >= v) {
            return Err(DesignError::BadParameters(
                "base elements must lie in [0, v)".into(),
            ));
        }
        let k = base.len() as u64;
        // Necessary counting identity: k(k-1) = λ(v-1).
        if k * (k - 1) != lambda * (v - 1) {
            return Err(DesignError::BadParameters(format!(
                "k(k-1) = {} but λ(v-1) = {}",
                k * (k - 1),
                lambda * (v - 1)
            )));
        }
        let ds = DifferenceSet { v, k, lambda, base };
        ds.verify()?;
        Ok(ds)
    }

    /// The `(13, 4, 1)` difference set `{0, 1, 3, 9}` used throughout the
    /// paper's worked examples (a Singer set for the projective plane of
    /// order 3).
    pub fn paper_13_4_1() -> Self {
        DifferenceSet::new(13, 1, vec![0, 1, 3, 9]).expect("the paper's design is valid")
    }

    /// Singer construction: a planar `(q²+q+1, q+1, 1)` difference set for
    /// prime `q`, from the trace-zero points of `PG(2, q)` realised inside
    /// `GF(q³)*`.
    pub fn singer(q: u64) -> Result<Self, DesignError> {
        if !is_prime(q) {
            return Err(DesignError::BadParameters(format!(
                "Singer order q = {q} must be prime (prime powers need GF(p^k) bases)"
            )));
        }
        let v = q * q + q + 1;
        let field = GfCubic::new(q);
        let gamma = field.primitive_element();
        // Points of PG(2,q) are γ^i for i in [0, v); the trace-zero ones form
        // a line, and their indices form a perfect difference set.
        let mut base = Vec::with_capacity((q + 1) as usize);
        let mut x = field.one();
        for i in 0..v {
            if field.trace(&x) == 0 {
                base.push(i);
            }
            x = field.mul(&x, &gamma);
        }
        if base.len() as u64 != q + 1 {
            return Err(DesignError::BadParameters(format!(
                "Singer hyperplane has {} points, expected {}",
                base.len(),
                q + 1
            )));
        }
        DifferenceSet::new(v, 1, base)
    }

    /// Twin-prime construction: for primes `p` and `p + 2`, the residues
    /// `i mod p(p+2)` whose components are both quadratic residues or both
    /// non-residues, together with the multiples of `p + 2`, form a
    /// `(p(p+2), (v−1)/2, (v−3)/4)` difference set.
    pub fn twin_prime(p: u64) -> Result<Self, DesignError> {
        let q = p + 2;
        if !is_prime(p) || !is_prime(q) {
            return Err(DesignError::BadParameters(format!(
                "twin-prime construction needs p and p+2 prime, got p = {p}"
            )));
        }
        let v = p * q;
        let legendre = |x: u64, m: u64| -> i32 {
            // 0 for x ≡ 0, +1 for QR, −1 for non-residue.
            let x = x % m;
            if x == 0 {
                0
            } else if crate::arith::pow_mod(x, (m - 1) / 2, m) == 1 {
                1
            } else {
                -1
            }
        };
        let mut base: Vec<u64> = Vec::with_capacity(((v - 1) / 2) as usize);
        for i in 0..v {
            let lp = legendre(i, p);
            let lq = legendre(i, q);
            // Both QR or both non-QR (product +1), or divisible by q.
            if lp * lq == 1 || (i % q == 0) {
                base.push(i);
            }
        }
        DifferenceSet::new(v, (v - 3) / 4, base)
    }

    /// Paley construction: quadratic residues mod a prime `p ≡ 3 (mod 4)`
    /// form a `(p, (p−1)/2, (p−3)/4)` difference set.
    pub fn quadratic_residue(p: u64) -> Result<Self, DesignError> {
        if !is_prime(p) || p % 4 != 3 {
            return Err(DesignError::BadParameters(format!(
                "QR construction needs a prime p ≡ 3 (mod 4), got {p}"
            )));
        }
        let mut base: Vec<u64> = Vec::with_capacity(((p - 1) / 2) as usize);
        for x in 1..p {
            base.push(mul_mod(x, x, p));
        }
        base.sort_unstable();
        base.dedup();
        DifferenceSet::new(p, (p - 3) / 4, base)
    }

    /// Exhaustive search for a `(v, k, λ)` set containing 0 (every set can be
    /// translated to contain 0). Only sensible for tiny `v`; used as a test
    /// oracle and for exotic small parameters.
    pub fn brute_force(v: u64, k: u64, lambda: u64) -> Result<Self, DesignError> {
        if v > 40 {
            return Err(DesignError::BadParameters(
                "brute force capped at v <= 40".into(),
            ));
        }
        if k > v || k * (k - 1) != lambda * (v - 1) {
            return Err(DesignError::NotFound);
        }
        fn rec(v: u64, k: u64, lambda: u64, chosen: &mut Vec<u64>, next: u64) -> bool {
            if chosen.len() as u64 == k {
                return check_differences(v, lambda, chosen).is_ok();
            }
            for c in next..v {
                chosen.push(c);
                // Prune: no pairwise difference may already exceed λ.
                if partial_ok(v, lambda, chosen) && rec(v, k, lambda, chosen, c + 1) {
                    return true;
                }
                chosen.pop();
            }
            false
        }
        fn partial_ok(v: u64, lambda: u64, chosen: &[u64]) -> bool {
            let mut counts = vec![0u64; v as usize];
            for (i, &a) in chosen.iter().enumerate() {
                for (j, &b) in chosen.iter().enumerate() {
                    if i != j {
                        let d = crate::arith::sub_mod(a, b, v);
                        counts[d as usize] += 1;
                        if counts[d as usize] > lambda {
                            return false;
                        }
                    }
                }
            }
            true
        }
        let mut chosen = vec![0u64];
        if rec(v, k, lambda, &mut chosen, 1) {
            DifferenceSet::new(v, lambda, chosen)
        } else {
            Err(DesignError::NotFound)
        }
    }

    /// Number of treatments (points) `v`.
    pub fn v(&self) -> u64 {
        self.v
    }

    /// Block size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Pair-coverage index `λ`.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// The base block `D` (sorted).
    pub fn base(&self) -> &[u64] {
        &self.base
    }

    /// Re-checks the difference-set property (used by `new`; exposed for
    /// property tests and for validating deserialised secrets).
    pub fn verify(&self) -> Result<(), DesignError> {
        check_differences(self.v, self.lambda, &self.base)
    }

    /// The translate `L_y = D + y (mod v)`, sorted — line `y` of the
    /// development. For `λ = 1` these are exactly the lines of the projective
    /// plane the paper draws its points from.
    pub fn line(&self, y: u64) -> Vec<u64> {
        let y = y % self.v;
        let mut l: Vec<u64> = self
            .base
            .iter()
            .map(|&d| {
                let s = d + y;
                if s >= self.v {
                    s - self.v
                } else {
                    s
                }
            })
            .collect();
        l.sort_unstable();
        l
    }

    /// The translate in *base order* (unsorted): element `i` is
    /// `(dᵢ + y) mod v`. This is the order the paper's tables list points in.
    pub fn line_in_base_order(&self, y: u64) -> Vec<u64> {
        let y = y % self.v;
        self.base
            .iter()
            .map(|&d| {
                let s = d + y;
                if s >= self.v {
                    s - self.v
                } else {
                    s
                }
            })
            .collect()
    }

    /// Multiplies every treatment by `t` (mod v) — the line→oval map of
    /// §4.1. Requires `gcd(t, v) = 1` so the map is invertible. Returns the
    /// image of the *base block*; images of all lines follow by translation
    /// of the multiplied set.
    pub fn multiply(&self, t: u64) -> Result<Vec<u64>, DesignError> {
        if !coprime(t, self.v) {
            return Err(DesignError::BadParameters(format!(
                "multiplier t = {t} must be coprime to v = {}",
                self.v
            )));
        }
        let mut img: Vec<u64> = self.base.iter().map(|&d| mul_mod(d, t, self.v)).collect();
        img.sort_unstable();
        Ok(img)
    }

    /// The oval `O_y = t · L_y (mod v)` in base order — row `y` of the
    /// right-hand table on p. 53 of the paper.
    pub fn oval_in_base_order(&self, y: u64, t: u64) -> Vec<u64> {
        self.line_in_base_order(y)
            .into_iter()
            .map(|x| mul_mod(x, t, self.v))
            .collect()
    }

    /// Sum of the (mod-v reduced) integer treatments on line `L_y` — the
    /// inner sum of the §4.3 substitution. `O(log k)` via the sorted base:
    /// `Σ((dᵢ+y) mod v) = Σdᵢ + k·y − v·#{i : dᵢ ≥ v−y}`.
    pub fn line_sum(&self, y: u64) -> u128 {
        let y = y % self.v;
        let base_sum: u128 = self.base.iter().map(|&d| d as u128).sum();
        let wraps = if y == 0 {
            0u128
        } else {
            let threshold = self.v - y; // dᵢ >= threshold wraps
            let idx = self.base.partition_point(|&d| d < threshold);
            (self.base.len() - idx) as u128
        };
        base_sum + (self.k as u128) * (y as u128) - (self.v as u128) * wraps
    }

    /// Cumulative treatment sum over lines `L_w ..= L_x` — the §4.3
    /// substitute `k̂` for the key assigned line `L_x` with starting line
    /// `L_w`. Sums are *not* reduced mod `v` (paper's explicit rule).
    /// Requires `w <= x < v`.
    pub fn cumulative_sum(&self, w: u64, x: u64) -> u128 {
        assert!(w <= x && x < self.v, "need w <= x < v");
        (w..=x).map(|y| self.line_sum(y)).sum()
    }
}

/// Checks that every nonzero residue occurs exactly `λ` times among pairwise
/// differences of `base`.
fn check_differences(v: u64, lambda: u64, base: &[u64]) -> Result<(), DesignError> {
    let mut counts = vec![0u64; v as usize];
    for (i, &a) in base.iter().enumerate() {
        for (j, &b) in base.iter().enumerate() {
            if i != j {
                let d = crate::arith::sub_mod(a, b, v);
                counts[d as usize] += 1;
            }
        }
    }
    for (residue, &count) in counts.iter().enumerate().skip(1) {
        if count != lambda {
            return Err(DesignError::NotADifferenceSet {
                residue: residue as u64,
                count,
                expected: lambda,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_design_is_valid_and_matches() {
        let ds = DifferenceSet::paper_13_4_1();
        assert_eq!((ds.v(), ds.k(), ds.lambda()), (13, 4, 1));
        assert_eq!(ds.base(), &[0, 1, 3, 9]);
        ds.verify().unwrap();
    }

    #[test]
    fn paper_lines_match_left_table() {
        // Rows of the left-hand table on p. 53 of the paper.
        let ds = DifferenceSet::paper_13_4_1();
        let expected: [[u64; 4]; 13] = [
            [0, 1, 3, 9],
            [1, 2, 4, 10],
            [2, 3, 5, 11],
            [3, 4, 6, 12],
            [4, 5, 7, 0],
            [5, 6, 8, 1],
            [6, 7, 9, 2],
            [7, 8, 10, 3],
            [8, 9, 11, 4],
            [9, 10, 12, 5],
            [10, 11, 0, 6],
            [11, 12, 1, 7],
            [12, 0, 2, 8],
        ];
        for (y, row) in expected.iter().enumerate() {
            assert_eq!(ds.line_in_base_order(y as u64), row.to_vec(), "line {y}");
        }
    }

    #[test]
    fn paper_ovals_match_right_table() {
        // Rows of the right-hand (oval) table on p. 53, t = 7.
        let ds = DifferenceSet::paper_13_4_1();
        let expected: [[u64; 4]; 13] = [
            [0, 7, 8, 11],
            [7, 1, 2, 5],
            [1, 8, 9, 12],
            [8, 2, 3, 6],
            [2, 9, 10, 0],
            [9, 3, 4, 7],
            [3, 10, 11, 1],
            [10, 4, 5, 8],
            [4, 11, 12, 2],
            [11, 5, 6, 9],
            [5, 12, 0, 3],
            [12, 6, 7, 10],
            [6, 0, 1, 4],
        ];
        for (y, row) in expected.iter().enumerate() {
            assert_eq!(ds.oval_in_base_order(y as u64, 7), row.to_vec(), "oval {y}");
        }
    }

    #[test]
    fn paper_cumulative_sums_match_table() {
        // The §4.3 k̂ column: 13, 30, 51, 76, 92, 112, 136, 164, 196, 232,
        // 259, 290, 312.
        let ds = DifferenceSet::paper_13_4_1();
        let expected: [u128; 13] = [13, 30, 51, 76, 92, 112, 136, 164, 196, 232, 259, 290, 312];
        for (x, &want) in expected.iter().enumerate() {
            assert_eq!(ds.cumulative_sum(0, x as u64), want, "k̂ for key {x}");
        }
    }

    #[test]
    fn line_sum_closed_form_matches_naive() {
        let ds = DifferenceSet::paper_13_4_1();
        for y in 0..13 {
            let naive: u128 = ds.line(y).iter().map(|&x| x as u128).sum();
            assert_eq!(ds.line_sum(y), naive, "line {y}");
        }
    }

    #[test]
    fn singer_small_orders() {
        for q in [2u64, 3, 5, 7, 11, 13] {
            let ds = DifferenceSet::singer(q).unwrap();
            assert_eq!(ds.v(), q * q + q + 1);
            assert_eq!(ds.k(), q + 1);
            assert_eq!(ds.lambda(), 1);
            ds.verify().unwrap();
        }
    }

    #[test]
    fn singer_rejects_composite_order() {
        assert!(matches!(
            DifferenceSet::singer(6),
            Err(DesignError::BadParameters(_))
        ));
    }

    #[test]
    fn singer_order_three_is_translate_equivalent_to_paper() {
        // Both are (13,4,1) planar sets; the development must be a projective
        // plane of order 3 either way.
        let ds = DifferenceSet::singer(3).unwrap();
        assert_eq!((ds.v(), ds.k(), ds.lambda()), (13, 4, 1));
    }

    #[test]
    fn twin_prime_sets() {
        for p in [3u64, 5, 11, 17] {
            let ds = DifferenceSet::twin_prime(p).unwrap();
            let v = p * (p + 2);
            assert_eq!(ds.v(), v, "p={p}");
            assert_eq!(ds.k(), (v - 1) / 2);
            assert_eq!(ds.lambda(), (v - 3) / 4);
            ds.verify().unwrap();
        }
        // p or p+2 composite.
        assert!(DifferenceSet::twin_prime(7).is_err()); // 9 composite
        assert!(DifferenceSet::twin_prime(4).is_err());
    }

    #[test]
    fn quadratic_residue_sets() {
        for p in [7u64, 11, 19, 23, 31] {
            let ds = DifferenceSet::quadratic_residue(p).unwrap();
            assert_eq!(ds.v(), p);
            assert_eq!(ds.k(), (p - 1) / 2);
            assert_eq!(ds.lambda(), (p - 3) / 4);
        }
        assert!(DifferenceSet::quadratic_residue(13).is_err()); // 13 ≡ 1 mod 4
        assert!(DifferenceSet::quadratic_residue(15).is_err()); // composite
    }

    #[test]
    fn brute_force_finds_fano() {
        // (7,3,1): the Fano plane.
        let ds = DifferenceSet::brute_force(7, 3, 1).unwrap();
        assert_eq!(ds.k(), 3);
        ds.verify().unwrap();
    }

    #[test]
    fn brute_force_rejects_impossible() {
        assert!(DifferenceSet::brute_force(8, 3, 1).is_err()); // k(k-1) != λ(v-1)
    }

    #[test]
    fn new_rejects_invalid_sets() {
        // Right counting identity, wrong structure: {0,1,2,4} mod 13.
        let err = DifferenceSet::new(13, 1, vec![0, 1, 2, 4]).unwrap_err();
        assert!(matches!(err, DesignError::NotADifferenceSet { .. }));
        // Out-of-range element.
        assert!(DifferenceSet::new(13, 1, vec![0, 1, 3, 13]).is_err());
    }

    #[test]
    fn multiply_requires_coprime() {
        let ds = DifferenceSet::paper_13_4_1();
        assert!(ds.multiply(13).is_err());
        assert!(ds.multiply(0).is_err());
        let img = ds.multiply(7).unwrap();
        assert_eq!(img, vec![0, 7, 8, 11]);
    }

    #[test]
    fn multiplied_planar_set_is_still_a_difference_set() {
        // Multiplication by a unit is an automorphism of Z_v, so the image is
        // again a (v,k,λ) difference set.
        let ds = DifferenceSet::paper_13_4_1();
        for t in (1..13).filter(|&t| crate::arith::coprime(t, 13)) {
            let img = ds.multiply(t).unwrap();
            DifferenceSet::new(13, 1, img).unwrap();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_line_sums_nonneg_and_bounded(y in 0u64..13) {
            let ds = DifferenceSet::paper_13_4_1();
            let s = ds.line_sum(y);
            prop_assert!(s <= (ds.k() as u128) * (ds.v() as u128 - 1));
        }

        #[test]
        fn prop_cumulative_sum_strictly_monotone(w in 0u64..6, a_off in 0u64..3, b_extra in 1u64..4) {
            let ds = DifferenceSet::paper_13_4_1();
            let xa = w + a_off;
            let xb = xa + b_extra; // strictly later line, still < v = 13
            let a = ds.cumulative_sum(w, xa);
            let b = ds.cumulative_sum(w, xb);
            // Longer prefix ⇒ strictly larger sum (line sums are positive for
            // this design since every line contains a nonzero treatment).
            prop_assert!(b > a);
        }

        #[test]
        fn prop_singer_line_sums_match_naive(q_idx in 0usize..3, y in 0u64..50) {
            let q = [3u64, 5, 7][q_idx];
            let ds = DifferenceSet::singer(q).unwrap();
            let y = y % ds.v();
            let naive: u128 = ds.line(y).iter().map(|&x| x as u128).sum();
            prop_assert_eq!(ds.line_sum(y), naive);
        }
    }
}
