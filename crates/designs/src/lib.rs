//! # sks-designs — combinatorial block designs and number theory
//!
//! The mathematical substrate for *Hardjono & Seberry, "Search Key
//! Substitution in the Encipherment of B-Trees" (VLDB 1990)*. The paper's
//! key disguises are parameterised by cyclic `(v, k, λ)` difference sets —
//! in the planar case (`λ = 1`) the lines of a finite projective plane of
//! order `n` with `v = n² + n + 1`, `k = n + 1`.
//!
//! * [`arith`] — `u64` modular arithmetic (`mul_mod`, `pow_mod`, inverses).
//! * [`primes`] — deterministic Miller–Rabin, Pollard rho factorisation,
//!   primitive roots (the `g ∈ Z_N` of §4.2).
//! * [`gf`] / [`gfext`] — `GF(p)` and `GF(p³)` (Singer construction).
//! * [`dlog`] — baby-step/giant-step discrete logs (finding the treatment
//!   `e` with `g^e ≡ k`, §4.2).
//! * [`diffset`] — difference sets: the paper's `(13,4,1)` set, Singer sets
//!   for any prime order, quadratic-residue sets, exhaustive search; line,
//!   oval (`t·L_y`) and cumulative-sum queries.
//! * [`design`] — developments into BIBDs, verification, incidence
//!   matrices, lazy line queries at Singer scale.
//! * [`plane`] — `PG(2, p)` with homogeneous coordinates and conic ovals,
//!   cross-validating the combinatorial view.

pub mod arith;
pub mod design;
pub mod diffset;
pub mod dlog;
pub mod gf;
pub mod gfext;
pub mod plane;
pub mod primes;

pub use design::{BlockDesign, CyclicDesign};
pub use diffset::{DesignError, DifferenceSet};
pub use dlog::DlogTable;
pub use gf::Gf;
pub use gfext::GfCubic;
pub use plane::{Homog, ProjectivePlane};

#[cfg(test)]
mod crosscheck {
    use super::*;

    /// The development of the paper's (13,4,1) set is a projective plane of
    /// order 3 — same parameters as the geometric PG(2,3).
    #[test]
    fn difference_set_development_matches_pg23_parameters() {
        let ds = DifferenceSet::paper_13_4_1();
        let dev = BlockDesign::develop(&ds);
        let plane = ProjectivePlane::new(3);
        assert_eq!(dev.b(), plane.num_points());
        assert_eq!(dev.k(), 4);
        assert_eq!(
            plane.points_on_line(&plane.lines()[0]).len() as u64,
            dev.k()
        );
    }

    /// Singer sets are planar for several prime orders; their developments
    /// satisfy the two-points-one-block axiom exactly like PG(2,q).
    #[test]
    fn singer_development_has_projective_pair_coverage() {
        let ds = DifferenceSet::singer(5).unwrap();
        let dev = BlockDesign::develop(&ds);
        dev.verify_bibd().unwrap();
        assert_eq!(dev.v(), 31);
        assert_eq!(dev.replication().unwrap(), 6);
    }
}
