//! Developments of difference sets into balanced incomplete block designs.
//!
//! The paper treats the blocks of the development as *lines* and indexes them
//! `L₀ … L_{v−1}`. [`BlockDesign`] materialises all `v` blocks (fine for the
//! worked examples and tests); [`CyclicDesign`] answers line queries lazily
//! in `O(k)` so that Singer designs with `v` in the millions cost no memory.

use crate::diffset::{DesignError, DifferenceSet};

/// A fully materialised block design: `b` blocks of size `k` over `v` points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDesign {
    v: u64,
    k: u64,
    lambda: u64,
    blocks: Vec<Vec<u64>>,
}

impl BlockDesign {
    /// Develops a difference set into its symmetric design: blocks
    /// `L_y = D + y (mod v)` for `y = 0 … v−1`.
    pub fn develop(ds: &DifferenceSet) -> Self {
        let blocks = (0..ds.v()).map(|y| ds.line(y)).collect();
        BlockDesign {
            v: ds.v(),
            k: ds.k(),
            lambda: ds.lambda(),
            blocks,
        }
    }

    /// Wraps explicit blocks (they are verified by [`BlockDesign::verify_bibd`],
    /// not here, so exotic designs can be represented too).
    pub fn from_blocks(v: u64, lambda: u64, blocks: Vec<Vec<u64>>) -> Result<Self, DesignError> {
        if blocks.is_empty() {
            return Err(DesignError::BadParameters("no blocks".into()));
        }
        let k = blocks[0].len() as u64;
        if blocks.iter().any(|b| b.len() as u64 != k) {
            return Err(DesignError::BadParameters(
                "all blocks must have equal size".into(),
            ));
        }
        if blocks.iter().flatten().any(|&x| x >= v) {
            return Err(DesignError::BadParameters(
                "block elements must lie in [0, v)".into(),
            ));
        }
        Ok(BlockDesign {
            v,
            k,
            lambda,
            blocks,
        })
    }

    pub fn v(&self) -> u64 {
        self.v
    }

    pub fn k(&self) -> u64 {
        self.k
    }

    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// Number of blocks `b` (equals `v` for symmetric designs).
    pub fn b(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Replication number `r`: how many blocks each point lies on. Computed,
    /// not assumed — [`BlockDesign::verify_bibd`] checks it is constant.
    pub fn replication(&self) -> Result<u64, DesignError> {
        let mut counts = vec![0u64; self.v as usize];
        for block in &self.blocks {
            for &x in block {
                counts[x as usize] += 1;
            }
        }
        let r = counts[0];
        if counts.iter().any(|&c| c != r) {
            return Err(DesignError::BadParameters(
                "replication is not constant across points".into(),
            ));
        }
        Ok(r)
    }

    pub fn blocks(&self) -> &[Vec<u64>] {
        &self.blocks
    }

    pub fn block(&self, y: u64) -> &[u64] {
        &self.blocks[y as usize]
    }

    /// Full BIBD verification: constant block size, constant replication,
    /// every unordered point pair covered by exactly `λ` blocks, and the
    /// counting identities `bk = vr` and `λ(v−1) = r(k−1)`.
    pub fn verify_bibd(&self) -> Result<(), DesignError> {
        let r = self.replication()?;
        let b = self.b();
        if b * self.k != self.v * r {
            return Err(DesignError::BadParameters(format!(
                "bk = {} but vr = {}",
                b * self.k,
                self.v * r
            )));
        }
        if self.lambda * (self.v - 1) != r * (self.k - 1) {
            return Err(DesignError::BadParameters(format!(
                "λ(v-1) = {} but r(k-1) = {}",
                self.lambda * (self.v - 1),
                r * (self.k - 1)
            )));
        }
        // Pair coverage. O(b · k²) — only for materialised (small) designs.
        let v = self.v as usize;
        let mut pair = vec![0u64; v * v];
        for block in &self.blocks {
            for (i, &a) in block.iter().enumerate() {
                for &bpt in &block[i + 1..] {
                    let (lo, hi) = if a < bpt { (a, bpt) } else { (bpt, a) };
                    pair[lo as usize * v + hi as usize] += 1;
                }
            }
        }
        for lo in 0..v {
            for hi in lo + 1..v {
                let c = pair[lo * v + hi];
                if c != self.lambda {
                    return Err(DesignError::NotADifferenceSet {
                        residue: (hi - lo) as u64,
                        count: c,
                        expected: self.lambda,
                    });
                }
            }
        }
        Ok(())
    }

    /// The `v × b` incidence matrix: entry `(x, y)` is 1 iff point `x` lies
    /// on block `y`. Row-major `Vec<Vec<u8>>` for small designs.
    pub fn incidence_matrix(&self) -> Vec<Vec<u8>> {
        let mut m = vec![vec![0u8; self.blocks.len()]; self.v as usize];
        for (y, block) in self.blocks.iter().enumerate() {
            for &x in block {
                m[x as usize][y] = 1;
            }
        }
        m
    }

    /// For `λ = 1` symmetric designs (projective planes): checks the oval
    /// property for a point set — no three of the given points are collinear
    /// (lie on a common block).
    pub fn is_arc(&self, points: &[u64]) -> bool {
        for block in &self.blocks {
            let on = points.iter().filter(|p| block.contains(p)).count();
            if on >= 3 {
                return false;
            }
        }
        true
    }
}

/// A lazy view of the development of a difference set: answers per-line
/// queries without materialising `v` blocks.
#[derive(Debug, Clone)]
pub struct CyclicDesign {
    ds: DifferenceSet,
}

impl CyclicDesign {
    pub fn new(ds: DifferenceSet) -> Self {
        CyclicDesign { ds }
    }

    pub fn difference_set(&self) -> &DifferenceSet {
        &self.ds
    }

    pub fn v(&self) -> u64 {
        self.ds.v()
    }

    pub fn k(&self) -> u64 {
        self.ds.k()
    }

    /// Line `L_y` (sorted).
    pub fn line(&self, y: u64) -> Vec<u64> {
        self.ds.line(y)
    }

    /// Does point `x` lie on line `L_y`? `O(log k)`.
    pub fn incident(&self, x: u64, y: u64) -> bool {
        let v = self.ds.v();
        let x = x % v;
        let y = y % v;
        // x on L_y  iff  (x - y) mod v ∈ D.
        let d = crate::arith::sub_mod(x, y, v);
        self.ds.base().binary_search(&d).is_ok()
    }

    /// All lines through point `x` — exactly `k` of them (`r = k` in a
    /// symmetric design): `L_{(x − d) mod v}` for `d ∈ D`.
    pub fn lines_through(&self, x: u64) -> Vec<u64> {
        let v = self.ds.v();
        let x = x % v;
        let mut ys: Vec<u64> = self
            .ds
            .base()
            .iter()
            .map(|&d| crate::arith::sub_mod(x, d, v))
            .collect();
        ys.sort_unstable();
        ys
    }

    /// The first line containing `x` when scanning `L₀, L₁, …` — the scan
    /// order §4.1 prescribes for locating a search key's treatment.
    pub fn first_line_containing(&self, x: u64) -> u64 {
        self.lines_through(x)
            .into_iter()
            .min()
            .expect("every point lies on k >= 1 lines")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> DifferenceSet {
        DifferenceSet::paper_13_4_1()
    }

    #[test]
    fn development_is_a_projective_plane_of_order_3() {
        let d = BlockDesign::develop(&paper());
        assert_eq!(d.b(), 13);
        assert_eq!(d.replication().unwrap(), 4);
        d.verify_bibd().unwrap();
    }

    #[test]
    fn fano_development_verifies() {
        let ds = DifferenceSet::new(7, 1, vec![0, 1, 3]).unwrap();
        let d = BlockDesign::develop(&ds);
        d.verify_bibd().unwrap();
        assert_eq!(d.replication().unwrap(), 3);
    }

    #[test]
    fn qr_biplane_verifies() {
        // (11, 5, 2) from quadratic residues mod 11.
        let ds = DifferenceSet::quadratic_residue(11).unwrap();
        let d = BlockDesign::develop(&ds);
        d.verify_bibd().unwrap();
    }

    #[test]
    fn incidence_matrix_row_and_column_sums() {
        let d = BlockDesign::develop(&paper());
        let m = d.incidence_matrix();
        for row in &m {
            assert_eq!(row.iter().map(|&x| x as u64).sum::<u64>(), 4); // r = k
        }
        for y in 0..13 {
            let col: u64 = m.iter().map(|row| row[y] as u64).sum();
            assert_eq!(col, 4); // block size k
        }
    }

    #[test]
    fn incidence_identity_m_mt() {
        // For a symmetric 2-design: M·Mᵀ = (k−λ)·I + λ·J — the defining
        // matrix identity (Street & Street, the paper's reference [8]).
        for ds in [
            DifferenceSet::paper_13_4_1(),
            DifferenceSet::new(7, 1, vec![0, 1, 3]).unwrap(),
            DifferenceSet::quadratic_residue(11).unwrap(),
        ] {
            let d = BlockDesign::develop(&ds);
            let m = d.incidence_matrix();
            let v = d.v() as usize;
            let (k, lambda) = (d.k(), d.lambda());
            for i in 0..v {
                for j in 0..v {
                    let dot: u64 = (0..v).map(|c| m[i][c] as u64 * m[j][c] as u64).sum();
                    let want = if i == j { k } else { lambda };
                    assert_eq!(dot, want, "v={v} entry ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn verify_rejects_corrupt_design() {
        let mut blocks = BlockDesign::develop(&paper()).blocks().to_vec();
        blocks[5] = vec![0, 1, 2, 3]; // not a translate
        let d = BlockDesign::from_blocks(13, 1, blocks).unwrap();
        assert!(d.verify_bibd().is_err());
    }

    #[test]
    fn from_blocks_validates_shape() {
        assert!(BlockDesign::from_blocks(13, 1, vec![]).is_err());
        assert!(BlockDesign::from_blocks(13, 1, vec![vec![0, 1], vec![0, 1, 2]]).is_err());
        assert!(BlockDesign::from_blocks(13, 1, vec![vec![0, 13]]).is_err());
    }

    #[test]
    fn arcs_and_ovals() {
        let d = BlockDesign::develop(&paper());
        // Any single line is maximally collinear, so not an arc.
        assert!(!d.is_arc(d.block(0)));
        // Two points are trivially an arc.
        assert!(d.is_arc(&[0, 1]));
        // The multiplied base {0,7,8,11} — check whether the oval image is an
        // arc in the *original* development. (The paper calls the image an
        // "oval"; in the development it is in fact another line iff t is a
        // multiplier of the design. For t=7 it maps lines to lines-of-the-
        // multiplied-design, so just assert is_arc() answers consistently.)
        let img = paper().multiply(7).unwrap();
        let _ = d.is_arc(&img); // must not panic; value asserted in plane.rs tests
    }

    #[test]
    fn cyclic_design_incidence_agrees_with_materialised() {
        let ds = paper();
        let lazy = CyclicDesign::new(ds.clone());
        let full = BlockDesign::develop(&ds);
        for x in 0..13 {
            for y in 0..13 {
                assert_eq!(
                    lazy.incident(x, y),
                    full.block(y).contains(&x),
                    "x={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn lines_through_point() {
        let lazy = CyclicDesign::new(paper());
        for x in 0..13 {
            let ys = lazy.lines_through(x);
            assert_eq!(ys.len(), 4);
            for &y in &ys {
                assert!(lazy.incident(x, y));
            }
        }
        // Scanning from L0 upward, key 7 first appears on line L4 ({4,5,7,0}).
        assert_eq!(lazy.first_line_containing(7), 4);
        // Key 0 is on L0 itself.
        assert_eq!(lazy.first_line_containing(0), 0);
    }

    #[test]
    fn cyclic_design_scales_to_singer_sizes() {
        let ds = DifferenceSet::singer(101).unwrap(); // v = 10303
        let lazy = CyclicDesign::new(ds);
        let v = lazy.v();
        assert_eq!(v, 101 * 101 + 101 + 1);
        for x in [0u64, 1, v / 2, v - 1] {
            let ys = lazy.lines_through(x);
            assert_eq!(ys.len() as u64, lazy.k());
            for y in ys {
                assert!(lazy.incident(x, y));
            }
        }
    }
}
