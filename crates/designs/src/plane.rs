//! Finite projective planes `PG(2, p)` over prime fields, with conics as
//! concrete ovals.
//!
//! §4 of the paper frames the disguise in the projective plane of order `n`
//! (`v = n²+n+1`, `k = n+1`, `λ = 1`), mapping points on *lines* to points on
//! *ovals* ("a set of k points no three of which are collinear",
//! Dembowski 1968). This module provides the geometric model — homogeneous
//! coordinates, incidence, and the standard conic — against which the
//! difference-set development is cross-validated.

use crate::gf::Gf;

/// A point or line of `PG(2, p)` in normalised homogeneous coordinates
/// (first nonzero coordinate scaled to 1). Points and lines are dual, so the
/// same representation serves both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Homog(pub [u64; 3]);

/// The projective plane `PG(2, p)` for prime `p`.
#[derive(Debug, Clone)]
pub struct ProjectivePlane {
    field: Gf,
    points: Vec<Homog>,
}

impl ProjectivePlane {
    pub fn new(p: u64) -> Self {
        let field = Gf::new(p);
        let mut points = Vec::with_capacity((p * p + p + 1) as usize);
        // Canonical representatives: (1, y, z), (0, 1, z), (0, 0, 1).
        for y in 0..p {
            for z in 0..p {
                points.push(Homog([1, y, z]));
            }
        }
        for z in 0..p {
            points.push(Homog([0, 1, z]));
        }
        points.push(Homog([0, 0, 1]));
        ProjectivePlane { field, points }
    }

    /// Plane order `n = p`.
    pub fn order(&self) -> u64 {
        self.field.modulus()
    }

    /// `v = n² + n + 1`.
    pub fn num_points(&self) -> u64 {
        self.points.len() as u64
    }

    /// All points (lines are the same set by duality).
    pub fn points(&self) -> &[Homog] {
        &self.points
    }

    /// Normalises arbitrary homogeneous coordinates to the canonical
    /// representative; `None` for the zero vector.
    pub fn normalize(&self, coords: [u64; 3]) -> Option<Homog> {
        let f = &self.field;
        let c = [
            f.reduce(coords[0]),
            f.reduce(coords[1]),
            f.reduce(coords[2]),
        ];
        let lead = c.iter().position(|&x| x != 0)?;
        let inv = f.inv(c[lead]).expect("nonzero element has inverse");
        let mut out = [0u64; 3];
        for i in 0..3 {
            out[i] = f.mul(c[i], inv);
        }
        Some(Homog(out))
    }

    /// Incidence: point `x` lies on line `l` iff `x · l = 0`.
    pub fn incident(&self, point: &Homog, line: &Homog) -> bool {
        let f = &self.field;
        let dot = f.add(
            f.add(f.mul(point.0[0], line.0[0]), f.mul(point.0[1], line.0[1])),
            f.mul(point.0[2], line.0[2]),
        );
        dot == 0
    }

    /// The unique line through two distinct points (cross product), or
    /// `None` if the points coincide.
    pub fn line_through(&self, a: &Homog, b: &Homog) -> Option<Homog> {
        if a == b {
            return None;
        }
        let f = &self.field;
        let cross = [
            f.sub(f.mul(a.0[1], b.0[2]), f.mul(a.0[2], b.0[1])),
            f.sub(f.mul(a.0[2], b.0[0]), f.mul(a.0[0], b.0[2])),
            f.sub(f.mul(a.0[0], b.0[1]), f.mul(a.0[1], b.0[0])),
        ];
        self.normalize(cross)
    }

    /// Points on a given line — exactly `n + 1` of them.
    pub fn points_on_line(&self, line: &Homog) -> Vec<Homog> {
        self.points
            .iter()
            .filter(|pt| self.incident(pt, line))
            .copied()
            .collect()
    }

    /// `true` iff no three of the given points are collinear (an *arc*;
    /// a `(n+1)`-arc is an oval — Dembowski's definition quoted in §4.1).
    pub fn is_arc(&self, pts: &[Homog]) -> bool {
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let Some(line) = self.line_through(&pts[i], &pts[j]) else {
                    return false; // duplicate points
                };
                for (k, pt) in pts.iter().enumerate() {
                    if k != i && k != j && self.incident(pt, &line) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The standard conic `{(1, t, t²) : t ∈ GF(p)} ∪ {(0, 0, 1)}` — an oval
    /// of `n + 1` points for odd `p` (Segre's theorem says every oval in odd
    /// order planes is such a conic).
    pub fn standard_conic(&self) -> Vec<Homog> {
        let f = &self.field;
        let mut pts: Vec<Homog> = f.elements().map(|t| Homog([1, t, f.mul(t, t)])).collect();
        pts.push(Homog([0, 0, 1]));
        pts
    }

    /// Enumerates all lines (dual points) of the plane.
    pub fn lines(&self) -> Vec<Homog> {
        self.points.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_order() {
        for p in [2u64, 3, 5, 7, 11] {
            let plane = ProjectivePlane::new(p);
            assert_eq!(plane.num_points(), p * p + p + 1);
            // Every line has n+1 points.
            for line in plane.lines().iter().take(5) {
                assert_eq!(plane.points_on_line(line).len() as u64, p + 1);
            }
        }
    }

    #[test]
    fn two_points_one_line_axiom() {
        let plane = ProjectivePlane::new(3);
        let pts = plane.points().to_vec();
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                let l = plane.line_through(a, b).unwrap();
                assert!(plane.incident(a, &l));
                assert!(plane.incident(b, &l));
                // Uniqueness: no other line contains both.
                let count = plane
                    .lines()
                    .iter()
                    .filter(|m| plane.incident(a, m) && plane.incident(b, m))
                    .count();
                assert_eq!(count, 1, "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn two_lines_meet_in_one_point() {
        let plane = ProjectivePlane::new(3);
        let lines = plane.lines();
        for (i, l1) in lines.iter().enumerate() {
            for l2 in &lines[i + 1..] {
                let common = plane
                    .points()
                    .iter()
                    .filter(|pt| plane.incident(pt, l1) && plane.incident(pt, l2))
                    .count();
                assert_eq!(common, 1);
            }
        }
    }

    #[test]
    fn standard_conic_is_an_oval() {
        for p in [3u64, 5, 7, 11, 13] {
            let plane = ProjectivePlane::new(p);
            let conic = plane.standard_conic();
            assert_eq!(conic.len() as u64, p + 1, "oval size is n+1");
            assert!(
                plane.is_arc(&conic),
                "conic must have no 3 collinear (p={p})"
            );
        }
    }

    #[test]
    fn lines_are_not_arcs() {
        let plane = ProjectivePlane::new(5);
        let line = Homog([1, 0, 0]);
        let pts = plane.points_on_line(&line);
        assert!(!plane.is_arc(&pts));
    }

    #[test]
    fn normalize_canonicalises_scalar_multiples() {
        let plane = ProjectivePlane::new(7);
        let a = plane.normalize([2, 4, 6]).unwrap();
        let b = plane.normalize([1, 2, 3]).unwrap();
        assert_eq!(a, b);
        assert_eq!(plane.normalize([0, 0, 0]), None);
    }

    #[test]
    fn plane_order_3_matches_paper_design_parameters() {
        // The paper's (13,4,1) design is the projective plane of order 3.
        let plane = ProjectivePlane::new(3);
        assert_eq!(plane.num_points(), 13);
        assert_eq!(plane.points_on_line(&Homog([1, 0, 0])).len(), 4);
    }
}
