//! Block-cipher modes of operation over [`BlockCipher64`]: ECB, CBC and CTR
//! with PKCS#7-style padding where applicable.
//!
//! Bayer & Metzger propose both block and progressive (stream) encipherment
//! of pages; our node codecs use CBC for whole-page encipherment (a block
//! mode with position dependence) and per-unit ECB for the lazily decrypted
//! triplet scheme, and CTR stands in for their progressive cipher.

use crate::cipher::BlockCipher64;

/// Errors from mode-level decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModeError {
    /// Ciphertext length is not a whole number of blocks.
    RaggedCiphertext,
    /// Padding bytes are inconsistent (wrong key or corrupted data).
    BadPadding,
}

impl std::fmt::Display for ModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModeError::RaggedCiphertext => write!(f, "ciphertext is not block-aligned"),
            ModeError::BadPadding => write!(f, "invalid padding after decryption"),
        }
    }
}

impl std::error::Error for ModeError {}

const BLOCK: usize = 8;

/// PKCS#7 pad to a multiple of 8 bytes (always adds at least one byte).
pub fn pad(data: &[u8]) -> Vec<u8> {
    let pad_len = BLOCK - (data.len() % BLOCK);
    let mut out = Vec::with_capacity(data.len() + pad_len);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad_len as u8, pad_len));
    out
}

/// Removes and validates PKCS#7 padding.
pub fn unpad(data: &[u8]) -> Result<Vec<u8>, ModeError> {
    if data.is_empty() || !data.len().is_multiple_of(BLOCK) {
        return Err(ModeError::RaggedCiphertext);
    }
    let pad_len = *data.last().unwrap() as usize;
    if pad_len == 0 || pad_len > BLOCK || pad_len > data.len() {
        return Err(ModeError::BadPadding);
    }
    let (body, padding) = data.split_at(data.len() - pad_len);
    if padding.iter().any(|&b| b as usize != pad_len) {
        return Err(ModeError::BadPadding);
    }
    Ok(body.to_vec())
}

fn blocks_of(data: &[u8]) -> impl Iterator<Item = u64> + '_ {
    data.chunks_exact(BLOCK)
        .map(|c| u64::from_be_bytes(c.try_into().expect("exact chunk")))
}

/// ECB encryption with PKCS#7 padding.
pub fn ecb_encrypt<C: BlockCipher64>(cipher: &C, plaintext: &[u8]) -> Vec<u8> {
    let padded = pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    for b in blocks_of(&padded) {
        out.extend_from_slice(&cipher.encrypt_block(b).to_be_bytes());
    }
    out
}

/// ECB decryption with padding validation.
pub fn ecb_decrypt<C: BlockCipher64>(cipher: &C, ciphertext: &[u8]) -> Result<Vec<u8>, ModeError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK) {
        return Err(ModeError::RaggedCiphertext);
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    for b in blocks_of(ciphertext) {
        out.extend_from_slice(&cipher.decrypt_block(b).to_be_bytes());
    }
    unpad(&out)
}

/// CBC encryption with PKCS#7 padding and an explicit 64-bit IV.
pub fn cbc_encrypt<C: BlockCipher64>(cipher: &C, iv: u64, plaintext: &[u8]) -> Vec<u8> {
    let padded = pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    let mut prev = iv;
    for b in blocks_of(&padded) {
        let ct = cipher.encrypt_block(b ^ prev);
        out.extend_from_slice(&ct.to_be_bytes());
        prev = ct;
    }
    out
}

/// CBC decryption with padding validation.
pub fn cbc_decrypt<C: BlockCipher64>(
    cipher: &C,
    iv: u64,
    ciphertext: &[u8],
) -> Result<Vec<u8>, ModeError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK) {
        return Err(ModeError::RaggedCiphertext);
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = iv;
    for b in blocks_of(ciphertext) {
        let pt = cipher.decrypt_block(b) ^ prev;
        out.extend_from_slice(&pt.to_be_bytes());
        prev = b;
    }
    unpad(&out)
}

/// CTR keystream XOR — encryption and decryption are the same operation; no
/// padding, output length equals input length. This is the "progressive
/// cipher" stand-in.
pub fn ctr_xor<C: BlockCipher64>(cipher: &C, nonce: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (i, chunk) in data.chunks(BLOCK).enumerate() {
        let ks = cipher
            .encrypt_block(nonce.wrapping_add(i as u64))
            .to_be_bytes();
        for (j, &b) in chunk.iter().enumerate() {
            out.push(b ^ ks[j]);
        }
    }
    out
}

/// CBC-MAC over the data with a zero IV — Denning-style cryptographic
/// checksum used by the high-level security filter (§4.3 / ref. 2).
pub fn cbc_mac<C: BlockCipher64>(cipher: &C, data: &[u8]) -> u64 {
    let padded = pad(data);
    let mut mac = 0u64;
    for b in blocks_of(&padded) {
        mac = cipher.encrypt_block(b ^ mac);
    }
    mac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::Des;
    use crate::speck::Speck64;
    use proptest::prelude::*;

    fn des() -> Des {
        Des::new(0x133457799BBCDFF1)
    }

    #[test]
    fn pad_unpad_roundtrip_all_lengths() {
        for len in 0..64 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(unpad(&pad(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn unpad_rejects_garbage() {
        assert_eq!(unpad(&[]), Err(ModeError::RaggedCiphertext));
        assert_eq!(unpad(&[1, 2, 3]), Err(ModeError::RaggedCiphertext));
        assert_eq!(unpad(&[0; 8]), Err(ModeError::BadPadding)); // pad byte 0
        let mut bad = pad(b"hello");
        bad[7] = 9; // pad length > block
        assert_eq!(unpad(&bad), Err(ModeError::BadPadding));
        let mut inconsistent = pad(b"hello");
        inconsistent[5] = 0xAA; // pad bytes disagree
        assert_eq!(unpad(&inconsistent), Err(ModeError::BadPadding));
    }

    #[test]
    fn ecb_leaks_equal_blocks_cbc_does_not() {
        let c = des();
        let data = [0x42u8; 32]; // four identical blocks
        let ecb = ecb_encrypt(&c, &data);
        assert_eq!(ecb[0..8], ecb[8..16], "ECB exposes repetition");
        let cbc = cbc_encrypt(&c, 0xdeadbeef, &data);
        assert_ne!(cbc[0..8], cbc[8..16], "CBC hides repetition");
    }

    #[test]
    fn cbc_iv_changes_ciphertext() {
        let c = des();
        let a = cbc_encrypt(&c, 1, b"same plaintext");
        let b = cbc_encrypt(&c, 2, b"same plaintext");
        assert_ne!(a, b);
        assert_eq!(cbc_decrypt(&c, 1, &a).unwrap(), b"same plaintext");
        assert_eq!(cbc_decrypt(&c, 2, &b).unwrap(), b"same plaintext");
    }

    #[test]
    fn decrypt_with_wrong_key_fails_or_garbles() {
        let a = des();
        let b = Des::new(0x0123456789ABCDEF);
        let ct = cbc_encrypt(&a, 7, b"a secret record payload");
        match cbc_decrypt(&b, 7, &ct) {
            Err(_) => {}                                          // padding caught it
            Ok(pt) => assert_ne!(pt, b"a secret record payload"), // or it garbled
        }
    }

    #[test]
    fn ctr_is_length_preserving_and_involutive() {
        let c = des();
        let data = b"stream of thirteen"; // 18 bytes, not block aligned
        let ct = ctr_xor(&c, 99, data);
        assert_eq!(ct.len(), data.len());
        assert_eq!(ctr_xor(&c, 99, &ct), data);
        assert_ne!(ctr_xor(&c, 100, &ct), data); // nonce matters
    }

    #[test]
    fn cbc_mac_detects_tampering() {
        let c = des();
        let mac = cbc_mac(&c, b"employee=17;salary=90000");
        assert_ne!(mac, cbc_mac(&c, b"employee=17;salary=90001"));
        assert_ne!(
            mac,
            cbc_mac(&Des::new(0x1111111111111111), b"employee=17;salary=90000")
        );
        // Deterministic.
        assert_eq!(mac, cbc_mac(&c, b"employee=17;salary=90000"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_ecb_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256), key in any::<u64>()) {
            let c = Des::new(key);
            prop_assert_eq!(ecb_decrypt(&c, &ecb_encrypt(&c, &data)).unwrap(), data);
        }

        #[test]
        fn prop_cbc_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256), key in any::<u128>(), iv in any::<u64>()) {
            let c = Speck64::from_u128(key);
            prop_assert_eq!(cbc_decrypt(&c, iv, &cbc_encrypt(&c, iv, &data)).unwrap(), data);
        }

        #[test]
        fn prop_ctr_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256), key in any::<u64>(), nonce in any::<u64>()) {
            let c = Des::new(key);
            prop_assert_eq!(ctr_xor(&c, nonce, &ctr_xor(&c, nonce, &data)), data);
        }
    }
}
