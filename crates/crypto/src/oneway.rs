//! One-way functions.
//!
//! §3 of the paper: *"The function f can be a one way function, or even an
//! encryption function."* We provide a Davies–Meyer compression function
//! over a 64-bit block cipher (one-way under the ideal-cipher model) plus a
//! fast non-cryptographic mixer for experiments that only need a fixed
//! pseudo-random relabelling.

use crate::cipher::BlockCipher64;
use crate::des::Des;
use crate::speck::Speck64;

/// Davies–Meyer: `H(x) = E_x(m) ⊕ m` — the *input* is used as the DES key,
/// so inverting requires breaking the cipher's key schedule.
///
/// Caveat inherited from DES: parity bits of the key are ignored, so inputs
/// differing only in bits 0, 8, 16, … of each byte collide. Use
/// [`davies_meyer_speck`] when injectivity over dense integer ranges
/// matters.
pub fn davies_meyer_des(x: u64, m: u64) -> u64 {
    Des::new(x).encrypt_block(m) ^ m
}

/// Davies–Meyer over Speck64/128 (input expanded to the 128-bit key by
/// concatenating `x` with its bitwise complement).
pub fn davies_meyer_speck(x: u64, m: u64) -> u64 {
    let key = ((x as u128) << 64) | (!x as u128);
    Speck64::from_u128(key).encrypt_block(m) ^ m
}

/// A Merkle–Damgård style 64-bit hash of a byte string, chaining
/// Davies–Meyer compressions. Good enough for fingerprints and cache keys in
/// the experiments; *not* collision-resistant at a modern security level
/// (64-bit output).
pub fn hash64(data: &[u8]) -> u64 {
    let mut state = 0x6a09e667f3bcc908u64; // sqrt(2) fractional bits
    for chunk in data.chunks(8) {
        let mut block = [0u8; 8];
        block[..chunk.len()].copy_from_slice(chunk);
        block[7] ^= chunk.len() as u8; // length tweak distinguishes short tails
        state = davies_meyer_speck(state, u64::from_be_bytes(block));
    }
    // Finalise with the total length to prevent extension-style collisions.
    davies_meyer_speck(state, data.len() as u64)
}

/// SplitMix64 finaliser — an invertible-but-scrambling mixer. This is the
/// *non*-secure relabelling baseline used to contrast with design-based
/// disguises in the security experiments.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Inverse of [`mix64`] (it is a bijection on `u64`).
pub fn unmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 31) ^ (x >> 62)).wrapping_mul(0x319642b2d24d8ec3);
    x = (x ^ (x >> 27) ^ (x >> 54)).wrapping_mul(0x96de1b173f119089);
    x = x ^ (x >> 30) ^ (x >> 60);
    x.wrapping_sub(0x9e3779b97f4a7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn davies_meyer_is_deterministic_and_spread() {
        let a = davies_meyer_des(1, 0);
        assert_eq!(a, davies_meyer_des(1, 0));
        assert_ne!(a, davies_meyer_des(2, 0));
        assert_ne!(a, davies_meyer_des(1, 1));
        // Speck keys every bit, so sequential inputs must not collide.
        let outs: HashSet<u64> = (0..512u64).map(|x| davies_meyer_speck(x, 0)).collect();
        assert_eq!(outs.len(), 512, "no collisions among 512 sequential inputs");
    }

    #[test]
    fn davies_meyer_des_collides_on_parity_bits() {
        // DES ignores key parity bits (LSB of each byte): documented caveat.
        assert_eq!(davies_meyer_des(0, 0), davies_meyer_des(1, 0));
        // Flipping a *keyed* bit changes the output.
        assert_ne!(davies_meyer_des(0, 0), davies_meyer_des(2, 0));
    }

    #[test]
    fn hash64_sensitivity() {
        assert_ne!(hash64(b"record-a"), hash64(b"record-b"));
        assert_ne!(hash64(b""), hash64(b"\0"));
        assert_ne!(hash64(b"ab"), hash64(b"a\0b"));
        // Length-tail discrimination: same prefix, different tail lengths.
        assert_ne!(
            hash64(&[1, 2, 3, 4, 5, 6, 7, 8]),
            hash64(&[1, 2, 3, 4, 5, 6, 7, 8, 0])
        );
        assert_eq!(hash64(b"stable"), hash64(b"stable"));
    }

    #[test]
    fn mix64_avalanche() {
        let d = (mix64(0) ^ mix64(1)).count_ones();
        assert!((16..=48).contains(&d), "weak mixing: {d}");
    }

    proptest! {
        #[test]
        fn prop_mix64_bijective(x in any::<u64>()) {
            prop_assert_eq!(unmix64(mix64(x)), x);
            prop_assert_eq!(mix64(unmix64(x)), x);
        }

        #[test]
        fn prop_hash64_no_trivial_collisions(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(hash64(&a.to_be_bytes()), hash64(&b.to_be_bytes()));
        }
    }
}
