//! # sks-crypto — the cryptographic substrate
//!
//! Every cryptographic primitive the VLDB 1990 paper depends on, implemented
//! from scratch (the offline dependency set contains no cryptography, and
//! reproducing the 1976/1977/1978-era machinery is part of the exercise):
//!
//! * [`des`] — FIPS 46 DES and 3DES (§5 names DES for node/data blocks).
//! * [`rsa`] / [`bignum`] — textbook RSA in secret-parameter mode over an
//!   in-crate bignum (§5's second cryptosystem).
//! * [`speck`] — Speck64/128, the modern software stand-in for the
//!   *hardware* encryption module Bayer–Metzger assume.
//! * [`modes`] — ECB/CBC/CTR and a CBC-MAC checksum (Denning-style, for the
//!   §4.3 security filter).
//! * [`pagekey`] — the Bayer–Metzger per-page key derivation `PK(K_E, P_id)`.
//! * [`oneway`] — one-way functions for the disguise function `f` of §3.
//! * [`multilevel`] — the Akl–Taylor-style multilevel key hierarchy of §5 /
//!   reference \[14\].
//!
//! **Security warning:** these are faithful reproductions of historical
//! algorithms for a systems-reproduction study. None of this is suitable
//! for protecting real data today.

pub mod bignum;
pub mod cipher;
pub mod des;
pub mod modes;
pub mod multilevel;
pub mod oneway;
pub mod pagekey;
pub mod rsa;
pub mod speck;

pub use bignum::BigUint;
pub use cipher::{BlockCipher64, IdentityCipher};
pub use des::{Des, TripleDes};
pub use modes::ModeError;
pub use multilevel::{ClearanceKey, KeyHierarchy};
pub use pagekey::{PageCipherKind, PageKeyScheme};
pub use rsa::{RsaError, RsaKey};
pub use speck::Speck64;
