//! Speck64/128 — a lightweight ARX block cipher (Beaulieu et al., NSA 2013).
//!
//! The paper predates Speck by two decades; it is included as the "fast
//! software cipher" arm of experiment E7 (DES is slow in software, and the
//! paper assumes *hardware* DES — a modern ARX cipher is the honest software
//! stand-in for that assumption) and as a second, independent
//! `BlockCipher64` to keep the codecs honestly generic.

use crate::cipher::BlockCipher64;

const ROUNDS: usize = 27;

/// Speck64/128: 64-bit blocks, 128-bit keys.
#[derive(Clone)]
pub struct Speck64 {
    round_keys: [u32; ROUNDS],
}

impl std::fmt::Debug for Speck64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Speck64 {{ round_keys: <redacted> }}")
    }
}

#[inline]
fn round_enc(x: &mut u32, y: &mut u32, k: u32) {
    *x = x.rotate_right(8).wrapping_add(*y) ^ k;
    *y = y.rotate_left(3) ^ *x;
}

#[inline]
fn round_dec(x: &mut u32, y: &mut u32, k: u32) {
    *y = (*y ^ *x).rotate_right(3);
    *x = (*x ^ k).wrapping_sub(*y).rotate_left(8);
}

impl Speck64 {
    /// Key words in the paper's notation `(K3, K2, K1, K0)`, i.e. the
    /// 128-bit key is `K3 ‖ K2 ‖ K1 ‖ K0` big-endian.
    pub fn new(key: [u32; 4]) -> Self {
        let [k3, k2, k1, k0] = key;
        let mut ks = [0u32; ROUNDS];
        let mut l = [k1, k2, k3];
        let mut k = k0;
        for i in 0..ROUNDS {
            ks[i] = k;
            let li = l[i % 3];
            let new_l = k.wrapping_add(li.rotate_right(8)) ^ (i as u32);
            l[i % 3] = new_l;
            k = k.rotate_left(3) ^ new_l;
        }
        Speck64 { round_keys: ks }
    }

    /// Builds from a 128-bit key value (big-endian word split).
    pub fn from_u128(key: u128) -> Self {
        Speck64::new([
            (key >> 96) as u32,
            (key >> 64) as u32,
            (key >> 32) as u32,
            key as u32,
        ])
    }
}

impl BlockCipher64 for Speck64 {
    fn encrypt_block(&self, block: u64) -> u64 {
        let mut x = (block >> 32) as u32;
        let mut y = block as u32;
        for &k in &self.round_keys {
            round_enc(&mut x, &mut y, k);
        }
        ((x as u64) << 32) | y as u64
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        let mut x = (block >> 32) as u32;
        let mut y = block as u32;
        for &k in self.round_keys.iter().rev() {
            round_dec(&mut x, &mut y, k);
        }
        ((x as u64) << 32) | y as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn official_test_vector() {
        // Speck64/128 vector from the Speck paper (ePrint 2013/404):
        // key = 1b1a1918 13121110 0b0a0908 03020100
        // pt  = 3b726574 7475432d, ct = 8c6fa548 454e028b
        let cipher = Speck64::new([0x1b1a1918, 0x13121110, 0x0b0a0908, 0x03020100]);
        let pt = 0x3b7265747475432du64;
        let ct = 0x8c6fa548454e028bu64;
        assert_eq!(cipher.encrypt_block(pt), ct);
        assert_eq!(cipher.decrypt_block(ct), pt);
    }

    #[test]
    fn from_u128_matches_words() {
        let a = Speck64::new([0x1b1a1918, 0x13121110, 0x0b0a0908, 0x03020100]);
        let b = Speck64::from_u128(0x1b1a1918_13121110_0b0a0908_03020100u128);
        assert_eq!(a.encrypt_block(99), b.encrypt_block(99));
    }

    #[test]
    fn avalanche() {
        let cipher = Speck64::from_u128(0x0011223344556677_8899aabbccddeeffu128);
        let base = cipher.encrypt_block(0);
        let diff = (base ^ cipher.encrypt_block(1)).count_ones();
        assert!((20..=44).contains(&diff), "poor avalanche: {diff}");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(key in any::<u128>(), pt in any::<u64>()) {
            let cipher = Speck64::from_u128(key);
            prop_assert_eq!(cipher.decrypt_block(cipher.encrypt_block(pt)), pt);
        }

        #[test]
        fn prop_distinct_keys_distinct_ciphertexts(key in any::<u128>(), pt in any::<u64>()) {
            let a = Speck64::from_u128(key);
            let b = Speck64::from_u128(key ^ 1);
            // Not a guarantee in theory, but a collision here would indicate a
            // key-schedule bug in practice.
            prop_assert_ne!(a.encrypt_block(pt), b.encrypt_block(pt));
        }
    }
}
