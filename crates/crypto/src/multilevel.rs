//! A multilevel key hierarchy in the style of Hardjono & Seberry's 1989
//! ACSC paper (reference \[14\] of the B-tree paper), realised with the
//! Akl–Taylor exponent construction over an RSA modulus.
//!
//! §5 suggests that a multilevel RSA organisation "may also allow each
//! triplet in a node block to be assigned a security level, restricting
//! access to data by users of lower security clearances". Here, a user
//! cleared at level `ℓ` holds `K_ℓ = x^(p₁·…·p_{ℓ−1}) mod n` and can derive
//! `K_m` for every *less* sensitive level `m ≥ ℓ` by further exponentiation;
//! going the other way requires extracting prime roots modulo a composite of
//! unknown factorisation.

use rand::Rng;

use crate::bignum::BigUint;
use crate::oneway::hash64;

/// Security levels are 1-based: level 1 is the most privileged (Top Secret),
/// larger numbers are progressively less sensitive.
pub type Level = u32;

/// Distinct small odd primes used as the per-level exponents.
const LEVEL_PRIMES: [u64; 16] = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59];

/// The central authority's view: can mint the key for any level.
#[derive(Debug, Clone)]
pub struct KeyHierarchy {
    n: BigUint,
    master: BigUint,
    levels: u32,
}

/// A single user's clearance: key material for one level, from which all
/// lower-sensitivity level keys are derivable.
#[derive(Debug, Clone)]
pub struct ClearanceKey {
    n: BigUint,
    key: BigUint,
    level: Level,
    levels: u32,
}

/// Errors from hierarchy operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// Level is zero or exceeds the configured depth.
    BadLevel { level: Level, levels: u32 },
    /// Derivation was requested for a *more* privileged level.
    InsufficientClearance { have: Level, want: Level },
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::BadLevel { level, levels } => {
                write!(f, "level {level} outside 1..={levels}")
            }
            HierarchyError::InsufficientClearance { have, want } => {
                write!(f, "clearance at level {have} cannot derive level {want}")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

impl KeyHierarchy {
    /// Creates a hierarchy of `levels` levels over a fresh `bits`-bit RSA
    /// modulus with a random secret master value `x`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize, levels: u32) -> Self {
        assert!(
            (1..=LEVEL_PRIMES.len() as u32).contains(&levels),
            "1..={} levels supported",
            LEVEL_PRIMES.len()
        );
        let half = bits / 2;
        let p = BigUint::random_prime(rng, half);
        let q = BigUint::random_prime(rng, bits - half);
        let n = p.mul(&q);
        // Master secret x in [2, n).
        let master = loop {
            let x = BigUint::random_below(rng, &n);
            if !x.is_zero() && !x.is_one() {
                break x;
            }
        };
        KeyHierarchy { n, master, levels }
    }

    pub fn levels(&self) -> u32 {
        self.levels
    }

    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Exponent for level `ℓ`: the product `p₁ … p_{ℓ−1}` (so level 1 gets
    /// the master itself).
    fn exponent_for(level: Level) -> BigUint {
        let mut t = BigUint::one();
        for &p in &LEVEL_PRIMES[..(level - 1) as usize] {
            t = t.mul(&BigUint::from_u64(p));
        }
        t
    }

    /// Issues the clearance key for `level`.
    pub fn clearance(&self, level: Level) -> Result<ClearanceKey, HierarchyError> {
        if level == 0 || level > self.levels {
            return Err(HierarchyError::BadLevel {
                level,
                levels: self.levels,
            });
        }
        let key = self.master.modpow(&Self::exponent_for(level), &self.n);
        Ok(ClearanceKey {
            n: self.n.clone(),
            key,
            level,
            levels: self.levels,
        })
    }
}

impl ClearanceKey {
    pub fn level(&self) -> Level {
        self.level
    }

    /// Derives the key for a less (or equally) sensitive level. Fails when
    /// asked to climb towards higher clearances.
    pub fn derive(&self, target: Level) -> Result<ClearanceKey, HierarchyError> {
        if target == 0 || target > self.levels {
            return Err(HierarchyError::BadLevel {
                level: target,
                levels: self.levels,
            });
        }
        if target < self.level {
            return Err(HierarchyError::InsufficientClearance {
                have: self.level,
                want: target,
            });
        }
        // Additional exponent: product of primes for the levels in between.
        let mut t = BigUint::one();
        for &p in &LEVEL_PRIMES[(self.level - 1) as usize..(target - 1) as usize] {
            t = t.mul(&BigUint::from_u64(p));
        }
        Ok(ClearanceKey {
            n: self.n.clone(),
            key: self.key.modpow(&t, &self.n),
            level: target,
            levels: self.levels,
        })
    }

    /// Folds the level key into a 64-bit cipher key (for keying DES/Speck on
    /// per-level triplet or data-block encipherment).
    pub fn cipher_key64(&self) -> u64 {
        hash64(&self.key.to_bytes_be())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hierarchy(levels: u32) -> KeyHierarchy {
        let mut rng = StdRng::seed_from_u64(99);
        KeyHierarchy::generate(&mut rng, 128, levels)
    }

    #[test]
    fn top_clearance_derives_everything() {
        let h = hierarchy(5);
        let top = h.clearance(1).unwrap();
        for level in 1..=5 {
            let derived = top.derive(level).unwrap();
            let minted = h.clearance(level).unwrap();
            assert_eq!(
                derived.cipher_key64(),
                minted.cipher_key64(),
                "level {level}"
            );
        }
    }

    #[test]
    fn mid_clearance_derives_only_downward() {
        let h = hierarchy(5);
        let mid = h.clearance(3).unwrap();
        for level in 3..=5 {
            assert!(mid.derive(level).is_ok());
        }
        for level in 1..3 {
            assert!(matches!(
                mid.derive(level),
                Err(HierarchyError::InsufficientClearance { have: 3, want }) if want == level
            ));
        }
    }

    #[test]
    fn derivation_is_transitive() {
        let h = hierarchy(6);
        let via_4 = h
            .clearance(2)
            .unwrap()
            .derive(4)
            .unwrap()
            .derive(6)
            .unwrap();
        let direct = h.clearance(2).unwrap().derive(6).unwrap();
        assert_eq!(via_4.cipher_key64(), direct.cipher_key64());
    }

    #[test]
    fn level_keys_are_distinct() {
        let h = hierarchy(6);
        let keys: Vec<u64> = (1..=6)
            .map(|l| h.clearance(l).unwrap().cipher_key64())
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "levels {} and {}", i + 1, j + 1);
            }
        }
    }

    #[test]
    fn bad_levels_rejected() {
        let h = hierarchy(3);
        assert!(matches!(
            h.clearance(0),
            Err(HierarchyError::BadLevel { .. })
        ));
        assert!(matches!(
            h.clearance(4),
            Err(HierarchyError::BadLevel { .. })
        ));
        let c = h.clearance(2).unwrap();
        assert!(matches!(c.derive(0), Err(HierarchyError::BadLevel { .. })));
        assert!(matches!(c.derive(9), Err(HierarchyError::BadLevel { .. })));
    }

    #[test]
    #[should_panic(expected = "levels supported")]
    fn too_many_levels_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        KeyHierarchy::generate(&mut rng, 64, 17);
    }
}
