//! The Data Encryption Standard (FIPS PUB 46), implemented from the
//! specification.
//!
//! The paper (§5) names DES as one of the two cryptosystems suitable for
//! enciphering node and data blocks. This is a straightforward table-driven
//! implementation validated against published test vectors — built for
//! fidelity to the 1977 standard, **not** for protecting real data.

use crate::cipher::BlockCipher64;

/// Initial permutation IP.
#[rustfmt::skip]
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17,  9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation IP⁻¹.
#[rustfmt::skip]
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41,  9, 49, 17, 57, 25,
];

/// Expansion E: 32 → 48 bits.
#[rustfmt::skip]
const E: [u8; 48] = [
    32,  1,  2,  3,  4,  5,
     4,  5,  6,  7,  8,  9,
     8,  9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32,  1,
];

/// Permutation P applied to the S-box output.
#[rustfmt::skip]
const P: [u8; 32] = [
    16,  7, 20, 21,
    29, 12, 28, 17,
     1, 15, 23, 26,
     5, 18, 31, 10,
     2,  8, 24, 14,
    32, 27,  3,  9,
    19, 13, 30,  6,
    22, 11,  4, 25,
];

/// Permuted choice 1 (key schedule): 64 → 56 bits.
#[rustfmt::skip]
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17,  9,
     1, 58, 50, 42, 34, 26, 18,
    10,  2, 59, 51, 43, 35, 27,
    19, 11,  3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
     7, 62, 54, 46, 38, 30, 22,
    14,  6, 61, 53, 45, 37, 29,
    21, 13,  5, 28, 20, 12,  4,
];

/// Permuted choice 2 (key schedule): 56 → 48 bits.
#[rustfmt::skip]
const PC2: [u8; 48] = [
    14, 17, 11, 24,  1,  5,
     3, 28, 15,  6, 21, 10,
    23, 19, 12,  4, 26,  8,
    16,  7, 27, 20, 13,  2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
];

/// Left-rotation schedule for the 16 rounds.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes, each 4 rows × 16 columns.
#[rustfmt::skip]
const SBOX: [[u8; 64]; 8] = [
    [
        14,  4, 13,  1,  2, 15, 11,  8,  3, 10,  6, 12,  5,  9,  0,  7,
         0, 15,  7,  4, 14,  2, 13,  1, 10,  6, 12, 11,  9,  5,  3,  8,
         4,  1, 14,  8, 13,  6,  2, 11, 15, 12,  9,  7,  3, 10,  5,  0,
        15, 12,  8,  2,  4,  9,  1,  7,  5, 11,  3, 14, 10,  0,  6, 13,
    ],
    [
        15,  1,  8, 14,  6, 11,  3,  4,  9,  7,  2, 13, 12,  0,  5, 10,
         3, 13,  4,  7, 15,  2,  8, 14, 12,  0,  1, 10,  6,  9, 11,  5,
         0, 14,  7, 11, 10,  4, 13,  1,  5,  8, 12,  6,  9,  3,  2, 15,
        13,  8, 10,  1,  3, 15,  4,  2, 11,  6,  7, 12,  0,  5, 14,  9,
    ],
    [
        10,  0,  9, 14,  6,  3, 15,  5,  1, 13, 12,  7, 11,  4,  2,  8,
        13,  7,  0,  9,  3,  4,  6, 10,  2,  8,  5, 14, 12, 11, 15,  1,
        13,  6,  4,  9,  8, 15,  3,  0, 11,  1,  2, 12,  5, 10, 14,  7,
         1, 10, 13,  0,  6,  9,  8,  7,  4, 15, 14,  3, 11,  5,  2, 12,
    ],
    [
         7, 13, 14,  3,  0,  6,  9, 10,  1,  2,  8,  5, 11, 12,  4, 15,
        13,  8, 11,  5,  6, 15,  0,  3,  4,  7,  2, 12,  1, 10, 14,  9,
        10,  6,  9,  0, 12, 11,  7, 13, 15,  1,  3, 14,  5,  2,  8,  4,
         3, 15,  0,  6, 10,  1, 13,  8,  9,  4,  5, 11, 12,  7,  2, 14,
    ],
    [
         2, 12,  4,  1,  7, 10, 11,  6,  8,  5,  3, 15, 13,  0, 14,  9,
        14, 11,  2, 12,  4,  7, 13,  1,  5,  0, 15, 10,  3,  9,  8,  6,
         4,  2,  1, 11, 10, 13,  7,  8, 15,  9, 12,  5,  6,  3,  0, 14,
        11,  8, 12,  7,  1, 14,  2, 13,  6, 15,  0,  9, 10,  4,  5,  3,
    ],
    [
        12,  1, 10, 15,  9,  2,  6,  8,  0, 13,  3,  4, 14,  7,  5, 11,
        10, 15,  4,  2,  7, 12,  9,  5,  6,  1, 13, 14,  0, 11,  3,  8,
         9, 14, 15,  5,  2,  8, 12,  3,  7,  0,  4, 10,  1, 13, 11,  6,
         4,  3,  2, 12,  9,  5, 15, 10, 11, 14,  1,  7,  6,  0,  8, 13,
    ],
    [
         4, 11,  2, 14, 15,  0,  8, 13,  3, 12,  9,  7,  5, 10,  6,  1,
        13,  0, 11,  7,  4,  9,  1, 10, 14,  3,  5, 12,  2, 15,  8,  6,
         1,  4, 11, 13, 12,  3,  7, 14, 10, 15,  6,  8,  0,  5,  9,  2,
         6, 11, 13,  8,  1,  4, 10,  7,  9,  5,  0, 15, 14,  2,  3, 12,
    ],
    [
        13,  2,  8,  4,  6, 15, 11,  1, 10,  9,  3, 14,  5,  0, 12,  7,
         1, 15, 13,  8, 10,  3,  7,  4, 12,  5,  6, 11,  0, 14,  9,  2,
         7, 11,  4,  1,  9, 12, 14,  2,  0,  6, 10, 13, 15,  3,  5,  8,
         2,  1, 14,  7,  4, 10,  8, 13, 15, 12,  9,  0,  3,  5,  6, 11,
    ],
];

/// Applies a 1-indexed bit permutation table: output bit `i` (MSB-first) is
/// input bit `table[i]` of a `width`-bit word (also MSB-first).
fn permute(input: u64, width: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out = (out << 1) | ((input >> (width - src as u32)) & 1);
    }
    out
}

/// The DES round function f(R, K).
fn feistel_f(r: u32, subkey: u64) -> u32 {
    let expanded = permute(r as u64, 32, &E); // 48 bits
    let x = expanded ^ subkey;
    let mut out = 0u32;
    for (i, sbox) in SBOX.iter().enumerate() {
        let chunk = ((x >> (42 - 6 * i)) & 0x3f) as u8;
        let row = ((chunk & 0x20) >> 4) | (chunk & 0x01);
        let col = (chunk >> 1) & 0x0f;
        out = (out << 4) | sbox[(row * 16 + col) as usize] as u32;
    }
    permute(out as u64, 32, &P) as u32
}

/// A DES key schedule (16 round subkeys).
#[derive(Clone)]
pub struct Des {
    subkeys: [u64; 16],
}

impl std::fmt::Debug for Des {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Des {{ subkeys: <redacted> }}")
    }
}

impl Des {
    /// Expands a 64-bit key (parity bits ignored, per the standard).
    pub fn new(key: u64) -> Self {
        let permuted = permute(key, 64, &PC1); // 56 bits
        let mut c = ((permuted >> 28) & 0x0fff_ffff) as u32;
        let mut d = (permuted & 0x0fff_ffff) as u32;
        let mut subkeys = [0u64; 16];
        for round in 0..16 {
            let shift = SHIFTS[round] as u32;
            c = ((c << shift) | (c >> (28 - shift))) & 0x0fff_ffff;
            d = ((d << shift) | (d >> (28 - shift))) & 0x0fff_ffff;
            let cd = ((c as u64) << 28) | d as u64;
            subkeys[round] = permute(cd, 56, &PC2);
        }
        Des { subkeys }
    }

    /// Creates a key schedule from 8 key bytes (big-endian).
    pub fn from_key_bytes(key: [u8; 8]) -> Self {
        Des::new(u64::from_be_bytes(key))
    }

    fn crypt(&self, block: u64, decrypt: bool) -> u64 {
        let permuted = permute(block, 64, &IP);
        let mut l = (permuted >> 32) as u32;
        let mut r = permuted as u32;
        for round in 0..16 {
            let subkey = if decrypt {
                self.subkeys[15 - round]
            } else {
                self.subkeys[round]
            };
            let new_r = l ^ feistel_f(r, subkey);
            l = r;
            r = new_r;
        }
        // Note the swap: the final round output is (R16, L16).
        let preoutput = ((r as u64) << 32) | l as u64;
        permute(preoutput, 64, &FP)
    }
}

impl BlockCipher64 for Des {
    fn encrypt_block(&self, block: u64) -> u64 {
        self.crypt(block, false)
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        self.crypt(block, true)
    }
}

/// Triple DES in EDE mode with three independent keys (2-key 3DES when
/// `k1 == k3`). Included because §5 notes the data-block cipher may differ
/// from the pointer cipher.
#[derive(Debug, Clone)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    pub fn new(k1: u64, k2: u64, k3: u64) -> Self {
        TripleDes {
            k1: Des::new(k1),
            k2: Des::new(k2),
            k3: Des::new(k3),
        }
    }
}

impl BlockCipher64 for TripleDes {
    fn encrypt_block(&self, block: u64) -> u64 {
        self.k3
            .encrypt_block(self.k2.decrypt_block(self.k1.encrypt_block(block)))
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        self.k1
            .decrypt_block(self.k2.encrypt_block(self.k3.decrypt_block(block)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Classic published test vectors (key, plaintext, ciphertext).
    const VECTORS: [(u64, u64, u64); 4] = [
        // The worked example from many textbooks.
        (0x133457799BBCDFF1, 0x0123456789ABCDEF, 0x85E813540F0AB405),
        // All-zero key and plaintext.
        (0x0000000000000000, 0x0000000000000000, 0x8CA64DE9C1B123A7),
        // All-ones.
        (0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x7359B2163E4EDC58),
        // "Now is t" under the sequential key.
        (0x0123456789ABCDEF, 0x4E6F772069732074, 0x3FA40E8A984D4815),
    ];

    #[test]
    fn known_answer_tests() {
        for &(key, pt, ct) in &VECTORS {
            let des = Des::new(key);
            assert_eq!(des.encrypt_block(pt), ct, "encrypt key={key:016X}");
            assert_eq!(des.decrypt_block(ct), pt, "decrypt key={key:016X}");
        }
    }

    #[test]
    fn parity_bits_ignored() {
        // Keys differing only in parity bits (LSB of each byte) are equivalent.
        let a = Des::new(0x0123456789ABCDEF);
        let b = Des::new(0x0123456789ABCDEF ^ 0x0101010101010101);
        for pt in [0u64, 1, 0xdead_beef_0bad_cafe] {
            assert_eq!(a.encrypt_block(pt), b.encrypt_block(pt));
        }
    }

    #[test]
    fn complementation_property() {
        // DES(k̄, p̄) = DES(k, p)̄ — a structural property of the cipher that
        // only holds if the whole round network is correct.
        let k = 0x133457799BBCDFF1u64;
        let p = 0x0123456789ABCDEFu64;
        let c = Des::new(k).encrypt_block(p);
        let c_comp = Des::new(!k).encrypt_block(!p);
        assert_eq!(c_comp, !c);
    }

    #[test]
    fn weak_key_is_self_inverse() {
        // 0x0101...01 is a DES weak key: encryption == decryption.
        let weak = Des::new(0x0101010101010101);
        for pt in [0x0011223344556677u64, 0xffeeddccbbaa9988] {
            assert_eq!(weak.encrypt_block(weak.encrypt_block(pt)), pt);
        }
    }

    #[test]
    fn from_key_bytes_matches_u64() {
        let key = 0x133457799BBCDFF1u64;
        let a = Des::new(key);
        let b = Des::from_key_bytes(key.to_be_bytes());
        assert_eq!(a.encrypt_block(42), b.encrypt_block(42));
    }

    #[test]
    fn triple_des_roundtrip_and_degeneration() {
        let tdes = TripleDes::new(0x1111111111111111, 0x2222222222222222, 0x3333333333333333);
        for pt in [0u64, 0x0123456789ABCDEF] {
            assert_eq!(tdes.decrypt_block(tdes.encrypt_block(pt)), pt);
        }
        // With all keys equal, 3DES degenerates to single DES.
        let k = 0x133457799BBCDFF1u64;
        let tdes = TripleDes::new(k, k, k);
        let des = Des::new(k);
        assert_eq!(tdes.encrypt_block(7), des.encrypt_block(7));
    }

    #[test]
    fn avalanche_on_plaintext() {
        let des = Des::new(0x133457799BBCDFF1);
        let base = des.encrypt_block(0x0123456789ABCDEF);
        let flipped = des.encrypt_block(0x0123456789ABCDEF ^ 1);
        let diff = (base ^ flipped).count_ones();
        assert!((20..=44).contains(&diff), "poor avalanche: {diff} bits");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_roundtrip(key in any::<u64>(), pt in any::<u64>()) {
            let des = Des::new(key);
            prop_assert_eq!(des.decrypt_block(des.encrypt_block(pt)), pt);
        }

        #[test]
        fn prop_triple_des_roundtrip(k1 in any::<u64>(), k2 in any::<u64>(), k3 in any::<u64>(), pt in any::<u64>()) {
            let t = TripleDes::new(k1, k2, k3);
            prop_assert_eq!(t.decrypt_block(t.encrypt_block(pt)), pt);
        }
    }
}
