//! The Bayer–Metzger page-key scheme (§2 of the paper; Bayer & Metzger,
//! TODS 1976).
//!
//! Every page `P_i` of a file has an id `P_id`; its page key is derived from
//! the file (tree) key `K_E` as `K_{P_i} = PK(K_E, P_id)`, and the page
//! contents are enciphered under `K_{P_i}`. Two identical data items stored
//! in different pages therefore produce different cryptograms — the property
//! the attacker experiments verify — at the cost that moving a triplet to
//! another page forces re-encipherment (the overhead §3 sets out to remove).

use crate::cipher::BlockCipher64;
use crate::des::Des;
use crate::speck::Speck64;

/// Which block cipher instantiates `T` (the text-encryption function).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageCipherKind {
    Des,
    Speck,
}

/// Derives per-page keys and ciphers from a single secret file key.
#[derive(Debug, Clone)]
pub struct PageKeyScheme {
    file_key: u64,
    kind: PageCipherKind,
}

impl PageKeyScheme {
    pub fn new(file_key: u64, kind: PageCipherKind) -> Self {
        PageKeyScheme { file_key, kind }
    }

    /// `PK(K_E, P_id)`: the page key is the encipherment of the page id
    /// under the file key (a standard realisation of Bayer–Metzger's `PK`).
    pub fn page_key(&self, page_id: u64) -> u64 {
        match self.kind {
            PageCipherKind::Des => Des::new(self.file_key).encrypt_block(page_id),
            PageCipherKind::Speck => {
                Speck64::from_u128(((self.file_key as u128) << 64) | page_id as u128 ^ 0x5a5a)
                    .encrypt_block(page_id)
            }
        }
    }

    /// Builds the text cipher `T` keyed for page `page_id`.
    pub fn page_cipher(&self, page_id: u64) -> Box<dyn BlockCipher64 + Send + Sync> {
        let key = self.page_key(page_id);
        match self.kind {
            PageCipherKind::Des => Box::new(Des::new(key)),
            PageCipherKind::Speck => {
                Box::new(Speck64::from_u128(((key as u128) << 64) | (!key as u128)))
            }
        }
    }

    pub fn kind(&self) -> PageCipherKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_pages_get_different_keys() {
        let scheme = PageKeyScheme::new(0xA5A5_5A5A_DEAD_BEEF, PageCipherKind::Des);
        let k1 = scheme.page_key(1);
        let k2 = scheme.page_key(2);
        assert_ne!(k1, k2);
        // And deterministic.
        assert_eq!(k1, scheme.page_key(1));
    }

    #[test]
    fn identical_plaintext_different_pages_different_cryptograms() {
        // The core Bayer–Metzger property quoted in §3 of the paper.
        let scheme = PageKeyScheme::new(42, PageCipherKind::Des);
        let c1 = scheme.page_cipher(10).encrypt_block(0x1234);
        let c2 = scheme.page_cipher(11).encrypt_block(0x1234);
        assert_ne!(c1, c2);
    }

    #[test]
    fn different_file_keys_isolate_files() {
        let a = PageKeyScheme::new(1, PageCipherKind::Des);
        let b = PageKeyScheme::new(2, PageCipherKind::Des);
        assert_ne!(a.page_key(7), b.page_key(7));
    }

    #[test]
    fn page_cipher_roundtrips_for_both_kinds() {
        for kind in [PageCipherKind::Des, PageCipherKind::Speck] {
            let scheme = PageKeyScheme::new(0x0F0F_F0F0, kind);
            let cipher = scheme.page_cipher(99);
            for pt in [0u64, 7, u64::MAX] {
                assert_eq!(cipher.decrypt_block(cipher.encrypt_block(pt)), pt);
            }
        }
    }
}
