//! Arbitrary-precision unsigned integers, from scratch.
//!
//! Just enough bignum for the RSA of §5: base-2³² limbs (little-endian),
//! schoolbook multiplication, Knuth Algorithm D division, square-and-multiply
//! modular exponentiation, extended Euclid inverses and Miller–Rabin prime
//! generation. Correctness over speed — the paper's experiments use RSA at
//! 256–1024 bits where this is comfortably fast.

use std::cmp::Ordering;

use rand::Rng;

/// An arbitrary-precision unsigned integer. Limbs are `u32`, little-endian,
/// normalised (no trailing zero limbs; zero is the empty vector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    pub fn zero() -> Self {
        BigUint { limbs: vec![] }
    }

    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    pub fn from_u64(x: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![x as u32, (x >> 32) as u32],
        };
        n.normalize();
        n
    }

    pub fn from_u128(x: u128) -> Self {
        let mut n = BigUint {
            limbs: vec![
                x as u32,
                (x >> 32) as u32,
                (x >> 64) as u32,
                (x >> 96) as u32,
            ],
        };
        n.normalize();
        n
    }

    /// Big-endian byte parsing (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut acc: u32 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Big-endian bytes, no leading zeros (`0` encodes as an empty vector).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the top limb.
                let mut started = false;
                for b in bytes {
                    if b != 0 || started {
                        out.push(b);
                        started = true;
                    }
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
    /// Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim_start_matches("0x");
        if s.is_empty() || !s.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        for chunk in s.as_bytes().chunks(2) {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            bytes.push(((hi << 4) | lo) as u8);
        }
        Some(BigUint::from_bytes_be(&bytes))
    }

    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{b:x}"));
            } else {
                s.push_str(&format!("{b:02x}"));
            }
        }
        s
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (LSB = bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    pub fn cmp_val(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = l as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_val(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// `self - other`; panics on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u64 * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let t = out[idx] as u64 + carry;
                out[idx] = t as u32;
                carry = t >> 32;
                idx += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).copied().unwrap_or(0) << (32 - bit_shift);
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder. Panics on division by zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_val(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u64;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 32) | l as u64;
                q.push((cur / d) as u32);
                rem = cur % d;
            }
            q.reverse();
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem));
        }
        // Knuth Algorithm D. Normalise so the divisor's top limb has its
        // high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl_bits(shift);
        let v = divisor.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u_{m+n}
        let vn = &v.limbs;
        let b = 1u64 << 32;
        let mut q = vec![0u32; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂.
            let top = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = top / vn[n - 1] as u64;
            let mut rhat = top % vn[n - 1] as u64;
            while qhat >= b || qhat * vn[n - 2] as u64 > ((rhat << 32) | un[j + n - 2] as u64) {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= b {
                    break;
                }
            }
            // Multiply-subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - (p as u32) as i64 - borrow;
                if t < 0 {
                    un[i + j] = (t + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    un[i + j] = t as u32;
                    borrow = 0;
                }
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // q̂ was one too large: add back.
                un[j + n] = (t + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut carry2 = 0u64;
                for i in 0..n {
                    let s = un[i + j] as u64 + vn[i] as u64 + carry2;
                    un[i + j] = s as u32;
                    carry2 = s >> 32;
                }
                un[j + n] = un[j + n].wrapping_add(carry2 as u32);
            } else {
                un[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }
        let mut qn = BigUint { limbs: q };
        qn.normalize();
        let mut rn = BigUint {
            limbs: un[..n].to_vec(),
        };
        rn.normalize();
        (qn, rn.shr_bits(shift))
    }

    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.divrem(modulus).1
    }

    /// `(self * other) mod m`.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self^e mod m` by left-to-right square-and-multiply.
    pub fn modpow(&self, e: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let base = self.rem(m);
        let bits = e.bit_length();
        for i in (0..bits).rev() {
            result = result.mulmod(&result, m);
            if e.bit(i) {
                result = result.mulmod(&base, m);
            }
        }
        result
    }

    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse via extended Euclid; `None` if `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Iterative extended Euclid with explicit coefficient signs.
        let mut old_r = self.rem(m);
        let mut r = m.clone();
        // coefficients of `self` in (value, is_negative) form
        let mut old_s = (BigUint::one(), false);
        let mut s = (BigUint::zero(), false);
        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s  (signed)
            let qs = q.mul(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None;
        }
        // old_s is the coefficient of self; reduce into [0, m).
        let (mag, neg) = old_s;
        let red = mag.rem(m);
        Some(if neg && !red.is_zero() {
            m.sub(&red)
        } else {
            red
        })
    }

    /// Uniform random value with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(32);
        let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs_needed - 1) * 32;
        let top = &mut limbs[limbs_needed - 1];
        if top_bits < 32 {
            *top &= (1u32 << top_bits) - 1;
        }
        *top |= 1u32 << (top_bits - 1); // force exact bit length
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Uniform random value in `[0, bound)` by rejection sampling.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_length();
        loop {
            let limbs_needed = bits.div_ceil(32);
            let mut limbs: Vec<u32> = (0..limbs_needed).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs_needed - 1) * 32;
            if top_bits < 32 {
                limbs[limbs_needed - 1] &= (1u32 << top_bits) - 1;
            }
            let mut n = BigUint { limbs };
            n.normalize();
            if n.cmp_val(bound) == Ordering::Less {
                return n;
            }
        }
    }

    /// Miller–Rabin with `rounds` random bases (plus a base-2 round).
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: u32) -> bool {
        if let Some(small) = self.to_u64() {
            return sks_small_is_prime(small);
        }
        if self.is_even() {
            return false;
        }
        // Quick trial division by small primes.
        for p in [
            3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
        ] {
            if self.rem(&BigUint::from_u64(p)).is_zero() {
                return false;
            }
        }
        let one = BigUint::one();
        let two = BigUint::from_u64(2);
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut s = 0u32;
        while d.is_even() {
            d = d.shr_bits(1);
            s += 1;
        }
        let try_base = |a: &BigUint| -> bool {
            // true = passes (maybe prime)
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                return true;
            }
            for _ in 1..s {
                x = x.mulmod(&x, self);
                if x == n_minus_1 {
                    return true;
                }
            }
            false
        };
        if !try_base(&two) {
            return false;
        }
        for _ in 0..rounds {
            // Random base in [2, n-2].
            let upper = self.sub(&BigUint::from_u64(3));
            let a = BigUint::random_below(rng, &upper).add(&two);
            if !try_base(&a) {
                return false;
            }
        }
        true
    }

    /// Generates a random prime with exactly `bits` bits.
    pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits >= 2);
        loop {
            let mut cand = BigUint::random_bits(rng, bits);
            if cand.is_even() {
                cand = cand.add(&BigUint::one());
                if cand.bit_length() != bits {
                    continue;
                }
            }
            if cand.is_probable_prime(rng, 24) {
                return cand;
            }
        }
    }
}

/// Signed subtraction on (magnitude, is_negative) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        (an, bn) if an == bn => {
            // a - b with same sign: magnitude subtraction, sign flips if |b|>|a|.
            match a.0.cmp_val(&b.0) {
                Ordering::Less => (b.0.sub(&a.0), !an),
                _ => (a.0.sub(&b.0), an),
            }
        }
        // a - (-b) = a + b  /  (-a) - b = -(a + b)
        _ => (a.0.add(&b.0), a.1),
    }
}

/// Deterministic u64 primality (same witness logic as sks-designs, duplicated
/// to keep the crypto crate dependency-free on the designs crate).
fn sks_small_is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    let mulmod = |a: u64, b: u64| ((a as u128 * b as u128) % n as u128) as u64;
    let powmod = |mut a: u64, mut e: u64| {
        let mut acc = 1u64;
        a %= n;
        while e > 0 {
            if e & 1 == 1 {
                acc = mulmod(acc, a);
            }
            a = mulmod(a, a);
            e >>= 1;
        }
        acc
    };
    'w: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mulmod(x, x);
            if x == n - 1 {
                continue 'w;
            }
        }
        return false;
    }
    true
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(x: u128) -> BigUint {
        BigUint::from_u128(x)
    }

    #[test]
    fn roundtrip_bytes_and_hex() {
        for x in [0u128, 1, 255, 256, 0xdeadbeef, u64::MAX as u128, u128::MAX] {
            let n = big(x);
            assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
            assert_eq!(BigUint::from_hex(&n.to_hex()).unwrap(), n);
        }
        assert_eq!(BigUint::from_hex("0x0ff").unwrap(), big(255));
        assert_eq!(BigUint::from_hex(""), None);
        assert_eq!(BigUint::from_hex("xyz"), None);
    }

    #[test]
    fn padded_bytes() {
        let n = big(0x0102);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        big(0x010203).to_bytes_be_padded(2);
    }

    #[test]
    fn bit_length_and_bits() {
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(big(1).bit_length(), 1);
        assert_eq!(big(0x8000_0000).bit_length(), 32);
        assert_eq!(big(1 << 100).bit_length(), 101);
        assert!(big(0b1010).bit(1));
        assert!(!big(0b1010).bit(0));
        assert!(!big(0b1010).bit(64));
    }

    #[test]
    fn add_sub_carry_chains() {
        let a = big(u64::MAX as u128);
        let b = big(1);
        assert_eq!(a.add(&b), big(1u128 << 64));
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(big(0).add(&big(0)), BigUint::zero());
        assert_eq!(big(5).checked_sub(&big(6)), None);
    }

    #[test]
    fn mul_known() {
        assert_eq!(big(0).mul(&big(12345)), BigUint::zero());
        assert_eq!(
            big(u64::MAX as u128).mul(&big(u64::MAX as u128)),
            big((u64::MAX as u128) * (u64::MAX as u128))
        );
    }

    #[test]
    fn divrem_single_limb() {
        let (q, r) = big(1_000_000_007).divrem(&big(97));
        assert_eq!(q, big(1_000_000_007 / 97));
        assert_eq!(r, big(1_000_000_007 % 97));
    }

    #[test]
    fn divrem_multi_limb_knuth() {
        // Exercise the add-back path statistically via proptest below, and a
        // few fixed multi-limb cases here.
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0123456789").unwrap();
        let b = BigUint::from_hex("fedcba9876543210ff").unwrap();
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_val(&b) == Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        big(5).divrem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let n = BigUint::from_hex("123456789abcdef").unwrap();
        assert_eq!(n.shl_bits(0), n);
        assert_eq!(n.shl_bits(64).shr_bits(64), n);
        assert_eq!(n.shr_bits(200), BigUint::zero());
        assert_eq!(big(1).shl_bits(127), big(1 << 127));
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) ≡ 1 mod p for prime p = 2^89 - 1 (Mersenne prime).
        let p = big((1u128 << 89) - 1);
        let e = p.sub(&BigUint::one());
        assert_eq!(big(2).modpow(&e, &p), BigUint::one());
        // Modulus one → zero.
        assert_eq!(big(2).modpow(&big(10), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn modinv_known() {
        // 3 * 4 = 12 ≡ 1 mod 11
        assert_eq!(big(3).modinv(&big(11)).unwrap(), big(4));
        assert_eq!(big(6).modinv(&big(9)), None); // gcd 3
        assert_eq!(big(5).modinv(&BigUint::one()), None);
    }

    #[test]
    fn primality_known() {
        let mut rng = StdRng::seed_from_u64(42);
        assert!(big((1u128 << 89) - 1).is_probable_prime(&mut rng, 16));
        assert!(!big((1u128 << 90) - 1).is_probable_prime(&mut rng, 16));
        assert!(big(2).is_probable_prime(&mut rng, 4));
        assert!(!big(1).is_probable_prime(&mut rng, 4));
        // RSA-style semiprime must be composite.
        let p = BigUint::random_prime(&mut rng, 64);
        let q = BigUint::random_prime(&mut rng, 64);
        assert!(!p.mul(&q).is_probable_prime(&mut rng, 16));
    }

    #[test]
    fn random_prime_has_exact_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [16usize, 33, 64, 128] {
            let p = BigUint::random_prime(&mut rng, bits);
            assert_eq!(p.bit_length(), bits);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let (ba, bb) = (big(a), big(b));
            prop_assert_eq!(ba.add(&bb).sub(&bb), ba);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(big(a as u128).mul(&big(b as u128)), big(a as u128 * b as u128));
        }

        #[test]
        fn prop_divrem_invariant(a in any::<u128>(), b in 1u128..) {
            let (q, r) = big(a).divrem(&big(b));
            prop_assert_eq!(q.mul(&big(b)).add(&r), big(a));
            prop_assert!(r.cmp_val(&big(b)) == Ordering::Less);
        }

        #[test]
        fn prop_divrem_multilimb(
            a_hi in any::<u128>(), a_lo in any::<u128>(),
            b_hi in 1u128.., b_lo in any::<u128>()
        ) {
            // Construct ~256-bit dividend and ~192+-bit divisor.
            let a = big(a_hi).shl_bits(128).add(&big(a_lo));
            let b = big(b_hi).shl_bits(64).add(&big(b_lo));
            let (q, r) = a.divrem(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
            prop_assert!(r.cmp_val(&b) == Ordering::Less);
        }

        #[test]
        fn prop_modpow_matches_u128_naive(a in 0u128..1000, e in 0u64..24, m in 1u128..1_000_000) {
            let mut want: u128 = 1 % m;
            for _ in 0..e {
                want = want * (a % m) % m;
            }
            prop_assert_eq!(
                big(a).modpow(&big(e as u128), &big(m)),
                big(want)
            );
        }

        #[test]
        fn prop_modinv(a in 1u128..100_000, m in 2u128..100_000) {
            let (ba, bm) = (big(a), big(m));
            match ba.modinv(&bm) {
                Some(inv) => prop_assert_eq!(ba.mulmod(&inv, &bm), BigUint::one()),
                None => prop_assert!(!ba.gcd(&bm).is_one()),
            }
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let n = BigUint::from_bytes_be(&bytes);
            let back = n.to_bytes_be();
            // Leading zeros are stripped; compare numeric values.
            prop_assert_eq!(BigUint::from_bytes_be(&back), n);
        }
    }
}
