//! Core cipher traits shared across the crate.

/// A 64-bit block cipher. DES, 3DES and Speck64 implement this; the
/// Bayer–Metzger page scheme and all block modes are generic over it.
pub trait BlockCipher64 {
    fn encrypt_block(&self, block: u64) -> u64;
    fn decrypt_block(&self, block: u64) -> u64;
}

/// Blanket impl so `&C` works wherever `C` does.
impl<C: BlockCipher64 + ?Sized> BlockCipher64 for &C {
    fn encrypt_block(&self, block: u64) -> u64 {
        (**self).encrypt_block(block)
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        (**self).decrypt_block(block)
    }
}

impl<C: BlockCipher64 + ?Sized> BlockCipher64 for Box<C> {
    fn encrypt_block(&self, block: u64) -> u64 {
        (**self).encrypt_block(block)
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        (**self).decrypt_block(block)
    }
}

/// The identity "cipher" — used by plaintext baselines so the same code path
/// (and the same operation counters) run with cryptography disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityCipher;

impl BlockCipher64 for IdentityCipher {
    fn encrypt_block(&self, block: u64) -> u64 {
        block
    }

    fn decrypt_block(&self, block: u64) -> u64 {
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::Des;

    #[test]
    fn identity_is_identity() {
        for x in [0u64, 1, u64::MAX] {
            assert_eq!(IdentityCipher.encrypt_block(x), x);
            assert_eq!(IdentityCipher.decrypt_block(x), x);
        }
    }

    #[test]
    fn trait_objects_and_refs_work() {
        let des = Des::new(0x0123456789ABCDEF);
        let by_ref: &dyn BlockCipher64 = &des;
        let boxed: Box<dyn BlockCipher64> = Box::new(Des::new(0x0123456789ABCDEF));
        assert_eq!(by_ref.encrypt_block(5), boxed.encrypt_block(5));
        assert_eq!((&&des).encrypt_block(5), des.encrypt_block(5));
    }
}
