//! RSA in "secret-parameter" mode (§5 of the paper).
//!
//! The paper points out that when RSA enciphers database pointers *without
//! publishing any parameters* — modulus, exponents, everything stays secret —
//! the usual public-key attacks have nothing to work from. This module
//! implements textbook RSA over the in-crate [`BigUint`](crate::bignum) with
//! Miller–Rabin key generation, plus fixed-width block encoding so that node
//! codecs can compute cryptogram sizes exactly (experiment E3 measures the
//! node-layout cost of RSA-sized fields).

use rand::Rng;

use crate::bignum::BigUint;

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message value is not strictly below the modulus.
    MessageTooLarge,
    /// Ciphertext buffer has the wrong length for this key.
    BadCiphertextLength { expected: usize, got: usize },
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLarge => write!(f, "RSA message must be less than the modulus"),
            RsaError::BadCiphertextLength { expected, got } => {
                write!(f, "RSA ciphertext must be {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for RsaError {}

/// A full RSA key pair. In the paper's usage *all* fields are secret.
#[derive(Debug, Clone)]
pub struct RsaKey {
    n: BigUint,
    e: BigUint,
    d: BigUint,
    modulus_bytes: usize,
}

impl RsaKey {
    /// Generates a key with a modulus of exactly `bits` bits.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 32, "modulus below 32 bits cannot encode a pointer");
        let half = bits / 2;
        let e = BigUint::from_u64(65537);
        loop {
            let p = BigUint::random_prime(rng, half);
            let q = BigUint::random_prime(rng, bits - half);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_length() != bits {
                continue;
            }
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.modinv(&phi) else {
                continue; // gcd(e, phi) != 1; re-draw primes
            };
            let modulus_bytes = bits.div_ceil(8);
            return RsaKey {
                n,
                e,
                d,
                modulus_bytes,
            };
        }
    }

    /// Constructs a key from explicit parameters (used by tests and by the
    /// multilevel hierarchy). No validation beyond basic sanity.
    pub fn from_parts(n: BigUint, e: BigUint, d: BigUint) -> Self {
        let modulus_bytes = n.bit_length().div_ceil(8);
        RsaKey {
            n,
            e,
            d,
            modulus_bytes,
        }
    }

    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Ciphertext width in bytes for this key.
    pub fn ciphertext_len(&self) -> usize {
        self.modulus_bytes
    }

    /// Largest plaintext block width (bytes) guaranteed to be below `n`.
    pub fn max_plaintext_len(&self) -> usize {
        self.modulus_bytes - 1
    }

    /// `m^e mod n` on numeric values.
    pub fn encrypt_value(&self, m: &BigUint) -> Result<BigUint, RsaError> {
        if m.cmp_val(&self.n) != std::cmp::Ordering::Less {
            return Err(RsaError::MessageTooLarge);
        }
        Ok(m.modpow(&self.e, &self.n))
    }

    /// `c^d mod n` on numeric values.
    pub fn decrypt_value(&self, c: &BigUint) -> Result<BigUint, RsaError> {
        if c.cmp_val(&self.n) != std::cmp::Ordering::Less {
            return Err(RsaError::MessageTooLarge);
        }
        Ok(c.modpow(&self.d, &self.n))
    }

    /// Enciphers at most [`Self::max_plaintext_len`] bytes into a fixed
    /// [`Self::ciphertext_len`]-byte cryptogram. A one-byte length prefix
    /// makes the encoding injective for variable-length inputs.
    pub fn encrypt_bytes(&self, plaintext: &[u8]) -> Result<Vec<u8>, RsaError> {
        if plaintext.len() + 1 > self.max_plaintext_len() {
            return Err(RsaError::MessageTooLarge);
        }
        let mut framed = Vec::with_capacity(plaintext.len() + 1);
        framed.push(plaintext.len() as u8);
        framed.extend_from_slice(plaintext);
        let m = BigUint::from_bytes_be(&framed);
        let c = self.encrypt_value(&m)?;
        Ok(c.to_bytes_be_padded(self.ciphertext_len()))
    }

    /// Inverse of [`Self::encrypt_bytes`].
    pub fn decrypt_bytes(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        if ciphertext.len() != self.ciphertext_len() {
            return Err(RsaError::BadCiphertextLength {
                expected: self.ciphertext_len(),
                got: ciphertext.len(),
            });
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let m = self.decrypt_value(&c)?;
        let framed = m.to_bytes_be();
        if framed.is_empty() {
            return Ok(vec![]); // zero-length message of length byte 0
        }
        let len = framed[0] as usize;
        if len != framed.len() - 1 {
            // Leading zero bytes of the frame are stripped by the numeric
            // round-trip; reconstruct by left-padding.
            let mut padded = vec![0u8; 0];
            let need = len + 1;
            if framed.len() < need {
                padded = vec![0u8; need - framed.len()];
            }
            let mut full = padded;
            full.extend_from_slice(&framed);
            if full.len() == need {
                return Ok(full[1..].to_vec());
            }
            // Genuinely inconsistent: wrong key or corrupt data. Return the
            // raw bytes; the caller's integrity check (block-number binding)
            // rejects it.
            return Ok(framed[1..].to_vec());
        }
        Ok(framed[1..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key(bits: usize, seed: u64) -> RsaKey {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKey::generate(&mut rng, bits)
    }

    #[test]
    fn textbook_toy_key() {
        // p = 61, q = 53 → n = 3233, φ = 3120, e = 17, d = 2753.
        let key = RsaKey::from_parts(
            BigUint::from_u64(3233),
            BigUint::from_u64(17),
            BigUint::from_u64(2753),
        );
        let m = BigUint::from_u64(65);
        let c = key.encrypt_value(&m).unwrap();
        assert_eq!(c, BigUint::from_u64(2790)); // classic worked example
        assert_eq!(key.decrypt_value(&c).unwrap(), m);
    }

    #[test]
    fn generate_and_roundtrip_values() {
        let key = test_key(128, 1);
        assert_eq!(key.modulus().bit_length(), 128);
        for v in [0u64, 1, 0xdeadbeef, u64::MAX] {
            let m = BigUint::from_u64(v);
            let c = key.encrypt_value(&m).unwrap();
            assert_eq!(key.decrypt_value(&c).unwrap(), m);
        }
    }

    #[test]
    fn message_size_guard() {
        let key = test_key(64, 2);
        let too_big = key.modulus().clone();
        assert_eq!(key.encrypt_value(&too_big), Err(RsaError::MessageTooLarge));
    }

    #[test]
    fn bytes_roundtrip_fixed_width() {
        let key = test_key(256, 3);
        assert_eq!(key.ciphertext_len(), 32);
        for msg in [&b""[..], b"x", b"pointer:00042", &[0u8, 0, 0, 7]] {
            let ct = key.encrypt_bytes(msg).unwrap();
            assert_eq!(ct.len(), 32, "cryptograms are fixed width");
            assert_eq!(key.decrypt_bytes(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn bytes_with_leading_zeros_survive() {
        let key = test_key(128, 4);
        let msg = [0u8, 0, 0, 0, 1, 2];
        let ct = key.encrypt_bytes(&msg).unwrap();
        assert_eq!(key.decrypt_bytes(&ct).unwrap(), msg);
    }

    #[test]
    fn oversize_plaintext_rejected() {
        let key = test_key(64, 5);
        let msg = vec![1u8; key.max_plaintext_len()];
        assert_eq!(key.encrypt_bytes(&msg), Err(RsaError::MessageTooLarge));
    }

    #[test]
    fn ciphertext_length_validated() {
        let key = test_key(128, 6);
        assert!(matches!(
            key.decrypt_bytes(&[0u8; 3]),
            Err(RsaError::BadCiphertextLength { .. })
        ));
    }

    #[test]
    fn deterministic_textbook_property() {
        // Textbook RSA is deterministic — the paper leans on the secrecy of
        // all parameters instead of randomised padding. Documented behaviour.
        let key = test_key(128, 7);
        let a = key.encrypt_bytes(b"same").unwrap();
        let b = key.encrypt_bytes(b"same").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_produce_distinct_cryptograms() {
        let k1 = test_key(128, 8);
        let k2 = test_key(128, 9);
        let c1 = k1.encrypt_bytes(b"ptr").unwrap();
        let c2 = k2.encrypt_bytes(b"ptr").unwrap();
        assert_ne!(c1, c2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip_256(data in proptest::collection::vec(any::<u8>(), 0..30)) {
            let key = test_key(256, 42);
            let ct = key.encrypt_bytes(&data).unwrap();
            prop_assert_eq!(key.decrypt_bytes(&ct).unwrap(), data);
        }
    }
}
