//! A file-backed block device so that enciphered trees survive process
//! restarts (and so the attack tooling can be pointed at an actual file).
//!
//! Layout: an 8-KiB header (magic, version, block size, block count, free
//! list head) followed by the blocks. Freed blocks form an intrusive linked
//! list: the first four bytes of a freed block store the next free block id.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::block::{BlockId, BlockStore, StorageError};
use crate::counters::OpCounters;

const MAGIC: &[u8; 8] = b"SKSBTRE1";
const HEADER_LEN: u64 = 8192;
const NO_FREE: u32 = u32::MAX;

/// Makes directory-entry mutations (create, remove, rename) durable.
/// Opening a directory for fsync is a unix concept; on Windows directory
/// entries are synced with the volume and `File::open` on a directory
/// fails outright, so this is a no-op there.
pub fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

// IEEE CRC-32, table built at compile time. Shared by the paged store's
// checkpoint journal and the engine's WAL framing.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// File-backed block device.
#[derive(Debug)]
pub struct FileDisk {
    file: File,
    block_size: usize,
    num_blocks: u32,
    free_head: u32,
    counters: OpCounters,
}

impl FileDisk {
    /// Creates a new store file (truncating any existing content).
    pub fn create<P: AsRef<Path>>(path: P, block_size: usize) -> Result<Self, StorageError> {
        Self::create_with_counters(path, block_size, OpCounters::new())
    }

    /// [`FileDisk::create`] sharing an existing counter set (so a WAL or an
    /// engine aggregates its devices into one account).
    pub fn create_with_counters<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        counters: OpCounters,
    ) -> Result<Self, StorageError> {
        assert!(block_size >= 32, "blocks below 32 bytes are not useful");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut disk = FileDisk {
            file,
            block_size,
            num_blocks: 0,
            free_head: NO_FREE,
            counters,
        };
        disk.write_header()?;
        Ok(disk)
    }

    /// [`FileDisk::open`] sharing an existing counter set.
    pub fn open_with_counters<P: AsRef<Path>>(
        path: P,
        counters: OpCounters,
    ) -> Result<Self, StorageError> {
        let mut disk = Self::open(path)?;
        disk.counters = counters;
        Ok(disk)
    }

    /// Re-points this device at a different shared counter set.
    pub fn set_counters(&mut self, counters: OpCounters) {
        self.counters = counters;
    }

    /// Opens an existing store file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; 28];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[0..8] != MAGIC {
            return Err(StorageError::Corrupt("bad magic".into()));
        }
        let version = u32::from_be_bytes(header[8..12].try_into().unwrap());
        if version != 1 {
            return Err(StorageError::Corrupt(format!("unknown version {version}")));
        }
        let block_size = u64::from_be_bytes(header[12..20].try_into().unwrap()) as usize;
        let num_blocks = u32::from_be_bytes(header[20..24].try_into().unwrap());
        let free_head = u32::from_be_bytes(header[24..28].try_into().unwrap());
        Ok(FileDisk {
            file,
            block_size,
            num_blocks,
            free_head,
            counters: OpCounters::new(),
        })
    }

    fn write_header(&mut self) -> Result<(), StorageError> {
        let mut header = vec![0u8; HEADER_LEN as usize];
        header[0..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&1u32.to_be_bytes());
        header[12..20].copy_from_slice(&(self.block_size as u64).to_be_bytes());
        header[20..24].copy_from_slice(&self.num_blocks.to_be_bytes());
        header[24..28].copy_from_slice(&self.free_head.to_be_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        Ok(())
    }

    fn offset(&self, id: BlockId) -> u64 {
        HEADER_LEN + id.0 as u64 * self.block_size as u64
    }

    fn check(&self, id: BlockId) -> Result<(), StorageError> {
        if id.0 >= self.num_blocks {
            return Err(StorageError::OutOfRange {
                id: id.0,
                len: self.num_blocks,
            });
        }
        Ok(())
    }

    fn read_raw(&self, id: BlockId) -> Result<Vec<u8>, StorageError> {
        let mut buf = vec![0u8; self.block_size];
        // Positioned read keeps `&self` reads safe without seeking the
        // shared cursor.
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, self.offset(id))?;
        }
        #[cfg(not(unix))]
        {
            let mut f = &self.file;
            f.seek(SeekFrom::Start(self.offset(id)))?;
            f.read_exact(&mut buf)?;
        }
        Ok(buf)
    }

    fn write_raw(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(data, self.offset(id))?;
        }
        #[cfg(not(unix))]
        {
            self.file.seek(SeekFrom::Start(self.offset(id)))?;
            self.file.write_all(data)?;
        }
        Ok(())
    }

    /// Raw image (for the attacker tooling), freed blocks included.
    pub fn raw_image(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        (0..self.num_blocks)
            .map(|i| self.read_raw(BlockId(i)))
            .collect()
    }

    /// Best-effort block read for crash recovery: returns however many of
    /// the block's bytes actually exist on the medium (zero-padding the
    /// rest), instead of failing on a torn tail block whose file range was
    /// cut short. A WAL replays through this so a truncated final block
    /// still yields its leading records.
    pub fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        self.check(id)?;
        self.counters.bump(|c| &c.block_reads);
        let t = self.counters.obs().start();
        let mut buf = vec![0u8; self.block_size];
        let offset = self.offset(id);
        let mut have = 0usize;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            while have < buf.len() {
                match self.file.read_at(&mut buf[have..], offset + have as u64) {
                    Ok(0) => break,
                    Ok(n) => have += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        #[cfg(not(unix))]
        {
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            loop {
                match std::io::Read::read(&mut f, &mut buf[have..]) {
                    Ok(0) => break,
                    Ok(n) => {
                        have += n;
                        if have == buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        self.counters.obs().stage(sks_obs::Stage::BlockRead, t);
        Ok((buf, have))
    }

    /// Forces all written blocks to stable storage. (Callers that track
    /// fsync counts — e.g. a WAL's group-commit accounting — count at
    /// their own layer; the physical sync duration is timed here under
    /// [`sks_obs::Stage::StoreFsync`].)
    pub fn sync(&mut self) -> Result<(), StorageError> {
        let t = self.counters.obs().start();
        self.file.sync_all()?;
        self.counters.obs().stage(sks_obs::Stage::StoreFsync, t);
        Ok(())
    }

    /// Walks the persisted free chain into pop order: `result.last()` is
    /// the next block [`FileDisk::allocate`] would hand out. A layer that
    /// shadows allocation in memory (the paged store) reads its free stack
    /// from here on open.
    pub fn free_list_chain(&self) -> Result<Vec<u32>, StorageError> {
        let mut chain = Vec::new();
        let mut cur = self.free_head;
        while cur != NO_FREE {
            if cur >= self.num_blocks || chain.len() as u32 >= self.num_blocks {
                return Err(StorageError::Corrupt(format!(
                    "free chain escapes the device at block {cur}"
                )));
            }
            chain.push(cur);
            let block = self.read_raw(BlockId(cur))?;
            cur = u32::from_be_bytes(block[0..4].try_into().expect("4-byte link"));
        }
        chain.reverse();
        Ok(chain)
    }

    /// Imposes a complete allocation state: grows or *shrinks* the device
    /// to `num_blocks` (a shrink cuts the file at the new high-water mark)
    /// and rebuilds the intrusive free chain so that pops come off the
    /// *end* of `free_stack`. Idempotent for fixed arguments — a
    /// checkpoint journal can re-apply it after a crash mid-way through a
    /// previous application. The header is left to the caller's
    /// [`BlockStore::flush`].
    pub fn restore_allocation(
        &mut self,
        num_blocks: u32,
        free_stack: &[u32],
    ) -> Result<(), StorageError> {
        while self.num_blocks < num_blocks {
            let id = BlockId(self.num_blocks);
            self.write_raw(id, &vec![0u8; self.block_size])?;
            self.num_blocks += 1;
        }
        if self.num_blocks > num_blocks {
            self.file
                .set_len(HEADER_LEN + num_blocks as u64 * self.block_size as u64)?;
            self.num_blocks = num_blocks;
        }
        let mut next = NO_FREE;
        for &id in free_stack {
            if id >= num_blocks {
                return Err(StorageError::OutOfRange {
                    id,
                    len: num_blocks,
                });
            }
            let mut block = vec![0u8; self.block_size];
            block[0..4].copy_from_slice(&next.to_be_bytes());
            self.write_raw(BlockId(id), &block)?;
            next = id;
        }
        self.free_head = next;
        self.write_header()?;
        Ok(())
    }
}

impl BlockStore for FileDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u32 {
        self.num_blocks
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        self.counters.bump(|c| &c.allocs);
        if self.free_head != NO_FREE {
            let id = BlockId(self.free_head);
            let block = self.read_raw(id)?;
            self.free_head = u32::from_be_bytes(block[0..4].try_into().unwrap());
            self.write_raw(id, &vec![0u8; self.block_size])?;
            self.write_header()?;
            return Ok(id);
        }
        let id = BlockId(self.num_blocks);
        self.num_blocks += 1;
        self.write_raw(id, &vec![0u8; self.block_size])?;
        self.write_header()?;
        Ok(id)
    }

    fn allocate_min(&mut self) -> Result<BlockId, StorageError> {
        if self.free_head == NO_FREE {
            return self.allocate();
        }
        // One walk: find the minimum id plus its predecessor and
        // successor, then splice it out with a single link rewrite.
        let mut prev: Option<u32> = None;
        let mut cur = self.free_head;
        let mut min = u32::MAX;
        let mut min_prev: Option<u32> = None;
        let mut min_next = NO_FREE;
        let mut hops = 0u32;
        while cur != NO_FREE {
            hops += 1;
            if cur >= self.num_blocks || hops > self.num_blocks {
                return Err(StorageError::Corrupt(format!(
                    "free chain escapes the device at block {cur}"
                )));
            }
            let next = u32::from_be_bytes(
                self.read_raw(BlockId(cur))?[0..4]
                    .try_into()
                    .expect("4-byte link"),
            );
            if cur < min {
                min = cur;
                min_prev = prev;
                min_next = next;
            }
            prev = Some(cur);
            cur = next;
        }
        self.counters.bump(|c| &c.allocs);
        match min_prev {
            None => {
                self.free_head = min_next;
                self.write_header()?;
            }
            Some(p) => {
                let mut block = self.read_raw(BlockId(p))?;
                block[0..4].copy_from_slice(&min_next.to_be_bytes());
                self.write_raw(BlockId(p), &block)?;
            }
        }
        self.write_raw(BlockId(min), &vec![0u8; self.block_size])?;
        Ok(BlockId(min))
    }

    fn free(&mut self, id: BlockId) -> Result<(), StorageError> {
        self.check(id)?;
        self.counters.bump(|c| &c.frees);
        let mut block = vec![0u8; self.block_size];
        block[0..4].copy_from_slice(&self.free_head.to_be_bytes());
        self.write_raw(id, &block)?;
        self.free_head = id.0;
        self.write_header()?;
        Ok(())
    }

    fn claim_free(&mut self, id: BlockId) -> Result<(), StorageError> {
        // Walk the intrusive chain and splice `id` out of it: one link
        // rewrite (predecessor or header), not a whole-chain rebuild.
        let mut prev: Option<u32> = None;
        let mut cur = self.free_head;
        let mut hops = 0u32;
        while cur != NO_FREE {
            hops += 1;
            if cur >= self.num_blocks || hops > self.num_blocks {
                return Err(StorageError::Corrupt(format!(
                    "free chain escapes the device at block {cur}"
                )));
            }
            let next = u32::from_be_bytes(
                self.read_raw(BlockId(cur))?[0..4]
                    .try_into()
                    .expect("4-byte link"),
            );
            if cur == id.0 {
                self.counters.bump(|c| &c.allocs);
                match prev {
                    None => {
                        self.free_head = next;
                        self.write_header()?;
                    }
                    Some(p) => {
                        let mut block = self.read_raw(BlockId(p))?;
                        block[0..4].copy_from_slice(&next.to_be_bytes());
                        self.write_raw(BlockId(p), &block)?;
                    }
                }
                self.write_raw(id, &vec![0u8; self.block_size])?;
                return Ok(());
            }
            prev = Some(cur);
            cur = next;
        }
        Err(StorageError::Io(format!("block {} is not free", id.0)))
    }

    fn truncate_free_tail(&mut self) -> Result<u32, StorageError> {
        let chain = self.free_list_chain()?;
        let free: std::collections::HashSet<u32> = chain.iter().copied().collect();
        let mut new_num = self.num_blocks;
        while new_num > 0 && free.contains(&(new_num - 1)) {
            new_num -= 1;
        }
        let released = self.num_blocks - new_num;
        if released > 0 {
            let kept: Vec<u32> = chain.into_iter().filter(|&f| f < new_num).collect();
            self.restore_allocation(new_num, &kept)?;
        }
        self.counters
            .bump_by(|c| &c.device_truncated_blocks, released as u64);
        Ok(released)
    }

    fn read_block(&self, id: BlockId, buf: &mut [u8]) -> Result<(), StorageError> {
        self.check(id)?;
        if buf.len() != self.block_size {
            return Err(StorageError::WrongBlockSize {
                expected: self.block_size,
                got: buf.len(),
            });
        }
        self.counters.bump(|c| &c.block_reads);
        let t = self.counters.obs().start();
        buf.copy_from_slice(&self.read_raw(id)?);
        self.counters.obs().stage(sks_obs::Stage::BlockRead, t);
        Ok(())
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        self.check(id)?;
        if data.len() != self.block_size {
            return Err(StorageError::WrongBlockSize {
                expected: self.block_size,
                got: data.len(),
            });
        }
        self.counters.bump(|c| &c.block_writes);
        let t = self.counters.obs().start();
        let out = self.write_raw(id, data);
        self.counters.obs().stage(sks_obs::Stage::BlockWrite, t);
        out
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.write_header()?;
        let t = self.counters.obs().start();
        self.file.sync_all()?;
        self.counters.obs().stage(sks_obs::Stage::StoreFsync, t);
        Ok(())
    }

    fn free_blocks(&self) -> u32 {
        self.free_list_chain().map(|c| c.len() as u32).unwrap_or(0)
    }

    fn free_block_ids(&self) -> Vec<u32> {
        // The intrusive chain *is* the free list; layers that reason
        // about free membership (reconciliation, node compaction) must
        // see it, or they would mistake free blocks for live ones.
        self.free_list_chain().unwrap_or_default()
    }

    fn raw_image(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        FileDisk::raw_image(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sks_filedisk_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmpfile("reopen");
        {
            let mut disk = FileDisk::create(&path, 128).unwrap();
            let a = disk.allocate().unwrap();
            let b = disk.allocate().unwrap();
            disk.write_block(a, &[0x11; 128]).unwrap();
            disk.write_block(b, &[0x22; 128]).unwrap();
            disk.flush().unwrap();
        }
        {
            let disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.block_size(), 128);
            assert_eq!(disk.num_blocks(), 2);
            assert_eq!(disk.read_block_vec(BlockId(0)).unwrap(), vec![0x11; 128]);
            assert_eq!(disk.read_block_vec(BlockId(1)).unwrap(), vec![0x22; 128]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_list_survives_reopen() {
        let path = tmpfile("freelist");
        {
            let mut disk = FileDisk::create(&path, 64).unwrap();
            let a = disk.allocate().unwrap();
            let _b = disk.allocate().unwrap();
            disk.free(a).unwrap();
            disk.flush().unwrap();
        }
        {
            let mut disk = FileDisk::open(&path).unwrap();
            let again = disk.allocate().unwrap();
            assert_eq!(again, BlockId(0), "freed block is reused after reopen");
            assert_eq!(disk.num_blocks(), 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn restore_allocation_round_trips_the_free_chain() {
        let path = tmpfile("restore_alloc");
        let mut disk = FileDisk::create(&path, 64).unwrap();
        disk.restore_allocation(5, &[3, 1, 4]).unwrap();
        disk.flush().unwrap();
        assert_eq!(disk.num_blocks(), 5);
        assert_eq!(disk.free_list_chain().unwrap(), vec![3, 1, 4]);
        // Idempotent: applying the same end state again changes nothing.
        disk.restore_allocation(5, &[3, 1, 4]).unwrap();
        assert_eq!(disk.free_list_chain().unwrap(), vec![3, 1, 4]);
        drop(disk);
        let mut disk = FileDisk::open(&path).unwrap();
        assert_eq!(disk.free_list_chain().unwrap(), vec![3, 1, 4]);
        // Pop order: 4 first (end of the stack).
        assert_eq!(disk.allocate().unwrap(), BlockId(4));
        assert_eq!(disk.allocate().unwrap(), BlockId(1));
        assert_eq!(disk.allocate().unwrap(), BlockId(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_magic() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"NOTAMAGICHEADERxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            FileDisk::open(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_image_matches_block_content() {
        let path = tmpfile("image");
        let mut disk = FileDisk::create(&path, 64).unwrap();
        let a = disk.allocate().unwrap();
        disk.write_block(a, &[0xEE; 64]).unwrap();
        let image = disk.raw_image().unwrap();
        assert_eq!(image, vec![vec![0xEE; 64]]);
        std::fs::remove_file(&path).ok();
    }
}
