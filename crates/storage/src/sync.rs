//! Durability policy for commit-time fsyncs.
//!
//! The write-ahead log (and any other store that distinguishes *written*
//! from *durable*) takes one of these at construction. `Always` is the
//! classic force-log-at-commit rule; `EveryN` is group commit — several
//! transactions share one physical fsync, trading a bounded window of
//! recent commits for an order-of-magnitude cut in fsync traffic; `Never`
//! leaves durability to the OS page cache (crash-consistent but not
//! power-fail-durable).

/// When commit forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync on every commit.
    Always,
    /// Group commit: fsync once per `n` commits (and on explicit flush).
    EveryN(u32),
    /// Never fsync from the commit path; the OS decides.
    Never,
}

impl SyncPolicy {
    /// Given how many commits have accumulated since the last fsync,
    /// should this commit force one?
    pub fn should_sync(&self, pending_commits: u32) -> bool {
        match *self {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => pending_commits >= n.max(1),
            SyncPolicy::Never => false,
        }
    }
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::EveryN(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_syncs_each_commit() {
        assert!(SyncPolicy::Always.should_sync(1));
        assert!(SyncPolicy::Always.should_sync(0));
    }

    #[test]
    fn group_commit_syncs_on_batch_boundary() {
        let p = SyncPolicy::EveryN(8);
        assert!(!p.should_sync(1));
        assert!(!p.should_sync(7));
        assert!(p.should_sync(8));
        assert!(p.should_sync(9));
    }

    #[test]
    fn every_zero_degenerates_to_always() {
        assert!(SyncPolicy::EveryN(0).should_sync(1));
    }

    #[test]
    fn never_never_syncs() {
        assert!(!SyncPolicy::Never.should_sync(1_000_000));
    }
}
