//! [`PagedFileStore`] — the file backend's node/record store: a
//! [`BufferPool`] over a [`FileDisk`] with *checkpoint semantics*.
//!
//! The engine's recovery contract is "on-disk tree image = the state of the
//! last checkpoint; everything since lives in the WAL tail". That only
//! holds if nothing dribbles onto the file between checkpoints, so this
//! store enforces three disciplines on top of the plain pool:
//!
//! 1. **No-steal caching** — dirty pages are pinned in memory
//!    ([`BufferPool::new_no_steal`]); eviction drops clean frames only.
//! 2. **Shadowed allocation** — `allocate`/`free` mutate an in-memory
//!    mirror of the device's free list; the [`FileDisk`] header and
//!    intrusive free chain are rewritten only at checkpoint.
//! 3. **Journaled checkpoints** — [`BlockStore::flush`] first writes every
//!    dirty page plus the allocation end-state to a sidecar journal
//!    (fsynced), then applies them in place, then truncates the journal in
//!    place. A crash at any point leaves either the old image (journal
//!    absent, empty, or torn → ignored), a stale journal over the image it
//!    already produced (re-applied on open — idempotent full-page images),
//!    or enough to finish the new one (journal intact → re-applied on
//!    open). Truncating instead of unlinking keeps the journal's directory
//!    entry stable, so the steady-state checkpoint pays no directory
//!    fsyncs — the change-proportional cost is the dirty pages themselves.
//!
//! Pages are cached and journaled in their *enciphered* form — the pool
//! sits below the crypto boundary, exactly where Bayer–Metzger put the
//! hardware unit, so neither the cache nor the journal ever holds
//! plaintext key or record bytes.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::block::{BlockId, BlockStore, StorageError};
use crate::bufferpool::BufferPool;
use crate::counters::OpCounters;
use crate::filedisk::{crc32, sync_dir, FileDisk};

const JOURNAL_MAGIC: &[u8; 8] = b"SKSJRNL1";
const JOURNAL_VERSION: u32 = 1;

/// A checkpointing, thread-safe block store over one `FileDisk` file.
///
/// Reads lock an internal mutex (the pool must update LRU state), so the
/// store is `Sync` and a tree on top can sit behind an `RwLock` in the
/// engine. `flush` *is* the checkpoint.
#[derive(Debug)]
pub struct PagedFileStore {
    inner: Mutex<Inner>,
    block_size: usize,
    counters: OpCounters,
    journal_path: PathBuf,
    dir: PathBuf,
}

#[derive(Debug)]
struct Inner {
    pool: BufferPool<FileDisk>,
    /// Logical device length (>= the file's until the next checkpoint).
    num_blocks: u32,
    /// Free stack mirror: `pop()` yields the next allocation.
    free: Vec<u32>,
    /// Membership mirror of `free`, so the per-I/O freed-block check is
    /// O(1) instead of a scan of the stack.
    free_set: std::collections::HashSet<u32>,
    /// Whether allocation state diverged from the file since checkpoint.
    alloc_dirty: bool,
}

impl Inner {
    fn new(pool: BufferPool<FileDisk>, num_blocks: u32, free: Vec<u32>) -> Self {
        let free_set = free.iter().copied().collect();
        Inner {
            pool,
            num_blocks,
            free,
            free_set,
            alloc_dirty: false,
        }
    }

    fn check(&self, id: BlockId) -> Result<(), StorageError> {
        if id.0 >= self.num_blocks {
            return Err(StorageError::OutOfRange {
                id: id.0,
                len: self.num_blocks,
            });
        }
        if self.free_set.contains(&id.0) {
            return Err(StorageError::FreedBlock { id: id.0 });
        }
        Ok(())
    }
}

fn journal_path_for(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".journal");
    path.with_file_name(name)
}

fn parent_dir(path: &Path) -> PathBuf {
    path.parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

impl PagedFileStore {
    /// Creates a fresh store file (truncating existing content and
    /// discarding any stale checkpoint journal).
    pub fn create<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        pool_pages: usize,
        counters: OpCounters,
    ) -> Result<Self, StorageError> {
        let path = path.as_ref();
        let journal_path = journal_path_for(path);
        std::fs::remove_file(&journal_path).ok();
        let disk = FileDisk::create_with_counters(path, block_size, counters.clone())?;
        Ok(PagedFileStore {
            inner: Mutex::new(Inner::new(
                BufferPool::new_no_steal(disk, pool_pages),
                0,
                Vec::new(),
            )),
            block_size,
            counters,
            journal_path,
            dir: parent_dir(path),
        })
    }

    /// Opens an existing store: finishes (or discards) an interrupted
    /// checkpoint via its journal, then adopts the persisted allocation
    /// state.
    pub fn open<P: AsRef<Path>>(
        path: P,
        pool_pages: usize,
        counters: OpCounters,
    ) -> Result<Self, StorageError> {
        let path = path.as_ref();
        let journal_path = journal_path_for(path);
        let dir = parent_dir(path);
        if journal_path.exists() {
            // An intact journal means the previous checkpoint reached its
            // commit point: finish applying it (idempotent). A torn or
            // already-retired (empty) one never needs replay — the file
            // holds the previous consistent image. Either way the entry
            // is retired by truncation, matching `flush`: the directory
            // entry stays, so a clean open pays no directory fsync (and
            // an already-empty journal costs nothing at all).
            if let Some(journal) = Journal::read(&journal_path)? {
                let mut disk = FileDisk::open_with_counters(path, counters.clone())?;
                if journal.block_size != disk.block_size() {
                    return Err(StorageError::Corrupt(format!(
                        "journal block size {} != device block size {}",
                        journal.block_size,
                        disk.block_size()
                    )));
                }
                journal.apply(&mut disk)?;
            }
            let meta = std::fs::metadata(&journal_path)?;
            if meta.len() > 0 {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&journal_path)?
                    .set_len(0)?;
            }
        }
        let disk = FileDisk::open_with_counters(path, counters.clone())?;
        let num_blocks = disk.num_blocks();
        let free = disk.free_list_chain()?;
        let block_size = disk.block_size();
        Ok(PagedFileStore {
            inner: Mutex::new(Inner::new(
                BufferPool::new_no_steal(disk, pool_pages),
                num_blocks,
                free,
            )),
            block_size,
            counters,
            journal_path,
            dir,
        })
    }

    /// Number of frames currently cached (observability/tests).
    pub fn cached_frames(&self) -> usize {
        self.inner.lock().expect("paged store lock").pool.len()
    }

    /// Number of dirty (pinned) frames awaiting the next checkpoint.
    pub fn dirty_frames(&self) -> usize {
        self.inner
            .lock()
            .expect("paged store lock")
            .pool
            .dirty_count()
    }
}

impl BlockStore for PagedFileStore {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u32 {
        self.inner.lock().expect("paged store lock").num_blocks
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        self.counters.bump(|c| &c.allocs);
        let inner = self.inner.get_mut().expect("paged store lock");
        let id = match inner.free.pop() {
            Some(id) => {
                inner.free_set.remove(&id);
                BlockId(id)
            }
            None => {
                let id = BlockId(inner.num_blocks);
                inner.num_blocks += 1;
                id
            }
        };
        // A fresh (or recycled) block reads as zeros *through the cache*;
        // the file keeps whatever stale bytes it had until checkpoint.
        inner.pool.write(id, &vec![0u8; self.block_size])?;
        inner.alloc_dirty = true;
        Ok(id)
    }

    fn allocate_min(&mut self) -> Result<BlockId, StorageError> {
        let has_free = {
            let inner = self.inner.get_mut().expect("paged store lock");
            !inner.free.is_empty()
        };
        if !has_free {
            return self.allocate();
        }
        self.counters.bump(|c| &c.allocs);
        let inner = self.inner.get_mut().expect("paged store lock");
        let pos = crate::memdisk::lowest_free(&inner.free).expect("free list non-empty");
        let id = inner.free.swap_remove(pos);
        inner.free_set.remove(&id);
        inner.pool.write(BlockId(id), &vec![0u8; self.block_size])?;
        inner.alloc_dirty = true;
        Ok(BlockId(id))
    }

    fn free(&mut self, id: BlockId) -> Result<(), StorageError> {
        let inner = self.inner.get_mut().expect("paged store lock");
        inner.check(id)?;
        self.counters.bump(|c| &c.frees);
        inner.pool.discard(id);
        inner.free.push(id.0);
        inner.free_set.insert(id.0);
        inner.alloc_dirty = true;
        Ok(())
    }

    fn claim_free(&mut self, id: BlockId) -> Result<(), StorageError> {
        let inner = self.inner.get_mut().expect("paged store lock");
        let Some(pos) = inner.free.iter().position(|&f| f == id.0) else {
            return Err(StorageError::Io(format!("block {} is not free", id.0)));
        };
        self.counters.bump(|c| &c.allocs);
        inner.free.swap_remove(pos);
        inner.free_set.remove(&id.0);
        inner.pool.write(id, &vec![0u8; self.block_size])?;
        inner.alloc_dirty = true;
        Ok(())
    }

    fn truncate_free_tail(&mut self) -> Result<u32, StorageError> {
        let inner = self.inner.get_mut().expect("paged store lock");
        let mut released = 0u32;
        while inner.num_blocks > 0 && inner.free_set.contains(&(inner.num_blocks - 1)) {
            let id = inner.num_blocks - 1;
            let pos = inner
                .free
                .iter()
                .position(|&f| f == id)
                .expect("free_set mirrors free");
            inner.free.swap_remove(pos);
            inner.free_set.remove(&id);
            inner.pool.discard(BlockId(id));
            inner.num_blocks -= 1;
            released += 1;
        }
        if released > 0 {
            inner.alloc_dirty = true;
        }
        self.counters
            .bump_by(|c| &c.device_truncated_blocks, released as u64);
        Ok(released)
    }

    fn read_block(&self, id: BlockId, buf: &mut [u8]) -> Result<(), StorageError> {
        if buf.len() != self.block_size {
            return Err(StorageError::WrongBlockSize {
                expected: self.block_size,
                got: buf.len(),
            });
        }
        let mut inner = self.inner.lock().expect("paged store lock");
        inner.check(id)?;
        let data = inner.pool.read(id)?;
        buf.copy_from_slice(data);
        Ok(())
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        let inner = self.inner.get_mut().expect("paged store lock");
        inner.check(id)?;
        inner.pool.write(id, data)
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn dirty_pages(&self) -> usize {
        self.dirty_frames()
    }

    fn free_blocks(&self) -> u32 {
        self.inner.lock().expect("paged store lock").free.len() as u32
    }

    fn free_block_ids(&self) -> Vec<u32> {
        self.inner.lock().expect("paged store lock").free.clone()
    }

    /// The checkpoint: journal → apply in place → clear the journal.
    fn flush(&mut self) -> Result<(), StorageError> {
        let inner = self.inner.get_mut().expect("paged store lock");
        let dirty = inner.pool.dirty_frames();
        if dirty.is_empty() && !inner.alloc_dirty {
            // Nothing changed since the last checkpoint; still push the
            // header + fsync so callers get the durability they asked for.
            return inner.pool.store_mut().flush();
        }
        Journal {
            block_size: self.block_size,
            num_blocks: inner.num_blocks,
            free: inner.free.clone(),
            pages: dirty.clone(),
        }
        .write(&self.journal_path, &self.dir)?;
        let disk = inner.pool.store_mut();
        disk.restore_allocation(inner.num_blocks, &inner.free)?;
        for (id, data) in &dirty {
            disk.write_block(*id, data)?;
        }
        disk.flush()?;
        inner.pool.mark_all_clean();
        inner.alloc_dirty = false;
        // Retire the journal by truncating it in place instead of
        // unlinking it. An empty file fails the magic/CRC parse and is
        // ignored on open; a *stale* journal (truncate lost to a crash)
        // replays full page images of the checkpoint that already
        // committed, which is idempotent. Keeping the directory entry
        // stable makes the steady-state checkpoint cost zero directory
        // fsyncs instead of two (journal create + unlink).
        std::fs::OpenOptions::new()
            .write(true)
            .open(&self.journal_path)?
            .set_len(0)?;
        Ok(())
    }

    /// What is physically on the medium — unflushed dirty frames live in
    /// RAM and are deliberately *not* part of the stolen-disk view.
    fn raw_image(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        self.inner
            .lock()
            .expect("paged store lock")
            .pool
            .store()
            .raw_image()
    }
}

/// The checkpoint journal: allocation end-state plus full images of every
/// dirty page, committed by a trailing CRC. Torn writes fail the CRC and
/// the whole journal is discarded — the previous checkpoint still stands.
struct Journal {
    block_size: usize,
    num_blocks: u32,
    free: Vec<u32>,
    pages: Vec<(BlockId, Vec<u8>)>,
}

impl Journal {
    fn write(&self, path: &Path, dir: &Path) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(
            8 + 4 + 8 + 4 + 4 + self.free.len() * 4 + 4 + self.pages.len() * (4 + self.block_size),
        );
        buf.extend_from_slice(JOURNAL_MAGIC);
        buf.extend_from_slice(&JOURNAL_VERSION.to_be_bytes());
        buf.extend_from_slice(&(self.block_size as u64).to_be_bytes());
        buf.extend_from_slice(&self.num_blocks.to_be_bytes());
        buf.extend_from_slice(&(self.free.len() as u32).to_be_bytes());
        for &id in &self.free {
            buf.extend_from_slice(&id.to_be_bytes());
        }
        buf.extend_from_slice(&(self.pages.len() as u32).to_be_bytes());
        for (id, data) in &self.pages {
            debug_assert_eq!(data.len(), self.block_size);
            buf.extend_from_slice(&id.0.to_be_bytes());
            buf.extend_from_slice(data);
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_be_bytes());
        let entry_is_new = !path.exists();
        let mut file = std::fs::File::create(path)?;
        file.write_all(&buf)?;
        file.sync_all()?;
        drop(file);
        // The journal's directory entry must be durable before any
        // in-place write, or a crash could leave a half-applied image with
        // no journal to finish it from. Once the entry exists it is kept
        // (commit truncates in place rather than unlinking), so steady-
        // state checkpoints skip this directory fsync entirely.
        if entry_is_new {
            sync_dir(dir)?;
        }
        Ok(())
    }

    /// `Ok(None)` = torn/invalid journal (checkpoint never committed).
    fn read(path: &Path) -> Result<Option<Journal>, StorageError> {
        let buf = std::fs::read(path)?;
        Ok(Self::parse(&buf))
    }

    fn parse(buf: &[u8]) -> Option<Journal> {
        if buf.len() < 8 + 4 + 8 + 4 + 4 + 4 + 4 || &buf[0..8] != JOURNAL_MAGIC {
            return None;
        }
        let body = &buf[..buf.len() - 4];
        let crc_stored = u32::from_be_bytes(buf[buf.len() - 4..].try_into().ok()?);
        if crc32(body) != crc_stored {
            return None;
        }
        let mut at = 8usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let end = at.checked_add(n)?;
            let s = body.get(at..end)?;
            at = end;
            Some(s)
        };
        let version = u32::from_be_bytes(take(4)?.try_into().ok()?);
        if version != JOURNAL_VERSION {
            return None;
        }
        let block_size = u64::from_be_bytes(take(8)?.try_into().ok()?) as usize;
        let num_blocks = u32::from_be_bytes(take(4)?.try_into().ok()?);
        let free_len = u32::from_be_bytes(take(4)?.try_into().ok()?) as usize;
        // The length words are inside the CRC, but a CRC-colliding corrupt
        // journal must not be able to demand a multi-GB allocation: clamp
        // every pre-allocation by what the remaining bytes could encode.
        // (Fixed fields consumed so far: magic 8 + version 4 + block_size 8
        // + num_blocks 4 + free_len 4.)
        let after_free_len = body.len().saturating_sub(8 + 4 + 8 + 4 + 4);
        let mut free = Vec::with_capacity(free_len.min(after_free_len / 4));
        for _ in 0..free_len {
            free.push(u32::from_be_bytes(take(4)?.try_into().ok()?));
        }
        let page_count = u32::from_be_bytes(take(4)?.try_into().ok()?) as usize;
        let entry_len = 4usize.saturating_add(block_size).max(1);
        let after_page_count = after_free_len.saturating_sub(free_len.saturating_mul(4) + 4);
        let mut pages = Vec::with_capacity(page_count.min(after_page_count / entry_len));
        for _ in 0..page_count {
            let id = u32::from_be_bytes(take(4)?.try_into().ok()?);
            pages.push((BlockId(id), take(block_size)?.to_vec()));
        }
        if at != body.len() {
            return None; // trailing garbage
        }
        Some(Journal {
            block_size,
            num_blocks,
            free,
            pages,
        })
    }

    fn apply(&self, disk: &mut FileDisk) -> Result<(), StorageError> {
        disk.restore_allocation(self.num_blocks, &self.free)?;
        for (id, data) in &self.pages {
            disk.write_block(*id, data)?;
        }
        disk.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sks_paged_{}_{}", std::process::id(), name));
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(journal_path_for(&p)).ok();
        p
    }

    #[test]
    fn roundtrip_survives_checkpoint_and_reopen() {
        let path = tmpfile("roundtrip");
        {
            let mut store = PagedFileStore::create(&path, 64, 4, OpCounters::new()).unwrap();
            let a = store.allocate().unwrap();
            let b = store.allocate().unwrap();
            store.write_block(a, &[0x11; 64]).unwrap();
            store.write_block(b, &[0x22; 64]).unwrap();
            store.flush().unwrap();
        }
        {
            let store = PagedFileStore::open(&path, 4, OpCounters::new()).unwrap();
            assert_eq!(store.num_blocks(), 2);
            assert_eq!(store.read_block_vec(BlockId(0)).unwrap(), vec![0x11; 64]);
            assert_eq!(store.read_block_vec(BlockId(1)).unwrap(), vec![0x22; 64]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nothing_reaches_the_file_before_checkpoint() {
        let path = tmpfile("nosteal");
        {
            let mut store = PagedFileStore::create(&path, 64, 2, OpCounters::new()).unwrap();
            for i in 0..6u8 {
                let id = store.allocate().unwrap();
                store.write_block(id, &[i; 64]).unwrap();
            }
            // Dirty pages exceed the pool capacity yet stay pinned.
            assert_eq!(store.dirty_frames(), 6);
            let s = store.counters().snapshot();
            assert_eq!(s.block_writes, 0, "no physical write before checkpoint");
            // Dropped without flush: the "crash".
        }
        {
            let store = PagedFileStore::open(&path, 2, OpCounters::new()).unwrap();
            assert_eq!(store.num_blocks(), 0, "unflushed epoch fully discarded");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_list_round_trips_through_checkpoint() {
        let path = tmpfile("freelist");
        {
            let mut store = PagedFileStore::create(&path, 64, 4, OpCounters::new()).unwrap();
            let a = store.allocate().unwrap();
            let b = store.allocate().unwrap();
            let c = store.allocate().unwrap();
            store.write_block(c, &[3; 64]).unwrap();
            store.free(a).unwrap();
            store.free(b).unwrap();
            store.flush().unwrap();
        }
        {
            let mut store = PagedFileStore::open(&path, 4, OpCounters::new()).unwrap();
            assert_eq!(store.num_blocks(), 3);
            assert!(store.read_block_vec(BlockId(0)).is_err(), "freed");
            // Pops come back in LIFO order, zeroed.
            assert_eq!(store.allocate().unwrap(), BlockId(1));
            assert_eq!(store.read_block_vec(BlockId(1)).unwrap(), vec![0u8; 64]);
            assert_eq!(store.allocate().unwrap(), BlockId(0));
            assert_eq!(store.allocate().unwrap(), BlockId(3));
            assert_eq!(store.read_block_vec(BlockId(2)).unwrap(), vec![3; 64]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_journal_is_discarded_and_old_image_stands() {
        let path = tmpfile("torn_journal");
        {
            let mut store = PagedFileStore::create(&path, 64, 4, OpCounters::new()).unwrap();
            let a = store.allocate().unwrap();
            store.write_block(a, &[0xAA; 64]).unwrap();
            store.flush().unwrap();
        }
        // A torn (CRC-less) journal left by a crash mid-checkpoint-write.
        std::fs::write(journal_path_for(&path), b"SKSJRNL1 but cut off").unwrap();
        {
            let store = PagedFileStore::open(&path, 4, OpCounters::new()).unwrap();
            assert_eq!(store.read_block_vec(BlockId(0)).unwrap(), vec![0xAA; 64]);
        }
        let retired = std::fs::metadata(journal_path_for(&path)).unwrap();
        assert_eq!(retired.len(), 0, "torn journal retired by truncation");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(journal_path_for(&path)).ok();
    }

    #[test]
    fn intact_journal_is_applied_on_open() {
        let path = tmpfile("intact_journal");
        {
            let mut store = PagedFileStore::create(&path, 64, 4, OpCounters::new()).unwrap();
            let a = store.allocate().unwrap();
            store.write_block(a, &[0x01; 64]).unwrap();
            store.flush().unwrap();
        }
        // Simulate a crash *after* the journal committed but before the
        // in-place application: hand-write a complete journal that blocks
        // 0 and a new block 1 should end up with new content.
        Journal {
            block_size: 64,
            num_blocks: 2,
            free: vec![],
            pages: vec![(BlockId(0), vec![0xEE; 64]), (BlockId(1), vec![0xFF; 64])],
        }
        .write(&journal_path_for(&path), &parent_dir(&path))
        .unwrap();
        {
            let store = PagedFileStore::open(&path, 4, OpCounters::new()).unwrap();
            assert_eq!(store.num_blocks(), 2);
            assert_eq!(store.read_block_vec(BlockId(0)).unwrap(), vec![0xEE; 64]);
            assert_eq!(store.read_block_vec(BlockId(1)).unwrap(), vec![0xFF; 64]);
        }
        let retired = std::fs::metadata(journal_path_for(&path)).unwrap();
        assert_eq!(retired.len(), 0, "applied journal retired by truncation");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(journal_path_for(&path)).ok();
    }

    #[test]
    fn committed_journal_is_truncated_in_place_and_ignored_on_open() {
        let path = tmpfile("retired_journal");
        {
            let mut store = PagedFileStore::create(&path, 64, 4, OpCounters::new()).unwrap();
            let a = store.allocate().unwrap();
            store.write_block(a, &[0x10; 64]).unwrap();
            store.flush().unwrap();
            // Commit retires the journal by truncation, not unlinking:
            // the directory entry stays (so later checkpoints skip the
            // directory fsyncs) and the empty file parses as "no journal".
            let jp = journal_path_for(&path);
            assert!(jp.exists(), "journal entry kept after commit");
            assert_eq!(std::fs::metadata(&jp).unwrap().len(), 0);
            store.write_block(a, &[0x11; 64]).unwrap();
            store.flush().unwrap();
            assert_eq!(std::fs::metadata(&jp).unwrap().len(), 0);
        }
        let store = PagedFileStore::open(&path, 4, OpCounters::new()).unwrap();
        assert_eq!(store.read_block_vec(BlockId(0)).unwrap(), vec![0x11; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_committed_journal_replays_idempotently() {
        // A crash can lose the commit-time truncation: the image already
        // holds the checkpoint's result AND the journal that produced it.
        // Re-applying full page images over their own output must be a
        // no-op.
        let path = tmpfile("stale_journal");
        {
            let mut store = PagedFileStore::create(&path, 64, 4, OpCounters::new()).unwrap();
            let a = store.allocate().unwrap();
            store.write_block(a, &[0x77; 64]).unwrap();
            store.flush().unwrap();
        }
        // Resurrect the journal exactly as the committed checkpoint wrote
        // it (truncation lost), then reopen twice: both opens must land on
        // the same image.
        Journal {
            block_size: 64,
            num_blocks: 1,
            free: vec![],
            pages: vec![(BlockId(0), vec![0x77; 64])],
        }
        .write(&journal_path_for(&path), &parent_dir(&path))
        .unwrap();
        for _ in 0..2 {
            let store = PagedFileStore::open(&path, 4, OpCounters::new()).unwrap();
            assert_eq!(store.num_blocks(), 1);
            assert_eq!(store.read_block_vec(BlockId(0)).unwrap(), vec![0x77; 64]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_image_shows_the_medium_not_the_cache() {
        let path = tmpfile("raw_image");
        let mut store = PagedFileStore::create(&path, 64, 4, OpCounters::new()).unwrap();
        let a = store.allocate().unwrap();
        store.write_block(a, &[0x42; 64]).unwrap();
        assert!(
            BlockStore::raw_image(&store).unwrap().is_empty(),
            "dirty frames are in RAM, not on the stolen medium"
        );
        store.flush().unwrap();
        assert_eq!(BlockStore::raw_image(&store).unwrap(), vec![vec![0x42; 64]]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_free_tail_shrinks_the_file_at_checkpoint() {
        let path = tmpfile("shrink");
        {
            let mut store = PagedFileStore::create(&path, 64, 8, OpCounters::new()).unwrap();
            let ids: Vec<BlockId> = (0..6).map(|_| store.allocate().unwrap()).collect();
            for (i, &id) in ids.iter().enumerate() {
                store.write_block(id, &[i as u8 + 1; 64]).unwrap();
            }
            store.flush().unwrap();
            let full_len = std::fs::metadata(&path).unwrap().len();
            // Free the tail half plus one interior block.
            store.free(ids[5]).unwrap();
            store.free(ids[4]).unwrap();
            store.free(ids[1]).unwrap();
            assert_eq!(store.truncate_free_tail().unwrap(), 2);
            assert_eq!(store.num_blocks(), 4, "interior free block retained");
            assert_eq!(store.free_blocks(), 1);
            store.flush().unwrap();
            let cut_len = std::fs::metadata(&path).unwrap().len();
            assert!(cut_len < full_len, "{cut_len} !< {full_len}");
            assert_eq!(store.counters().snapshot().device_truncated_blocks, 2);
        }
        {
            // The shrink survives reopen; the interior free block still pops.
            let mut store = PagedFileStore::open(&path, 8, OpCounters::new()).unwrap();
            assert_eq!(store.num_blocks(), 4);
            assert_eq!(store.allocate_min().unwrap(), BlockId(1));
            assert_eq!(store.read_block_vec(BlockId(2)).unwrap(), vec![3u8; 64]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn claim_free_takes_a_chosen_block() {
        let path = tmpfile("claim");
        let mut store = PagedFileStore::create(&path, 64, 8, OpCounters::new()).unwrap();
        let ids: Vec<BlockId> = (0..4).map(|_| store.allocate().unwrap()).collect();
        store.free(ids[1]).unwrap();
        store.free(ids[2]).unwrap();
        store.claim_free(BlockId(1)).unwrap();
        assert!(store.claim_free(BlockId(3)).is_err(), "live block");
        assert!(store.claim_free(BlockId(1)).is_err(), "already claimed");
        store.write_block(BlockId(1), &[9u8; 64]).unwrap();
        assert_eq!(store.free_block_ids(), vec![2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_parse_rejects_mutations() {
        let j = Journal {
            block_size: 64,
            num_blocks: 3,
            free: vec![2],
            pages: vec![(BlockId(0), vec![9; 64])],
        };
        let path = tmpfile("parse");
        j.write(&path, &parent_dir(&path)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        assert!(Journal::parse(&bytes).is_some());
        bytes[20] ^= 1;
        assert!(Journal::parse(&bytes).is_none(), "CRC catches bit flips");
        std::fs::remove_file(&path).ok();
    }
}
