//! Bounds-checked cursors for serialising structures into fixed-size pages.
//!
//! All on-disk integers are big-endian. Node codecs use these instead of raw
//! slice indexing so that layout bugs surface as typed errors, not panics.

/// Error from page serialisation/deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageOverflow {
    pub offset: usize,
    pub requested: usize,
    pub page_len: usize,
}

impl std::fmt::Display for PageOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "page access of {} bytes at offset {} exceeds page of {} bytes",
            self.requested, self.offset, self.page_len
        )
    }
}

impl std::error::Error for PageOverflow {}

/// Sequential writer over a page buffer.
#[derive(Debug)]
pub struct PageWriter<'a> {
    page: &'a mut [u8],
    pos: usize,
}

impl<'a> PageWriter<'a> {
    pub fn new(page: &'a mut [u8]) -> Self {
        PageWriter { page, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.page.len() - self.pos
    }

    fn claim(&mut self, n: usize) -> Result<&mut [u8], PageOverflow> {
        if self.pos + n > self.page.len() {
            return Err(PageOverflow {
                offset: self.pos,
                requested: n,
                page_len: self.page.len(),
            });
        }
        let slice = &mut self.page[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn put_u8(&mut self, v: u8) -> Result<(), PageOverflow> {
        self.claim(1)?[0] = v;
        Ok(())
    }

    pub fn put_u16(&mut self, v: u16) -> Result<(), PageOverflow> {
        self.claim(2)?.copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    pub fn put_u32(&mut self, v: u32) -> Result<(), PageOverflow> {
        self.claim(4)?.copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    pub fn put_u64(&mut self, v: u64) -> Result<(), PageOverflow> {
        self.claim(8)?.copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    pub fn put_bytes(&mut self, v: &[u8]) -> Result<(), PageOverflow> {
        self.claim(v.len())?.copy_from_slice(v);
        Ok(())
    }

    /// Zero-fills the rest of the page.
    pub fn pad_remaining(&mut self) {
        let pos = self.pos;
        self.page[pos..].fill(0);
        self.pos = self.page.len();
    }
}

/// Sequential reader over a page buffer.
#[derive(Debug)]
pub struct PageReader<'a> {
    page: &'a [u8],
    pos: usize,
}

impl<'a> PageReader<'a> {
    pub fn new(page: &'a [u8]) -> Self {
        PageReader { page, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.page.len() - self.pos
    }

    /// Repositions the cursor (for lazily probing fixed-offset layouts).
    pub fn seek(&mut self, pos: usize) -> Result<(), PageOverflow> {
        if pos > self.page.len() {
            return Err(PageOverflow {
                offset: pos,
                requested: 0,
                page_len: self.page.len(),
            });
        }
        self.pos = pos;
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PageOverflow> {
        // `n` can come straight from medium bytes; the bound must hold
        // even when `pos + n` would overflow.
        if n > self.page.len().saturating_sub(self.pos) {
            return Err(PageOverflow {
                offset: self.pos,
                requested: n,
                page_len: self.page.len(),
            });
        }
        let slice = &self.page[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, PageOverflow> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, PageOverflow> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32, PageOverflow> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, PageOverflow> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], PageOverflow> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_mixed_fields() {
        let mut page = vec![0u8; 64];
        {
            let mut w = PageWriter::new(&mut page);
            w.put_u8(0x01).unwrap();
            w.put_u16(0x0203).unwrap();
            w.put_u32(0x04050607).unwrap();
            w.put_u64(0x08090a0b0c0d0e0f).unwrap();
            w.put_bytes(b"hello").unwrap();
            w.pad_remaining();
            assert_eq!(w.remaining(), 0);
        }
        let mut r = PageReader::new(&page);
        assert_eq!(r.get_u8().unwrap(), 0x01);
        assert_eq!(r.get_u16().unwrap(), 0x0203);
        assert_eq!(r.get_u32().unwrap(), 0x04050607);
        assert_eq!(r.get_u64().unwrap(), 0x08090a0b0c0d0e0f);
        assert_eq!(r.get_bytes(5).unwrap(), b"hello");
        assert_eq!(r.get_u8().unwrap(), 0, "padding is zero");
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let mut page = vec![0u8; 4];
        let mut w = PageWriter::new(&mut page);
        w.put_u32(7).unwrap();
        let err = w.put_u8(1).unwrap_err();
        assert_eq!(err.offset, 4);
        let mut r = PageReader::new(&page);
        r.get_u32().unwrap();
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn seek_supports_fixed_offset_probing() {
        let mut page = vec![0u8; 32];
        {
            let mut w = PageWriter::new(&mut page);
            w.put_bytes(&[0; 16]).unwrap();
            w.put_u64(42).unwrap();
        }
        let mut r = PageReader::new(&page);
        r.seek(16).unwrap();
        assert_eq!(r.get_u64().unwrap(), 42);
        assert!(r.seek(33).is_err());
        r.seek(32).unwrap(); // end is a valid position
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn big_endian_on_disk() {
        let mut page = vec![0u8; 8];
        PageWriter::new(&mut page)
            .put_u64(0x0102030405060708)
            .unwrap();
        assert_eq!(page, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(vals in proptest::collection::vec(any::<u64>(), 0..8)) {
            let mut page = vec![0u8; 64];
            {
                let mut w = PageWriter::new(&mut page);
                for &v in &vals {
                    w.put_u64(v).unwrap();
                }
            }
            let mut r = PageReader::new(&page);
            for &v in &vals {
                prop_assert_eq!(r.get_u64().unwrap(), v);
            }
        }
    }
}
