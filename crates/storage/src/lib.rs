//! # sks-storage — simulated secondary storage
//!
//! The storage model of §3 (after Elmasri & Navathe): fixed-size *blocks* on
//! a device, some holding B-tree node triplets, some holding records.
//! Bayer & Metzger place the encryption module at the memory↔disk boundary;
//! this crate provides that boundary with exact accounting:
//!
//! * [`block`] — the [`BlockStore`] trait, the boxed [`DynBlockStore`]
//!   alias the backend-agnostic layers hold, and error types.
//! * [`memdisk`] — in-memory device; [`MemDisk::raw_image`] is the
//!   opponent's view of the stolen medium.
//! * [`filedisk`] — file-backed device with a persistent free list.
//! * [`bufferpool`] — write-back LRU cache at the memory↔disk boundary,
//!   with an optional no-steal (pin-dirty) policy.
//! * [`failstore`] — fault-injection wrapper failing (or tearing) the Nth
//!   write, for deterministic crash probes.
//! * [`paged`] — [`PagedFileStore`]: the file backend's store — the pool
//!   over a [`FileDisk`] with shadowed allocation and journaled, crash-
//!   atomic checkpoints.
//! * [`counters`] — shared atomic [`OpCounters`]: block I/O, cache traffic,
//!   and every class of cryptographic operation the paper's claims count.
//! * [`pagerw`] — bounds-checked big-endian page cursors for node codecs.
//! * [`sync`] — the commit-time durability policy ([`SyncPolicy`]) the
//!   engine's write-ahead log honours (fsync-per-commit vs group commit).

pub mod block;
pub mod bufferpool;
pub mod counters;
pub mod failstore;
pub mod filedisk;
pub mod memdisk;
pub mod paged;
pub mod pagerw;
pub mod sync;

pub use block::{BlockId, BlockStore, DynBlockStore, StorageError};
pub use bufferpool::BufferPool;
pub use counters::{OpCounters, OpCountersInner, OpSnapshot};
pub use failstore::{FailMode, FailPlan, FailStore, KillPoint};
pub use filedisk::{crc32, sync_dir, FileDisk};
pub use memdisk::MemDisk;
pub use paged::PagedFileStore;
pub use pagerw::{PageOverflow, PageReader, PageWriter};
pub use sync::SyncPolicy;
// Observability vocabulary (the `Obs` channel rides on `OpCounters`).
pub use sks_obs::{
    Event, EventKind, Histogram, HistogramSnapshot, Level as ObsLevel, Obs, Stage, NO_PARTITION,
};
