//! An in-memory simulated disk with exact operation accounting.
//!
//! This is the "sequential set of disk blocks" the opponent of §4.1 sees:
//! [`MemDisk::raw_image`] hands the attacker exactly the bytes a stolen disk
//! would contain, while the legal path goes through [`BlockStore`].

use crate::block::{BlockId, BlockStore, StorageError};
use crate::counters::OpCounters;

/// In-memory block device.
#[derive(Debug, Clone)]
pub struct MemDisk {
    block_size: usize,
    blocks: Vec<Vec<u8>>,
    freed: Vec<u32>,
    counters: OpCounters,
}

impl MemDisk {
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 32, "blocks below 32 bytes are not useful");
        MemDisk {
            block_size,
            blocks: Vec::new(),
            freed: Vec::new(),
            counters: OpCounters::new(),
        }
    }

    /// Creates a disk sharing an existing counter set (so a tree store and a
    /// record store can account into one ledger).
    pub fn with_counters(block_size: usize, counters: OpCounters) -> Self {
        MemDisk {
            block_size,
            blocks: Vec::new(),
            freed: Vec::new(),
            counters,
        }
    }

    fn check(&self, id: BlockId) -> Result<(), StorageError> {
        let idx = id.0 as usize;
        if idx >= self.blocks.len() {
            return Err(StorageError::OutOfRange {
                id: id.0,
                len: self.blocks.len() as u32,
            });
        }
        if self.freed.contains(&id.0) {
            return Err(StorageError::FreedBlock { id: id.0 });
        }
        Ok(())
    }

    /// The raw disk image: every block's bytes in block-number order —
    /// exactly what an opponent with access to the physical medium obtains.
    /// Freed blocks are included (real disks do not scrub).
    pub fn raw_image(&self) -> Vec<Vec<u8>> {
        self.blocks.clone()
    }

    /// Number of live (non-freed) blocks.
    pub fn live_blocks(&self) -> u32 {
        (self.blocks.len() - self.freed.len()) as u32
    }
}

/// Index of the smallest id on a free stack (shared by the in-memory and
/// paged stores so their `allocate_min` pick — and thus the post-pick
/// stack layout after `swap_remove` — is identical across backends).
pub(crate) fn lowest_free(freed: &[u32]) -> Option<usize> {
    freed
        .iter()
        .enumerate()
        .min_by_key(|&(_, &id)| id)
        .map(|(pos, _)| pos)
}

impl BlockStore for MemDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        self.counters.bump(|c| &c.allocs);
        if let Some(id) = self.freed.pop() {
            self.blocks[id as usize].fill(0);
            return Ok(BlockId(id));
        }
        let id = self.blocks.len() as u32;
        self.blocks.push(vec![0u8; self.block_size]);
        Ok(BlockId(id))
    }

    fn allocate_min(&mut self) -> Result<BlockId, StorageError> {
        let Some(pos) = lowest_free(&self.freed) else {
            return self.allocate();
        };
        self.counters.bump(|c| &c.allocs);
        let id = self.freed.swap_remove(pos);
        self.blocks[id as usize].fill(0);
        Ok(BlockId(id))
    }

    fn free(&mut self, id: BlockId) -> Result<(), StorageError> {
        self.check(id)?;
        self.counters.bump(|c| &c.frees);
        self.freed.push(id.0);
        Ok(())
    }

    fn claim_free(&mut self, id: BlockId) -> Result<(), StorageError> {
        let Some(pos) = self.freed.iter().position(|&f| f == id.0) else {
            return Err(StorageError::Io(format!("block {} is not free", id.0)));
        };
        self.counters.bump(|c| &c.allocs);
        self.freed.swap_remove(pos);
        self.blocks[id.0 as usize].fill(0);
        Ok(())
    }

    fn truncate_free_tail(&mut self) -> Result<u32, StorageError> {
        let mut released = 0u32;
        while let Some(last) = self.blocks.len().checked_sub(1) {
            let Some(pos) = self.freed.iter().position(|&f| f as usize == last) else {
                break;
            };
            self.freed.swap_remove(pos);
            self.blocks.pop();
            released += 1;
        }
        self.counters
            .bump_by(|c| &c.device_truncated_blocks, released as u64);
        Ok(released)
    }

    fn read_block(&self, id: BlockId, buf: &mut [u8]) -> Result<(), StorageError> {
        self.check(id)?;
        if buf.len() != self.block_size {
            return Err(StorageError::WrongBlockSize {
                expected: self.block_size,
                got: buf.len(),
            });
        }
        self.counters.bump(|c| &c.block_reads);
        buf.copy_from_slice(&self.blocks[id.0 as usize]);
        Ok(())
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        self.check(id)?;
        if data.len() != self.block_size {
            return Err(StorageError::WrongBlockSize {
                expected: self.block_size,
                got: data.len(),
            });
        }
        self.counters.bump(|c| &c.block_writes);
        self.blocks[id.0 as usize].copy_from_slice(data);
        Ok(())
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn free_blocks(&self) -> u32 {
        self.freed.len() as u32
    }

    fn free_block_ids(&self) -> Vec<u32> {
        self.freed.clone()
    }

    fn raw_image(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        Ok(MemDisk::raw_image(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_ne!(a, b);
        let data = vec![7u8; 64];
        disk.write_block(a, &data).unwrap();
        assert_eq!(disk.read_block_vec(a).unwrap(), data);
        assert_eq!(disk.read_block_vec(b).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn free_blocks_are_recycled_zeroed() {
        let mut disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        disk.write_block(a, &[9u8; 64]).unwrap();
        disk.free(a).unwrap();
        assert!(disk.read_block_vec(a).is_err());
        let again = disk.allocate().unwrap();
        assert_eq!(again, a);
        assert_eq!(disk.read_block_vec(again).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn errors_on_bad_access() {
        let mut disk = MemDisk::new(64);
        assert!(matches!(
            disk.read_block_vec(BlockId(0)),
            Err(StorageError::OutOfRange { .. })
        ));
        let a = disk.allocate().unwrap();
        assert!(matches!(
            disk.write_block(a, &[0u8; 63]),
            Err(StorageError::WrongBlockSize { .. })
        ));
        let mut small = [0u8; 12];
        assert!(matches!(
            disk.read_block(a, &mut small),
            Err(StorageError::WrongBlockSize { .. })
        ));
    }

    #[test]
    fn counters_account_io() {
        let mut disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        disk.write_block(a, &[1u8; 64]).unwrap();
        let _ = disk.read_block_vec(a).unwrap();
        let _ = disk.read_block_vec(a).unwrap();
        let s = disk.counters().snapshot();
        assert_eq!((s.allocs, s.block_writes, s.block_reads), (1, 1, 2));
    }

    #[test]
    fn allocate_min_packs_low_and_truncate_drops_the_tail() {
        let mut disk = MemDisk::new(64);
        let ids: Vec<BlockId> = (0..6).map(|_| disk.allocate().unwrap()).collect();
        disk.write_block(ids[3], &[3u8; 64]).unwrap();
        disk.free(ids[1]).unwrap();
        disk.free(ids[4]).unwrap();
        disk.free(ids[5]).unwrap();
        // Min-first allocation picks 1, not the LIFO 5.
        assert_eq!(disk.allocate_min().unwrap(), BlockId(1));
        assert_eq!(disk.truncate_free_tail().unwrap(), 2);
        assert_eq!(disk.num_blocks(), 4);
        assert_eq!(disk.free_blocks(), 0);
        assert_eq!(disk.read_block_vec(ids[3]).unwrap(), vec![3u8; 64]);
        // Claiming a specific live or missing block errors.
        assert!(disk.claim_free(BlockId(3)).is_err());
        disk.free(ids[2]).unwrap();
        disk.claim_free(BlockId(2)).unwrap();
        assert_eq!(disk.read_block_vec(BlockId(2)).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn raw_image_exposes_freed_blocks() {
        let mut disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        disk.write_block(a, &[0xAB; 64]).unwrap();
        disk.free(a).unwrap();
        let image = disk.raw_image();
        assert_eq!(image.len(), 1);
        assert_eq!(image[0], vec![0xAB; 64], "freed data is not scrubbed");
        assert_eq!(disk.live_blocks(), 0);
    }
}
