//! [`FailStore`] — a fault-injection [`BlockStore`] wrapper for crash
//! probes.
//!
//! The wrapper counts every `write_block` and, when armed, fails the Nth
//! one — either cleanly ([`FailMode::Error`]: the write never happens) or
//! as a *torn write* ([`FailMode::Torn`]: only the first half of the block
//! reaches the inner store before the error). After the injected fault the
//! store **fail-stops**: every later mutation errors too, modelling a
//! killed process whose in-memory state is gone. Reads keep working so a
//! test can inspect the wreckage before "rebooting" (reopening the
//! underlying store through the normal recovery path).
//!
//! Arming is deterministic: either an explicit write ordinal, or one
//! derived from a seed ([`FailPlan::arm_from_seed`]) so a probe can sweep
//! reproducible kill points without hand-picking them.

use std::sync::{Arc, Mutex};

use crate::block::{BlockId, BlockStore, StorageError};
use crate::counters::OpCounters;

/// How the armed write fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// The write errors without touching the inner store.
    Error,
    /// The first half of the block is written, then the error — a torn
    /// page on the simulated medium.
    Torn,
}

/// A concrete kill point chosen by [`FailPlan::arm_kill_point`] — the
/// registry of everything a seeded sweep can arm. Carrying the choice in a
/// value lets a fuzz driver log exactly which fault a failing seed maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// The `nth` (1-based) `write_block` fails with the given mode.
    Write(u64, FailMode),
    /// The `nth` (1-based) flush fails before reaching the inner store.
    Flush(u64),
}

#[derive(Debug, Default)]
struct PlanInner {
    writes_seen: u64,
    /// Fail when `writes_seen` reaches this ordinal (1-based).
    armed_at: Option<(u64, FailMode)>,
    flushes_seen: u64,
    /// Fail when `flushes_seen` reaches this ordinal (1-based) — the
    /// inner flush never runs, modelling a kill mid-checkpoint.
    flush_armed_at: Option<u64>,
    tripped: bool,
}

/// Shared handle controlling (and observing) a [`FailStore`]'s schedule.
/// Clone it out before boxing the store away.
#[derive(Debug, Clone, Default)]
pub struct FailPlan {
    inner: Arc<Mutex<PlanInner>>,
}

impl FailPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the plan: the `nth` write (1-based, counted from now) fails
    /// with `mode`. Re-arming resets the write counter and the trip state.
    pub fn arm_nth_write(&self, nth: u64, mode: FailMode) {
        assert!(nth >= 1, "write ordinals are 1-based");
        let mut p = self.inner.lock().expect("fail plan");
        *p = PlanInner {
            writes_seen: 0,
            armed_at: Some((nth, mode)),
            ..PlanInner::default()
        };
    }

    /// Arms the plan on the `nth` *flush* (1-based, counted from now):
    /// the flush fails before reaching the inner store, so nothing of the
    /// in-flight checkpoint commits. Re-arming resets counters and trip
    /// state.
    pub fn arm_nth_flush(&self, nth: u64) {
        assert!(nth >= 1, "flush ordinals are 1-based");
        let mut p = self.inner.lock().expect("fail plan");
        *p = PlanInner {
            flushes_seen: 0,
            flush_armed_at: Some(nth),
            ..PlanInner::default()
        };
    }

    /// Deterministically arms the Nth write with `1 <= N <= max_nth`
    /// derived from `seed` (splitmix64), so seeded sweeps reproduce.
    pub fn arm_from_seed(&self, seed: u64, max_nth: u64, mode: FailMode) -> u64 {
        assert!(max_nth >= 1);
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let nth = (x ^ (x >> 31)) % max_nth + 1;
        self.arm_nth_write(nth, mode);
        nth
    }

    /// Deterministically arms one kill point drawn from the full registry
    /// — write-error, torn-write, or killed-flush — so a single seed axis
    /// sweeps every fault class. `max_writes`/`max_flushes` bound the
    /// ordinals (both 1-based); returns the chosen point for logging.
    pub fn arm_kill_point(&self, seed: u64, max_writes: u64, max_flushes: u64) -> KillPoint {
        assert!(max_writes >= 1 && max_flushes >= 1);
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let point = match x % 4 {
            0 => KillPoint::Write((x >> 2) % max_writes + 1, FailMode::Error),
            1 | 2 => KillPoint::Write((x >> 2) % max_writes + 1, FailMode::Torn),
            _ => KillPoint::Flush((x >> 2) % max_flushes + 1),
        };
        match point {
            KillPoint::Write(nth, mode) => self.arm_nth_write(nth, mode),
            KillPoint::Flush(nth) => self.arm_nth_flush(nth),
        }
        point
    }

    /// Disarms without clearing the trip state.
    pub fn disarm(&self) {
        self.inner.lock().expect("fail plan").armed_at = None;
    }

    /// Clears everything: the store works normally again.
    pub fn reset(&self) {
        *self.inner.lock().expect("fail plan") = PlanInner::default();
    }

    /// Writes observed since the last arm/reset.
    pub fn writes_seen(&self) -> u64 {
        self.inner.lock().expect("fail plan").writes_seen
    }

    /// Whether the armed fault has fired.
    pub fn tripped(&self) -> bool {
        self.inner.lock().expect("fail plan").tripped
    }

    /// Returns the action for the write now being attempted.
    fn on_write(&self) -> Result<Option<FailMode>, StorageError> {
        let mut p = self.inner.lock().expect("fail plan");
        if p.tripped {
            return Err(poisoned());
        }
        p.writes_seen += 1;
        match p.armed_at {
            Some((at, mode)) if p.writes_seen == at => {
                p.tripped = true;
                Ok(Some(mode))
            }
            _ => Ok(None),
        }
    }

    fn check_alive(&self) -> Result<(), StorageError> {
        if self.inner.lock().expect("fail plan").tripped {
            return Err(poisoned());
        }
        Ok(())
    }

    /// Returns Err when this flush should fail (and trips the plan).
    fn on_flush(&self) -> Result<(), StorageError> {
        let mut p = self.inner.lock().expect("fail plan");
        if p.tripped {
            return Err(poisoned());
        }
        p.flushes_seen += 1;
        if p.flush_armed_at == Some(p.flushes_seen) {
            p.tripped = true;
            return Err(poisoned());
        }
        Ok(())
    }
}

fn poisoned() -> StorageError {
    StorageError::Io("injected fault: store is fail-stopped".into())
}

/// A [`BlockStore`] that forwards to `inner` until its [`FailPlan`] fires.
#[derive(Debug)]
pub struct FailStore<S: BlockStore> {
    inner: S,
    plan: FailPlan,
}

impl<S: BlockStore> FailStore<S> {
    /// Wraps `inner`; keep the returned plan handle to arm faults.
    pub fn new(inner: S) -> (Self, FailPlan) {
        let plan = FailPlan::new();
        (
            FailStore {
                inner,
                plan: plan.clone(),
            },
            plan,
        )
    }

    /// Wraps `inner` under an existing plan, so several stores created at
    /// different times (e.g. an engine WAL and the fresh WAL its
    /// checkpoint builds) share one fault schedule and one trip state.
    pub fn with_plan(inner: S, plan: FailPlan) -> Self {
        FailStore { inner, plan }
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store — device-specific calls (e.g.
    /// a [`crate::FileDisk`]'s partial reads) route through here so a WAL
    /// can run on a fault-injected file disk.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The plan handle (same one [`FailStore::new`] returned).
    pub fn plan(&self) -> &FailPlan {
        &self.plan
    }
}

impl<S: BlockStore> BlockStore for FailStore<S> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u32 {
        self.inner.num_blocks()
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        self.plan.check_alive()?;
        self.inner.allocate()
    }

    fn allocate_min(&mut self) -> Result<BlockId, StorageError> {
        self.plan.check_alive()?;
        self.inner.allocate_min()
    }

    fn free(&mut self, id: BlockId) -> Result<(), StorageError> {
        self.plan.check_alive()?;
        self.inner.free(id)
    }

    fn claim_free(&mut self, id: BlockId) -> Result<(), StorageError> {
        self.plan.check_alive()?;
        self.inner.claim_free(id)
    }

    fn truncate_free_tail(&mut self) -> Result<u32, StorageError> {
        self.plan.check_alive()?;
        self.inner.truncate_free_tail()
    }

    fn read_block(&self, id: BlockId, buf: &mut [u8]) -> Result<(), StorageError> {
        self.inner.read_block(id, buf)
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        match self.plan.on_write()? {
            None => self.inner.write_block(id, data),
            Some(FailMode::Error) => Err(poisoned()),
            Some(FailMode::Torn) => {
                // First half new, second half whatever the block held
                // (zeros when it held nothing readable).
                let half = data.len() / 2;
                let mut torn = self
                    .inner
                    .read_block_vec(id)
                    .unwrap_or_else(|_| vec![0u8; data.len()]);
                torn[..half].copy_from_slice(&data[..half]);
                self.inner.write_block(id, &torn)?;
                Err(poisoned())
            }
        }
    }

    fn counters(&self) -> &OpCounters {
        self.inner.counters()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.plan.on_flush()?;
        self.inner.flush()
    }

    fn dirty_pages(&self) -> usize {
        self.inner.dirty_pages()
    }

    fn free_blocks(&self) -> u32 {
        self.inner.free_blocks()
    }

    fn free_block_ids(&self) -> Vec<u32> {
        self.inner.free_block_ids()
    }

    fn raw_image(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        self.inner.raw_image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;

    #[test]
    fn unarmed_store_is_transparent() {
        let (mut store, plan) = FailStore::new(MemDisk::new(64));
        let a = store.allocate().unwrap();
        store.write_block(a, &[7u8; 64]).unwrap();
        assert_eq!(store.read_block_vec(a).unwrap(), vec![7u8; 64]);
        assert_eq!(plan.writes_seen(), 1);
        assert!(!plan.tripped());
    }

    #[test]
    fn nth_write_fails_then_fail_stops() {
        let (mut store, plan) = FailStore::new(MemDisk::new(64));
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        plan.arm_nth_write(2, FailMode::Error);
        store.write_block(a, &[1u8; 64]).unwrap();
        assert!(store.write_block(b, &[2u8; 64]).is_err(), "armed write");
        assert!(plan.tripped());
        // Fail-stop: later mutations die too; the failed write never landed.
        assert!(store.write_block(a, &[3u8; 64]).is_err());
        assert!(store.allocate().is_err());
        assert!(store.flush().is_err());
        assert_eq!(store.read_block_vec(b).unwrap(), vec![0u8; 64]);
        assert_eq!(store.read_block_vec(a).unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn torn_write_leaves_half_the_block() {
        let (mut store, plan) = FailStore::new(MemDisk::new(64));
        let a = store.allocate().unwrap();
        store.write_block(a, &[0xAA; 64]).unwrap();
        plan.arm_nth_write(1, FailMode::Torn);
        assert!(store.write_block(a, &[0xBB; 64]).is_err());
        let got = store.read_block_vec(a).unwrap();
        assert_eq!(&got[..32], &[0xBB; 32][..], "new prefix");
        assert_eq!(&got[32..], &[0xAA; 32][..], "stale suffix");
    }

    #[test]
    fn seeded_arming_is_deterministic_and_in_range() {
        let plan = FailPlan::new();
        let n1 = plan.arm_from_seed(42, 10, FailMode::Error);
        let n2 = plan.arm_from_seed(42, 10, FailMode::Error);
        assert_eq!(n1, n2);
        assert!((1..=10).contains(&n1));
        assert_ne!(
            plan.arm_from_seed(42, 1_000, FailMode::Error),
            plan.arm_from_seed(43, 1_000, FailMode::Error)
        );
    }

    #[test]
    fn reset_revives_the_store() {
        let (mut store, plan) = FailStore::new(MemDisk::new(64));
        let a = store.allocate().unwrap();
        plan.arm_nth_write(1, FailMode::Error);
        assert!(store.write_block(a, &[1u8; 64]).is_err());
        plan.reset();
        store.write_block(a, &[4u8; 64]).unwrap();
        assert_eq!(store.read_block_vec(a).unwrap(), vec![4u8; 64]);
    }
}
