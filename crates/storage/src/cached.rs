//! [`CachedStore`] — a [`BlockStore`] adapter over the [`BufferPool`], so a
//! whole B-tree (or record store) transparently runs behind the cache.
//!
//! Cache hits save physical block I/O but never cryptography: pages are
//! cached in their *enciphered* form, exactly where Bayer–Metzger put the
//! hardware crypto unit (between main memory and the device). Decryption
//! savings come from the codec layer, not from here — keeping the two
//! effects separable in the counters.

use std::cell::RefCell;

use crate::block::{BlockId, BlockStore, StorageError};
use crate::bufferpool::BufferPool;
use crate::counters::OpCounters;

/// A block store wrapped in a write-back LRU cache.
#[derive(Debug)]
pub struct CachedStore<S: BlockStore> {
    /// RefCell so `&self` reads can update LRU state (single-threaded use,
    /// like the rest of the tree stack).
    pool: RefCell<BufferPool<S>>,
    counters: OpCounters,
    block_size: usize,
}

impl<S: BlockStore> CachedStore<S> {
    pub fn new(store: S, capacity: usize) -> Self {
        let counters = store.counters().clone();
        let block_size = store.block_size();
        CachedStore {
            pool: RefCell::new(BufferPool::new(store, capacity)),
            counters,
            block_size,
        }
    }

    /// Flushes dirty frames and returns the inner store.
    pub fn into_inner(self) -> Result<S, StorageError> {
        self.pool.into_inner().into_store()
    }
}

impl<S: BlockStore> BlockStore for CachedStore<S> {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u32 {
        self.pool.borrow().store().num_blocks()
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        self.pool.get_mut().store_mut().allocate()
    }

    fn free(&mut self, id: BlockId) -> Result<(), StorageError> {
        let pool = self.pool.get_mut();
        pool.discard(id);
        pool.store_mut().free(id)
    }

    fn read_block(&self, id: BlockId, buf: &mut [u8]) -> Result<(), StorageError> {
        if buf.len() != self.block_size {
            return Err(StorageError::WrongBlockSize {
                expected: self.block_size,
                got: buf.len(),
            });
        }
        let mut pool = self.pool.borrow_mut();
        let data = pool.read(id)?;
        buf.copy_from_slice(data);
        Ok(())
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        self.pool.get_mut().write(id, data)
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.pool.get_mut().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;

    #[test]
    fn behaves_like_the_inner_store() {
        let mut cached = CachedStore::new(MemDisk::new(64), 4);
        let a = cached.allocate().unwrap();
        let b = cached.allocate().unwrap();
        cached.write_block(a, &[1u8; 64]).unwrap();
        cached.write_block(b, &[2u8; 64]).unwrap();
        assert_eq!(cached.read_block_vec(a).unwrap(), vec![1u8; 64]);
        assert_eq!(cached.read_block_vec(b).unwrap(), vec![2u8; 64]);
        cached.free(a).unwrap();
        assert!(cached.read_block_vec(a).is_err());
        assert_eq!(cached.num_blocks(), 2);
    }

    #[test]
    fn repeated_reads_hit_cache_not_disk() {
        let mut cached = CachedStore::new(MemDisk::new(64), 4);
        let a = cached.allocate().unwrap();
        cached.write_block(a, &[9u8; 64]).unwrap();
        cached.flush().unwrap();
        for _ in 0..10 {
            let _ = cached.read_block_vec(a).unwrap();
        }
        let s = cached.counters().snapshot();
        assert!(s.cache_hits >= 9, "hits {}", s.cache_hits);
        assert!(
            s.block_reads <= 1,
            "physical reads {} should be ≤ 1",
            s.block_reads
        );
    }

    #[test]
    fn into_inner_persists_dirty_frames() {
        let mut cached = CachedStore::new(MemDisk::new(64), 4);
        let a = cached.allocate().unwrap();
        cached.write_block(a, &[7u8; 64]).unwrap();
        let inner = cached.into_inner().unwrap();
        assert_eq!(inner.read_block_vec(a).unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn freed_block_is_dropped_from_cache() {
        let mut cached = CachedStore::new(MemDisk::new(64), 4);
        let a = cached.allocate().unwrap();
        cached.write_block(a, &[5u8; 64]).unwrap();
        cached.free(a).unwrap();
        // Reallocating yields a zeroed block, not the stale cached frame.
        let again = cached.allocate().unwrap();
        assert_eq!(again, a);
        assert_eq!(cached.read_block_vec(again).unwrap(), vec![0u8; 64]);
    }
}
