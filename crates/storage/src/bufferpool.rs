//! An LRU buffer pool layered over any [`BlockStore`].
//!
//! Bayer & Metzger encipher pages *between* main memory and disk; the buffer
//! pool marks that boundary. Pages cached here are the (encrypted) disk
//! images — decryption happens above, in the node codecs — so cache hits
//! save physical I/O but **not** decryption work, exactly as in the paper's
//! model where the hardware crypto unit sits at the disk interface.

use std::collections::HashMap;

use crate::block::{BlockId, BlockStore, StorageError};

/// Write-back LRU cache of whole blocks.
#[derive(Debug)]
pub struct BufferPool<S: BlockStore> {
    store: S,
    capacity: usize,
    frames: HashMap<BlockId, Frame>,
    /// LRU order: front = least recently used. Small capacities only, so a
    /// Vec scan is fine (and keeps the structure obviously correct).
    lru: Vec<BlockId>,
    /// No-steal policy: dirty frames are pinned and never written back by
    /// eviction. The pool then exceeds `capacity` rather than flush — the
    /// discipline checkpointed file backends need, where the on-disk image
    /// must stay a consistent snapshot between explicit checkpoints.
    no_steal: bool,
}

#[derive(Debug)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
}

impl<S: BlockStore> BufferPool<S> {
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            store,
            capacity,
            frames: HashMap::with_capacity(capacity),
            lru: Vec::with_capacity(capacity),
            no_steal: false,
        }
    }

    /// A pool that pins dirty frames (see the `no_steal` field): eviction
    /// only ever drops clean frames, so the backing store is mutated
    /// exclusively by [`BufferPool::flush`]-time write-back.
    pub fn new_no_steal(store: S, capacity: usize) -> Self {
        let mut pool = Self::new(store, capacity);
        pool.no_steal = true;
        pool
    }

    fn touch(&mut self, id: BlockId) {
        if let Some(pos) = self.lru.iter().position(|&x| x == id) {
            self.lru.remove(pos);
        }
        self.lru.push(id);
    }

    fn evict_if_needed(&mut self) -> Result<(), StorageError> {
        while self.frames.len() > self.capacity {
            let victim = if self.no_steal {
                // Least-recently-used *clean* frame — excluding the MRU
                // slot, which is the frame the caller is in the middle of
                // handing out (a just-missed read) and must stay resident.
                // With no other clean frame the pool grows past capacity
                // until the next checkpoint.
                let candidates = &self.lru[..self.lru.len() - 1];
                match candidates.iter().position(|id| !self.frames[id].dirty) {
                    Some(pos) => self.lru.remove(pos),
                    None => return Ok(()),
                }
            } else {
                self.lru.remove(0)
            };
            if let Some(frame) = self.frames.remove(&victim) {
                self.store.counters().bump(|c| &c.cache_evicts);
                if frame.dirty {
                    self.store.write_block(victim, &frame.data)?;
                    self.store.counters().obs().note(
                        sks_obs::EventKind::Eviction,
                        sks_obs::NO_PARTITION,
                        victim.0 as u64,
                        0,
                        0,
                    );
                }
            }
        }
        Ok(())
    }

    /// Reads through the cache.
    pub fn read(&mut self, id: BlockId) -> Result<&[u8], StorageError> {
        if self.frames.contains_key(&id) {
            self.store.counters().bump(|c| &c.cache_hits);
            self.touch(id);
            return Ok(&self.frames[&id].data);
        }
        self.store.counters().bump(|c| &c.cache_misses);
        let data = self.store.read_block_vec(id)?;
        self.frames.insert(id, Frame { data, dirty: false });
        self.touch(id);
        self.evict_if_needed()?;
        Ok(&self.frames[&id].data)
    }

    /// Writes through the cache (write-back: dirty until flush/eviction).
    pub fn write(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        if data.len() != self.store.block_size() {
            return Err(StorageError::WrongBlockSize {
                expected: self.store.block_size(),
                got: data.len(),
            });
        }
        self.frames.insert(
            id,
            Frame {
                data: data.to_vec(),
                dirty: true,
            },
        );
        self.touch(id);
        self.evict_if_needed()
    }

    /// Flushes all dirty frames to the store.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        let mut dirty: Vec<BlockId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        for id in dirty {
            let frame = self.frames.get_mut(&id).expect("collected above");
            self.store.write_block(id, &frame.data)?;
            frame.dirty = false;
        }
        self.store.flush()
    }

    /// Drops a block from the cache without writing it back (used after
    /// `free`).
    pub fn discard(&mut self, id: BlockId) {
        self.frames.remove(&id);
        if let Some(pos) = self.lru.iter().position(|&x| x == id) {
            self.lru.remove(pos);
        }
    }

    /// Snapshot of every dirty frame, in block order — the write set a
    /// journaled checkpoint must make durable.
    pub fn dirty_frames(&self) -> Vec<(BlockId, Vec<u8>)> {
        let mut dirty: Vec<(BlockId, Vec<u8>)> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, f)| (id, f.data.clone()))
            .collect();
        dirty.sort_unstable_by_key(|&(id, _)| id);
        dirty
    }

    /// Number of dirty frames, without cloning their contents (the cheap
    /// form of [`BufferPool::dirty_frames`] for high-water checks).
    pub fn dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }

    /// Declares every cached frame clean *without* writing anything — the
    /// checkpoint already persisted the dirty set through its own path.
    pub fn mark_all_clean(&mut self) {
        for frame in self.frames.values_mut() {
            frame.dirty = false;
        }
    }

    /// Number of cached frames (may exceed `capacity` under no-steal).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn store(&self) -> &S {
        &self.store
    }

    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consumes the pool, flushing and returning the underlying store.
    pub fn into_store(mut self) -> Result<S, StorageError> {
        self.flush()?;
        Ok(self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;

    fn disk_with_blocks(n: u32) -> MemDisk {
        let mut disk = MemDisk::new(64);
        for i in 0..n {
            let id = disk.allocate().unwrap();
            disk.write_block(id, &[i as u8; 64]).unwrap();
        }
        disk
    }

    #[test]
    fn read_hits_after_first_miss() {
        let disk = disk_with_blocks(4);
        let mut pool = BufferPool::new(disk, 2);
        let _ = pool.read(BlockId(0)).unwrap();
        let _ = pool.read(BlockId(0)).unwrap();
        let s = pool.store().counters().snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.block_reads, 1, "only one physical read");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let disk = disk_with_blocks(3);
        let mut pool = BufferPool::new(disk, 2);
        let _ = pool.read(BlockId(0)).unwrap();
        let _ = pool.read(BlockId(1)).unwrap();
        let _ = pool.read(BlockId(0)).unwrap(); // 1 is now LRU
        let _ = pool.read(BlockId(2)).unwrap(); // evicts 1
        let _ = pool.read(BlockId(0)).unwrap(); // still cached
        let s = pool.store().counters().snapshot();
        assert_eq!(s.block_reads, 3, "0,1,2 read once each; 0 stayed cached");
    }

    #[test]
    fn write_back_on_eviction_and_flush() {
        let disk = disk_with_blocks(3);
        let mut pool = BufferPool::new(disk, 1);
        pool.write(BlockId(0), &[0xAA; 64]).unwrap();
        // Evict block 0 by reading block 1.
        let _ = pool.read(BlockId(1)).unwrap();
        assert_eq!(
            pool.store().read_block_vec(BlockId(0)).unwrap(),
            vec![0xAA; 64],
            "dirty frame written back on eviction"
        );
        pool.write(BlockId(2), &[0xBB; 64]).unwrap();
        pool.flush().unwrap();
        assert_eq!(
            pool.store().read_block_vec(BlockId(2)).unwrap(),
            vec![0xBB; 64]
        );
    }

    #[test]
    fn cached_read_returns_written_data_before_flush() {
        let disk = disk_with_blocks(1);
        let mut pool = BufferPool::new(disk, 2);
        pool.write(BlockId(0), &[0xCC; 64]).unwrap();
        assert_eq!(pool.read(BlockId(0)).unwrap(), &[0xCC; 64][..]);
        // Physical store still has the old content (write-back).
        assert_eq!(
            pool.store().read_block_vec(BlockId(0)).unwrap(),
            vec![0x00; 64]
        );
    }

    #[test]
    fn discard_forgets_without_writeback() {
        let disk = disk_with_blocks(1);
        let mut pool = BufferPool::new(disk, 2);
        pool.write(BlockId(0), &[0xDD; 64]).unwrap();
        pool.discard(BlockId(0));
        pool.flush().unwrap();
        assert_eq!(
            pool.store().read_block_vec(BlockId(0)).unwrap(),
            vec![0x00; 64],
            "discarded dirty frame never hits the store"
        );
    }

    #[test]
    fn into_store_flushes() {
        let disk = disk_with_blocks(1);
        let mut pool = BufferPool::new(disk, 2);
        pool.write(BlockId(0), &[0xEE; 64]).unwrap();
        let store = pool.into_store().unwrap();
        assert_eq!(store.read_block_vec(BlockId(0)).unwrap(), vec![0xEE; 64]);
    }

    #[test]
    fn no_steal_pins_dirty_frames_past_capacity() {
        let disk = disk_with_blocks(4);
        let mut pool = BufferPool::new_no_steal(disk, 2);
        pool.write(BlockId(0), &[0xA0; 64]).unwrap();
        pool.write(BlockId(1), &[0xA1; 64]).unwrap();
        pool.write(BlockId(2), &[0xA2; 64]).unwrap();
        assert_eq!(pool.len(), 3, "dirty frames must not be evicted");
        let s = pool.store().counters().snapshot();
        assert_eq!(s.block_writes, 4, "only the fixture writes hit the disk");
        // Clean frames are still evictable: mark clean and trigger eviction.
        pool.mark_all_clean();
        let _ = pool.read(BlockId(3)).unwrap();
        assert!(pool.len() <= 2, "clean frames shrink back to capacity");
        // Nothing was ever written back.
        assert_eq!(
            pool.store().read_block_vec(BlockId(0)).unwrap(),
            vec![0u8; 64]
        );
    }

    #[test]
    fn no_steal_read_miss_with_all_dirty_pool_survives() {
        // Regression: with the pool full of pinned dirty frames, a read
        // miss inserts a clean frame that is the *only* eviction
        // candidate; it must not be evicted out from under the caller.
        let disk = disk_with_blocks(4);
        let mut pool = BufferPool::new_no_steal(disk, 2);
        pool.write(BlockId(0), &[0xA0; 64]).unwrap();
        pool.write(BlockId(1), &[0xA1; 64]).unwrap();
        assert_eq!(pool.read(BlockId(2)).unwrap(), &[2u8; 64][..]);
        assert_eq!(pool.read(BlockId(3)).unwrap(), &[3u8; 64][..]);
        // Dirty frames never hit the store.
        assert_eq!(
            pool.store().read_block_vec(BlockId(0)).unwrap(),
            vec![0u8; 64]
        );
    }

    #[test]
    fn dirty_frames_reports_the_write_set() {
        let disk = disk_with_blocks(3);
        let mut pool = BufferPool::new_no_steal(disk, 4);
        pool.write(BlockId(2), &[2; 64]).unwrap();
        pool.write(BlockId(0), &[0; 64]).unwrap();
        let _ = pool.read(BlockId(1)).unwrap();
        let dirty: Vec<u32> = pool.dirty_frames().iter().map(|(id, _)| id.0).collect();
        assert_eq!(dirty, vec![0, 2], "sorted, clean read frame excluded");
        pool.mark_all_clean();
        assert!(pool.dirty_frames().is_empty());
    }

    #[test]
    fn rejects_wrong_sized_write() {
        let disk = disk_with_blocks(1);
        let mut pool = BufferPool::new(disk, 2);
        assert!(matches!(
            pool.write(BlockId(0), &[0u8; 7]),
            Err(StorageError::WrongBlockSize { .. })
        ));
    }
}
