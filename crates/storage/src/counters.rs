//! Shared operation counters.
//!
//! The paper's comparative claims are about *counts* — decryptions per node
//! visit (§3), re-encipherments on reorganisation (§3), block reads per
//! search (§4.2) — so counting is a first-class concern. Counters are
//! `Arc`-shared atomics: the store, the codec and the tree all increment the
//! same [`OpCounters`] and experiments snapshot it between phases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sks_obs::{Level, Obs};

/// One atomic counter cell.
macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Shared atomic operation counters (see module docs).
        #[derive(Debug, Default)]
        pub struct OpCountersInner {
            $( $(#[$doc])* pub $name: AtomicU64, )+
        }

        /// An owned snapshot of [`OpCounters`] at a point in time.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct OpSnapshot {
            $( $(#[$doc])* pub $name: u64, )+
        }

        impl OpCountersInner {
            fn snapshot(&self) -> OpSnapshot {
                OpSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }

            fn reset(&self) {
                $( self.$name.store(0, Ordering::Relaxed); )+
            }
        }

        impl OpSnapshot {
            /// Component-wise difference (`self - earlier`), saturating.
            pub fn delta(&self, earlier: &OpSnapshot) -> OpSnapshot {
                OpSnapshot {
                    $( $name: self.$name.saturating_sub(earlier.$name), )+
                }
            }

            /// Every counter as `(name, value)`, in declaration order —
            /// the stats surface serialises from this so a new counter
            /// can never be forgotten.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )+ ]
            }
        }
    };
}

counters! {
    /// Physical block reads from the store.
    block_reads,
    /// Physical block writes to the store.
    block_writes,
    /// Blocks allocated.
    allocs,
    /// Blocks freed.
    frees,
    /// Buffer-pool hits (reads served from cache).
    cache_hits,
    /// Buffer-pool misses.
    cache_misses,
    /// Buffer-pool frames evicted (dirty evictions also pay a
    /// `block_writes`).
    cache_evicts,
    /// Plaintext node-cache hits (probes that paid zero physical
    /// decipherments; the *logical* decrypt counters are still bumped).
    node_cache_hits,
    /// Plaintext node-cache misses (probes that read and deciphered the
    /// raw page, then filled the cache).
    node_cache_misses,
    /// Decoded-record cache hits (gets that paid zero physical unseals;
    /// the *logical* data_decrypts counter is still bumped).
    record_cache_hits,
    /// Decoded-record cache misses (gets that unsealed the record from its
    /// data block, then filled the cache).
    record_cache_misses,
    /// Live records rewritten into fresh blocks by record-store compaction
    /// (maintenance work below the paper's cost model — the data_* crypto
    /// counters are not charged for the move itself).
    compact_moved_records,
    /// Data blocks reclaimed through the free list by compaction.
    compact_freed_blocks,
    /// Live node blocks relocated by node-device compaction (sliding a
    /// sealed node into a lower free slot; maintenance work below the
    /// paper's cost model, like `compact_moved_records`).
    compact_moved_nodes,
    /// Blocks released from a device's tail by high-water truncation
    /// (the device physically shrinks; on the file backend the store
    /// file is cut at the new high-water mark).
    device_truncated_blocks,
    /// Compaction passes that could not trust the persistent reverse
    /// index and had to rebuild it with a full tree scan. Stays 0 on the
    /// keyed hot path — the pin for the O(victims) claim.
    compact_index_fallbacks,
    /// Orphaned record copies tombstoned by maintenance (both the
    /// move-then-discover path inside `compact_step` and the
    /// reverse-index sweep against the tree).
    compact_orphans_collected,
    /// Reverse-index slots examined by the orphan sweep (the sweep's
    /// bounded work, reported so `stats()` can show sweep progress).
    compact_sweep_slots,
    /// Cipher-block (or RSA-block) encryptions of *search-key* material.
    key_encrypts,
    /// Cipher-block (or RSA-block) decryptions of *search-key* material.
    key_decrypts,
    /// Cipher-block encryptions of pointer material `E(b‖a‖p)`.
    ptr_encrypts,
    /// Cipher-block decryptions of pointer material.
    ptr_decrypts,
    /// Whole-page stream/CBC block encryptions (Bayer–Metzger full page).
    page_encrypts,
    /// Whole-page stream/CBC block decryptions.
    page_decrypts,
    /// Record (data-block) encryptions — §5's independent data cipher.
    data_encrypts,
    /// Record (data-block) decryptions.
    data_decrypts,
    /// Key disguise applications `f(k)` (substitution, §4).
    disguise_ops,
    /// Disguise inversions `f⁻¹(k̂)`.
    recover_ops,
    /// Discrete-log computations (exponentiation disguise, §4.2).
    dlog_ops,
    /// In-node key comparisons during navigation.
    key_compares,
    /// B-tree node visits.
    node_visits,
    /// Node splits.
    splits,
    /// Node merges.
    merges,
    /// Sibling borrows during deletion.
    borrows,
    /// Write-ahead-log records appended.
    wal_appends,
    /// Write-ahead-log payload bytes appended.
    wal_bytes,
    /// Physical fsyncs issued for WAL commits (group commit batches many
    /// appends into one of these).
    wal_fsyncs,
    /// Write-ahead-log records replayed during crash recovery.
    wal_replayed,
    /// Multi-record WAL frames sealed by batch group commit (each covers
    /// ≥2 staged records under one CTR body + CRC; single-record commits
    /// keep the legacy framing and are not counted here).
    wal_sealed_batches,
    /// Node writes absorbed by the write-behind set instead of paying a
    /// physical re-encipherment (the *logical* encode counters are still
    /// charged per mutation — this is the physical saving).
    node_writes_deferred,
    /// Physical node re-encipherments paid when a write-behind node is
    /// finally sealed (eviction, cache pressure, flush, checkpoint).
    node_reseals,
    /// Reverse-index persists that wrote only the changed block entries
    /// as a delta segment prepended to the existing chain.
    index_delta_flushes,
    /// Reverse-index persists that rewrote the whole chain (periodic
    /// rewrite, first persist, or delta ineligibility).
    index_full_flushes,
    /// Encrypted index-chain payload bytes written by reverse-index
    /// persists — the O(changed) vs O(live) evidence.
    index_flush_bytes,
    /// Replay groups applied through the bulk-fill path during recovery
    /// (each covers a contiguous run of records for one partition).
    replay_batches,
    /// Transactions begun (`Session::begin`). Implicit autocommit ops are
    /// *not* counted here — their cost model is pinned to the pre-txn
    /// counters, so only explicit transactions move the txn_* family.
    txn_begins,
    /// Explicit transactions committed (including empty and single-key
    /// ones).
    txn_commits,
    /// Explicit transactions aborted (explicitly, by drop, or by a failed
    /// commit).
    txn_aborts,
    /// Commits refused by first-committer-wins validation: a written key
    /// was overwritten by another commit after this txn's snapshot.
    txn_conflicts,
    /// Multi-key transaction WAL frames sealed (one atomic commit record
    /// per multi-key txn; single-key txns keep the legacy framing).
    wal_txn_frames,
}

/// Cheaply cloneable handle to a shared counter set.
///
/// Since PR 6 the handle also carries the [`Obs`] observability channel:
/// every layer that counts already holds an `OpCounters`, so the same
/// handle is the natural route for stage timers and flight-recorder
/// events. The default is [`Level::Counters`] — counting without clocks.
#[derive(Debug, Clone)]
pub struct OpCounters {
    inner: Arc<OpCountersInner>,
    obs: Obs,
}

impl Default for OpCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl OpCounters {
    /// Counters with observability at the default [`Level::Counters`]
    /// (no clock reads anywhere; rare events only).
    pub fn new() -> Self {
        Self::with_observability(Level::Counters)
    }

    /// Counters with an explicit observability level.
    pub fn with_observability(level: Level) -> Self {
        OpCounters {
            inner: Arc::new(OpCountersInner::default()),
            obs: Obs::new(level),
        }
    }

    /// The observability channel riding on this counter set.
    #[inline]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Adds `n` to a counter field selected by the closure.
    #[inline]
    pub fn bump_by(&self, field: impl Fn(&OpCountersInner) -> &AtomicU64, n: u64) {
        field(&self.inner).fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to a counter field selected by the closure, e.g.
    /// `counters.bump(|c| &c.ptr_decrypts)`.
    #[inline]
    pub fn bump(&self, field: impl Fn(&OpCountersInner) -> &AtomicU64) {
        self.bump_by(field, 1);
    }

    pub fn snapshot(&self) -> OpSnapshot {
        self.inner.snapshot()
    }

    pub fn reset(&self) {
        self.inner.reset();
    }
}

impl OpSnapshot {
    /// Total cryptogram decryptions of any kind — the paper's headline
    /// metric for search cost.
    pub fn total_decrypts(&self) -> u64 {
        self.key_decrypts + self.ptr_decrypts + self.page_decrypts
    }

    /// Total cryptogram encryptions of any kind.
    pub fn total_encrypts(&self) -> u64 {
        self.key_encrypts + self.ptr_encrypts + self.page_encrypts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let c = OpCounters::new();
        c.bump(|i| &i.block_reads);
        c.bump(|i| &i.block_reads);
        c.bump_by(|i| &i.ptr_decrypts, 5);
        let s = c.snapshot();
        assert_eq!(s.block_reads, 2);
        assert_eq!(s.ptr_decrypts, 5);
        assert_eq!(s.total_decrypts(), 5);
    }

    #[test]
    fn clones_share_state() {
        let a = OpCounters::new();
        let b = a.clone();
        b.bump(|i| &i.splits);
        assert_eq!(a.snapshot().splits, 1);
    }

    #[test]
    fn delta_and_reset() {
        let c = OpCounters::new();
        c.bump_by(|i| &i.node_visits, 10);
        let before = c.snapshot();
        c.bump_by(|i| &i.node_visits, 7);
        let after = c.snapshot();
        assert_eq!(after.delta(&before).node_visits, 7);
        c.reset();
        assert_eq!(c.snapshot().node_visits, 0);
    }

    #[test]
    fn totals_cover_all_crypto_fields() {
        let c = OpCounters::new();
        c.bump(|i| &i.key_encrypts);
        c.bump(|i| &i.ptr_encrypts);
        c.bump(|i| &i.page_encrypts);
        c.bump(|i| &i.key_decrypts);
        c.bump(|i| &i.ptr_decrypts);
        c.bump(|i| &i.page_decrypts);
        let s = c.snapshot();
        assert_eq!(s.total_encrypts(), 3);
        assert_eq!(s.total_decrypts(), 3);
    }
}
