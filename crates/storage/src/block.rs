//! The block-device abstraction: fixed-size blocks addressed by [`BlockId`].
//!
//! The paper's storage model (§3, following Elmasri & Navathe) is a
//! sequential set of fixed-size *blocks* on secondary storage: node blocks
//! hold `[search key, data pointer, tree pointer]` triplets, data blocks
//! hold records. Everything above (B-tree, record store, encipherment)
//! speaks [`BlockStore`]; everything below ([`crate::MemDisk`],
//! [`crate::FileDisk`]) simulates the device.

/// Identifier of a block on the device. Block 0 is conventionally the
/// superblock of whatever structure lives on the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Errors from block-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Block id past the end of the device.
    OutOfRange { id: u32, len: u32 },
    /// Access to a block that is currently on the free list.
    FreedBlock { id: u32 },
    /// Payload length does not match the device block size.
    WrongBlockSize { expected: usize, got: usize },
    /// Underlying I/O failure (file-backed stores).
    Io(String),
    /// On-disk structure is inconsistent.
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::OutOfRange { id, len } => {
                write!(f, "block {id} out of range (device has {len} blocks)")
            }
            StorageError::FreedBlock { id } => write!(f, "block {id} is freed"),
            StorageError::WrongBlockSize { expected, got } => {
                write!(f, "expected {expected}-byte block, got {got}")
            }
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt(e) => write!(f, "corrupt store: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// A device of fixed-size blocks.
///
/// Reads take `&self` (concurrent readers are fine for the in-memory
/// stores); mutation takes `&mut self`. All implementations must count
/// operations on their [`crate::OpCounters`].
pub trait BlockStore {
    /// Fixed block size in bytes.
    fn block_size(&self) -> usize;

    /// Number of blocks ever allocated (the device length; includes freed
    /// blocks still on the free list).
    fn num_blocks(&self) -> u32;

    /// Allocates a zeroed block, reusing freed blocks when available.
    fn allocate(&mut self) -> Result<BlockId, StorageError>;

    /// Allocates the *lowest-numbered* free block (growing the device only
    /// when the free list is empty). Space-governance layers use this so
    /// refills pack toward the front of the device and the tail becomes
    /// reclaimable; the default falls back to plain [`Self::allocate`].
    fn allocate_min(&mut self) -> Result<BlockId, StorageError> {
        self.allocate()
    }

    /// Returns a block to the free list.
    fn free(&mut self, id: BlockId) -> Result<(), StorageError>;

    /// Claims a *specific* block off the free list (zeroed, exactly as
    /// [`Self::allocate`] would hand it out). Node-device compaction uses
    /// this to slide a live node into a chosen low slot. Errors when `id`
    /// is not currently free.
    fn claim_free(&mut self, id: BlockId) -> Result<(), StorageError> {
        let _ = id;
        Err(StorageError::Io(
            "claim_free is not supported by this store".into(),
        ))
    }

    /// Releases every freed block at the device's tail, lowering the
    /// high-water mark (`num_blocks` shrinks; file-backed devices cut the
    /// store file). Returns how many blocks were released. Interior free
    /// blocks stay on the free list untouched. Default: no-op (stores
    /// that cannot shrink report 0).
    fn truncate_free_tail(&mut self) -> Result<u32, StorageError> {
        Ok(0)
    }

    /// Reads a whole block into `buf` (`buf.len()` must equal
    /// [`Self::block_size`]).
    fn read_block(&self, id: BlockId, buf: &mut [u8]) -> Result<(), StorageError>;

    /// Overwrites a whole block (`data.len()` must equal block size).
    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError>;

    /// Shared operation counters.
    fn counters(&self) -> &crate::OpCounters;

    /// Convenience: read into a fresh vector.
    fn read_block_vec(&self, id: BlockId) -> Result<Vec<u8>, StorageError> {
        let mut buf = vec![0u8; self.block_size()];
        self.read_block(id, &mut buf)?;
        Ok(buf)
    }

    /// Flushes buffered state to the backing medium (no-op by default).
    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Number of dirty pages buffered in memory awaiting the next flush.
    /// Unbuffered stores (where every write hits the medium) report 0; the
    /// no-steal [`crate::PagedFileStore`] reports its pinned dirty set,
    /// which is what an engine's dirty high-water checkpoint trigger
    /// watches.
    fn dirty_pages(&self) -> usize {
        0
    }

    /// Number of blocks currently on the free list (space reclaimed and
    /// awaiting reuse). Observability for compaction: `num_blocks() -
    /// free_blocks()` is the live footprint of the device.
    fn free_blocks(&self) -> u32 {
        0
    }

    /// The ids currently on the free list (unspecified order). Free-list
    /// membership is not a secret — the file backend's intrusive chain is
    /// plainly visible on the stolen medium — so exposing it costs
    /// nothing and lets tests compare the *live* images across backends.
    fn free_block_ids(&self) -> Vec<u32> {
        Vec::new()
    }

    /// The opponent's view of the medium: every block's raw bytes in block
    /// order, freed blocks included. For buffered stores this is what is
    /// physically *on the device*, not what the cache holds. The default
    /// reads through the legal path and renders freed blocks as zeros;
    /// concrete devices override with the true stolen-disk image.
    fn raw_image(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        (0..self.num_blocks())
            .map(|i| match self.read_block_vec(BlockId(i)) {
                Ok(b) => Ok(b),
                Err(StorageError::FreedBlock { .. }) => Ok(vec![0u8; self.block_size()]),
                Err(e) => Err(e),
            })
            .collect()
    }
}

/// A boxed store is a store — this is what lets the enciphered tree hold a
/// `Box<dyn BlockStore + Send + Sync>` and stay backend-agnostic.
impl<S: BlockStore + ?Sized> BlockStore for Box<S> {
    fn block_size(&self) -> usize {
        (**self).block_size()
    }

    fn num_blocks(&self) -> u32 {
        (**self).num_blocks()
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        (**self).allocate()
    }

    fn allocate_min(&mut self) -> Result<BlockId, StorageError> {
        (**self).allocate_min()
    }

    fn free(&mut self, id: BlockId) -> Result<(), StorageError> {
        (**self).free(id)
    }

    fn claim_free(&mut self, id: BlockId) -> Result<(), StorageError> {
        (**self).claim_free(id)
    }

    fn truncate_free_tail(&mut self) -> Result<u32, StorageError> {
        (**self).truncate_free_tail()
    }

    fn read_block(&self, id: BlockId, buf: &mut [u8]) -> Result<(), StorageError> {
        (**self).read_block(id, buf)
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        (**self).write_block(id, data)
    }

    fn counters(&self) -> &crate::OpCounters {
        (**self).counters()
    }

    fn read_block_vec(&self, id: BlockId) -> Result<Vec<u8>, StorageError> {
        (**self).read_block_vec(id)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        (**self).flush()
    }

    fn dirty_pages(&self) -> usize {
        (**self).dirty_pages()
    }

    fn free_blocks(&self) -> u32 {
        (**self).free_blocks()
    }

    fn free_block_ids(&self) -> Vec<u32> {
        (**self).free_block_ids()
    }

    fn raw_image(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        (**self).raw_image()
    }
}

/// The boxed-store type the backend-agnostic layers above hold.
pub type DynBlockStore = Box<dyn BlockStore + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_display_and_conversions() {
        let id = BlockId(42);
        assert_eq!(id.to_string(), "b42");
        assert_eq!(id.as_u32(), 42);
        assert_eq!(id.as_u64(), 42);
    }

    #[test]
    fn error_display() {
        let e = StorageError::OutOfRange { id: 9, len: 4 };
        assert!(e.to_string().contains("block 9"));
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
