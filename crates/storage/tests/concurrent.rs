//! Multi-thread (barrier-based, loom-free) tests of the storage layer
//! under the kind of access the engine generates: a shared buffer pool
//! absorbing write-back traffic from many threads, and a `FileDisk`
//! free list being hammered by concurrent allocate/free cycles.
//!
//! `BufferPool` and `FileDisk` are `&mut self` APIs — the engine shares
//! them behind locks, never lock-free — so these tests drive them through
//! a `Mutex` exactly as a caller would, and assert the *data* invariants
//! that matter across threads: no lost writes on eviction, no
//! double-handed-out blocks, free-list reuse instead of file growth.

use std::collections::HashSet;
use std::sync::{Arc, Barrier, Mutex};

use sks_storage::{BlockId, BlockStore, BufferPool, FileDisk, MemDisk, OpCounters};

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sks_storage_ct_{}_{}", std::process::id(), name));
    p
}

/// Every thread owns a disjoint set of blocks and rewrites them through a
/// pool far smaller than the working set, forcing continual write-back
/// eviction while other threads interleave. After the storm, every
/// block's final content must be the last value its owner wrote — nothing
/// lost in eviction, nothing cross-written.
#[test]
fn bufferpool_write_back_eviction_under_contention() {
    const THREADS: usize = 8;
    const BLOCKS_PER_THREAD: u32 = 16;
    const ROUNDS: u8 = 25;
    const BLOCK_SIZE: usize = 64;
    let total_blocks = THREADS as u32 * BLOCKS_PER_THREAD;

    let mut disk = MemDisk::new(BLOCK_SIZE);
    for _ in 0..total_blocks {
        disk.allocate().unwrap();
    }
    // Capacity 7: far below 128 live blocks, and coprime to the stride so
    // eviction picks victims from every thread's range.
    let pool = Arc::new(Mutex::new(BufferPool::new(disk, 7)));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let my_first = t as u32 * BLOCKS_PER_THREAD;
                barrier.wait();
                for round in 0..ROUNDS {
                    for b in my_first..my_first + BLOCKS_PER_THREAD {
                        let fill = fill_byte(t, b, round);
                        let mut pool = pool.lock().unwrap();
                        pool.write(BlockId(b), &[fill; BLOCK_SIZE]).unwrap();
                        // Read-your-writes through the cache, interleaved
                        // with everyone else's evictions.
                        let got = pool.read(BlockId(b)).unwrap();
                        assert_eq!(got, &[fill; BLOCK_SIZE][..], "thread {t} block {b}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panics");
    }

    let mut pool = Arc::try_unwrap(pool)
        .expect("all threads joined")
        .into_inner()
        .unwrap();
    // Eviction must have actually happened for this test to mean anything.
    let evictions = {
        let s = pool.store().counters().snapshot();
        assert!(
            s.block_writes > 0,
            "a 7-frame pool over 128 hot blocks must write back"
        );
        s.block_writes
    };
    pool.flush().unwrap();
    let disk = pool.into_store().unwrap();
    for t in 0..THREADS {
        let my_first = t as u32 * BLOCKS_PER_THREAD;
        for b in my_first..my_first + BLOCKS_PER_THREAD {
            let want = vec![fill_byte(t, b, ROUNDS - 1); BLOCK_SIZE];
            assert_eq!(
                disk.read_block_vec(BlockId(b)).unwrap(),
                want,
                "final content of block {b} (owner {t}) survived {evictions} write-backs"
            );
        }
    }
}

fn fill_byte(thread: usize, block: u32, round: u8) -> u8 {
    (thread as u8)
        .wrapping_mul(31)
        .wrapping_add(block as u8)
        .wrapping_add(round.wrapping_mul(97))
}

/// Threads allocate a block, stamp it, verify their stamp, free it, in a
/// tight loop. Invariants: the free list never hands the same block to
/// two holders at once, stamps never tear, and the file stays near the
/// high-water mark of concurrent holders (reuse, not growth).
#[test]
fn filedisk_free_list_reuse_under_contention() {
    const THREADS: usize = 8;
    const ITERS: usize = 60;
    const BLOCK_SIZE: usize = 64;

    let path = tmpfile("freelist_reuse");
    let disk = FileDisk::create_with_counters(&path, BLOCK_SIZE, OpCounters::new()).unwrap();
    let disk = Arc::new(Mutex::new(disk));
    let held: Arc<Mutex<HashSet<u32>>> = Arc::new(Mutex::new(HashSet::new()));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let disk = Arc::clone(&disk);
            let held = Arc::clone(&held);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ITERS {
                    let id = {
                        let mut disk = disk.lock().unwrap();
                        let id = disk.allocate().unwrap();
                        let stamp = [(t as u8) ^ (i as u8); BLOCK_SIZE];
                        disk.write_block(id, &stamp).unwrap();
                        id
                    };
                    {
                        let mut held = held.lock().unwrap();
                        assert!(
                            held.insert(id.0),
                            "block {} handed to two holders at once",
                            id.0
                        );
                    }
                    // Hold briefly while others churn, then verify + free.
                    std::thread::yield_now();
                    {
                        let mut disk = disk.lock().unwrap();
                        let back = disk.read_block_vec(id).unwrap();
                        assert_eq!(
                            back,
                            vec![(t as u8) ^ (i as u8); BLOCK_SIZE],
                            "stamp torn on block {}",
                            id.0
                        );
                        disk.free(id).unwrap();
                    }
                    held.lock().unwrap().remove(&id.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panics");
    }

    let disk = Arc::try_unwrap(disk).expect("joined").into_inner().unwrap();
    // 480 allocate/free cycles with at most 8 concurrent holders: the
    // free list must have kept the file small instead of growing per
    // allocation.
    assert!(
        disk.num_blocks() <= THREADS as u32 * 2,
        "free list not reused: file grew to {} blocks for {} holders",
        disk.num_blocks(),
        THREADS
    );
    let s = disk.counters().snapshot();
    assert_eq!(s.allocs, (THREADS * ITERS) as u64);
    assert_eq!(s.frees, (THREADS * ITERS) as u64);

    // The reuse survives reopen: allocations keep coming off the list.
    drop(disk);
    let mut disk = FileDisk::open(&path).unwrap();
    let before = disk.num_blocks();
    let a = disk.allocate().unwrap();
    assert!(a.0 < before, "reopened free list still feeds allocations");
    std::fs::remove_file(&path).ok();
}

/// Concurrent readers over a shared `FileDisk` (positioned reads take
/// `&self`): all threads see consistent block content while a writer
/// rewrites other blocks.
#[test]
fn filedisk_concurrent_readers_with_writer() {
    const READERS: usize = 6;
    const BLOCKS: u32 = 32;
    const BLOCK_SIZE: usize = 64;

    let path = tmpfile("concurrent_readers");
    let mut disk = FileDisk::create(&path, BLOCK_SIZE).unwrap();
    for i in 0..BLOCKS {
        let id = disk.allocate().unwrap();
        disk.write_block(id, &[i as u8; BLOCK_SIZE]).unwrap();
    }
    let disk = Arc::new(std::sync::RwLock::new(disk));
    let barrier = Arc::new(Barrier::new(READERS + 1));

    let mut handles = Vec::new();
    for r in 0..READERS {
        let disk = Arc::clone(&disk);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for pass in 0..50u32 {
                // Even blocks are immutable in this test; readers pin them.
                let b = ((r as u32 + pass) * 2) % BLOCKS;
                let disk = disk.read().unwrap();
                let got = disk.read_block_vec(BlockId(b)).unwrap();
                assert_eq!(got, vec![b as u8; BLOCK_SIZE], "reader {r} block {b}");
            }
        }));
    }
    {
        let disk_w = Arc::clone(&disk);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for pass in 0..50u32 {
                let b = (pass * 2 + 1) % BLOCKS; // odd blocks only
                let mut disk = disk_w.write().unwrap();
                disk.write_block(BlockId(b), &[0xF0 ^ pass as u8; BLOCK_SIZE])
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panics");
    }
    std::fs::remove_file(&path).ok();
}
