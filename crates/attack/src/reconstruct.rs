//! Shape reconstruction: the opponent's attempt to recreate parent→child
//! edges of the B-tree from visible key material alone.
//!
//! Tree pointers are encrypted, so the only available signal is the key
//! values stored in node blocks. The attack assumes (optimistically, from
//! the attacker's perspective) that on-disk key order reflects logical
//! order — true for plaintext trees and for the order-preserving §4.3
//! substitution, false for the §4.1 oval substitution. Each candidate child
//! is assigned to the parent slot whose separator interval most tightly
//! contains the child's key span.

use std::collections::HashMap;

use crate::image::VisibleBlock;

/// An inferred parent→child edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub parent: u32,
    pub child: u32,
}

/// The attacker's reconstruction output.
#[derive(Debug, Clone, Default)]
pub struct Reconstruction {
    pub edges: Vec<Edge>,
    /// Blocks that exposed key material.
    pub readable_nodes: usize,
    /// Blocks that exposed only metadata (sealed nodes).
    pub metadata_only_nodes: usize,
    /// Fully opaque blocks.
    pub opaque_blocks: usize,
}

/// Runs the interval-fitting attack over parsed blocks.
pub fn reconstruct_shape(blocks: &[VisibleBlock]) -> Reconstruction {
    let mut readable: Vec<(u32, bool, Vec<u64>)> = Vec::new();
    let mut metadata_only = 0usize;
    let mut opaque = 0usize;
    for b in blocks {
        match b {
            VisibleBlock::SubstitutionNode {
                block,
                is_leaf,
                raw_keys,
            } => {
                if !raw_keys.is_empty() {
                    readable.push((*block, *is_leaf, raw_keys.clone()));
                }
            }
            VisibleBlock::SealedNode { .. } => metadata_only += 1,
            VisibleBlock::Opaque => opaque += 1,
        }
    }

    // Candidate parents: internal nodes with visible keys.
    let parents: Vec<&(u32, bool, Vec<u64>)> =
        readable.iter().filter(|(_, leaf, _)| !leaf).collect();
    // Each node's key span.
    let spans: HashMap<u32, (u64, u64)> = readable
        .iter()
        .map(|(block, _, keys)| {
            let lo = *keys.iter().min().expect("nonempty");
            let hi = *keys.iter().max().expect("nonempty");
            (*block, (lo, hi))
        })
        .collect();

    // Penalty for each unbounded interval side: tight bounded separators
    // always beat half-open ones.
    const OPEN_SIDE_PENALTY: u128 = 1 << 80;

    let mut edges = Vec::new();
    for (child, &(lo, hi)) in &spans {
        let mut best: Option<(u128, Edge)> = None; // (slack, edge)
        for (pblock, _, pkeys) in &parents {
            if pblock == child {
                continue;
            }
            // Separator intervals of the parent: (-inf, k1), (k1, k2), …,
            // (kn, +inf). The attacker assumes pkeys are sorted; sort
            // defensively (scrambled disguises produce unsorted fields).
            let mut ks = pkeys.clone();
            ks.sort_unstable();
            for i in 0..=ks.len() {
                let left = if i == 0 { None } else { Some(ks[i - 1]) };
                let right = if i == ks.len() { None } else { Some(ks[i]) };
                let fits_left = left.is_none_or(|l| lo > l);
                let fits_right = right.is_none_or(|r| hi < r);
                if fits_left && fits_right {
                    // Slack: how loosely the child's span sits in the
                    // separator interval — the tightest fit is the most
                    // plausible parent slot.
                    let left_slack = match left {
                        Some(l) => (lo - l - 1) as u128,
                        None => OPEN_SIDE_PENALTY,
                    };
                    let right_slack = match right {
                        Some(r) => (r - hi - 1) as u128,
                        None => OPEN_SIDE_PENALTY,
                    };
                    let slack = left_slack + right_slack;
                    let edge = Edge {
                        parent: *pblock,
                        child: *child,
                    };
                    if best.is_none_or(|(s, _)| slack < s) {
                        best = Some((slack, edge));
                    }
                }
            }
        }
        if let Some((_, e)) = best {
            edges.push(e);
        }
    }
    edges.sort_by_key(|e| (e.parent, e.child));
    Reconstruction {
        edges,
        readable_nodes: readable.len(),
        metadata_only_nodes: metadata_only,
        opaque_blocks: opaque,
    }
}

/// Scores a reconstruction against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeScore {
    pub inferred: usize,
    pub correct: usize,
    pub true_edges: usize,
    pub precision: f64,
    pub recall: f64,
}

pub fn score(reconstruction: &Reconstruction, truth: &[Edge]) -> ShapeScore {
    let truth_set: std::collections::HashSet<Edge> = truth.iter().copied().collect();
    let correct = reconstruction
        .edges
        .iter()
        .filter(|e| truth_set.contains(e))
        .count();
    let inferred = reconstruction.edges.len();
    ShapeScore {
        inferred,
        correct,
        true_edges: truth.len(),
        precision: if inferred == 0 {
            0.0
        } else {
            correct as f64 / inferred as f64
        },
        recall: if truth.is_empty() {
            0.0
        } else {
            correct as f64 / truth.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::VisibleBlock;

    fn node(block: u32, is_leaf: bool, keys: &[u64]) -> VisibleBlock {
        VisibleBlock::SubstitutionNode {
            block,
            is_leaf,
            raw_keys: keys.to_vec(),
        }
    }

    #[test]
    fn recovers_simple_two_level_tree_with_plaintext_order() {
        // Root b1 [50], children b2 [10 20 30], b3 [70 80 90].
        let blocks = vec![
            node(1, false, &[50]),
            node(2, true, &[10, 20, 30]),
            node(3, true, &[70, 80, 90]),
        ];
        let rec = reconstruct_shape(&blocks);
        assert_eq!(
            rec.edges,
            vec![
                Edge {
                    parent: 1,
                    child: 2
                },
                Edge {
                    parent: 1,
                    child: 3
                }
            ]
        );
        let truth = vec![
            Edge {
                parent: 1,
                child: 2,
            },
            Edge {
                parent: 1,
                child: 3,
            },
        ];
        let s = score(&rec, &truth);
        assert_eq!((s.correct, s.true_edges), (2, 2));
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 1.0);
    }

    #[test]
    fn three_levels_prefers_tight_intervals() {
        // b1 [100] -> b2 [40 60] -> leaves b4 [10 20], b5 [45 55], b6 [70 90]
        //          -> b3 [150]   -> leaves b7 [120], b8 [180]
        let blocks = vec![
            node(1, false, &[100]),
            node(2, false, &[40, 60]),
            node(3, false, &[150]),
            node(4, true, &[10, 20]),
            node(5, true, &[45, 55]),
            node(6, true, &[70, 90]),
            node(7, true, &[120]),
            node(8, true, &[180]),
        ];
        let rec = reconstruct_shape(&blocks);
        let truth = vec![
            Edge {
                parent: 1,
                child: 2,
            },
            Edge {
                parent: 1,
                child: 3,
            },
            Edge {
                parent: 2,
                child: 4,
            },
            Edge {
                parent: 2,
                child: 5,
            },
            Edge {
                parent: 2,
                child: 6,
            },
            Edge {
                parent: 3,
                child: 7,
            },
            Edge {
                parent: 3,
                child: 8,
            },
        ];
        let s = score(&rec, &truth);
        // The tight-interval heuristic nails interior children; a boundary
        // child can still be claimed by an ancestor whose half-open
        // interval happens to hug it tighter. Expect strong recall.
        assert!(
            s.recall >= 0.7,
            "recall {} (edges: {:?})",
            s.recall,
            rec.edges
        );
        assert!(s.correct >= 5);
    }

    #[test]
    fn sealed_nodes_yield_no_edges() {
        let blocks = vec![
            VisibleBlock::SealedNode {
                block: 1,
                is_leaf: false,
                n: 3,
            },
            VisibleBlock::SealedNode {
                block: 2,
                is_leaf: true,
                n: 5,
            },
            VisibleBlock::Opaque,
        ];
        let rec = reconstruct_shape(&blocks);
        assert!(rec.edges.is_empty());
        assert_eq!(rec.metadata_only_nodes, 2);
        assert_eq!(rec.opaque_blocks, 1);
    }

    #[test]
    fn scrambled_keys_break_the_attack() {
        // Same structure as the two-level test, but keys multiplied by
        // t = 7 mod 13 (the paper's oval disguise): root separator and leaf
        // spans no longer nest.
        let f = |k: u64| k * 7 % 13;
        let blocks = vec![
            node(1, false, &[f(6)]),             // 42 mod 13 = 3
            node(2, true, &[f(1), f(2), f(3)]),  // 7 1 8
            node(3, true, &[f(8), f(9), f(10)]), // 4 11 5
        ];
        let rec = reconstruct_shape(&blocks);
        let truth = vec![
            Edge {
                parent: 1,
                child: 2,
            },
            Edge {
                parent: 1,
                child: 3,
            },
        ];
        let s = score(&rec, &truth);
        assert!(
            s.recall < 1.0,
            "scrambling must prevent full recovery; got {:?}",
            rec.edges
        );
    }

    #[test]
    fn empty_input() {
        let rec = reconstruct_shape(&[]);
        assert!(rec.edges.is_empty());
        let s = score(&rec, &[]);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.precision, 0.0);
    }
}
