//! # sks-attack — the opponent of §4.1/§6
//!
//! The paper's security argument is that an opponent holding the raw disk
//! image "cannot recreate the correct shape of the B-Tree": tree and data
//! pointers are encrypted, and disguised search keys do not reflect the true
//! key order (except for the deliberately order-preserving §4.3 scheme).
//! This crate implements that opponent and measures how far they get:
//!
//! * [`image`] — parse what is visible in each raw block (Kerckhoffs:
//!   format known, secrets unknown).
//! * [`reconstruct`] — the interval-fitting shape-reconstruction attack,
//!   scored as precision/recall of parent→child edges.
//! * [`correlation`] — Kendall τ / Spearman ρ order-leakage metrics.
//! * [`frequency`] — repeated-cryptogram counting and block entropy.
//! * [`report`] — the assembled E5 report, one row per scheme.

pub mod correlation;
pub mod frequency;
pub mod image;
pub mod reconstruct;
pub mod report;

pub use correlation::{kendall_tau, shannon_entropy, spearman_rho};
pub use frequency::{mean_block_entropy, repeated_chunks};
pub use image::{parse_block, parse_image, DiskImage, FormatKnowledge, VisibleBlock};
pub use reconstruct::{reconstruct_shape, score, Edge, Reconstruction, ShapeScore};
pub use report::{AttackReport, GroundTruth};
