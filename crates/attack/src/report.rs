//! Aggregated attack reports for experiment E5.

use crate::correlation::kendall_tau;
use crate::frequency::{mean_block_entropy, repeated_chunks};
use crate::image::{parse_image, DiskImage, FormatKnowledge};
use crate::reconstruct::{reconstruct_shape, score, Edge, ShapeScore};

/// Everything the experimenter knows that the attacker does not: the true
/// tree edges and the (original, disguised) key pairs.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    pub edges: Vec<Edge>,
    /// `(original key, on-disk key-field value)` pairs, when the scheme
    /// exposes a key field at all.
    pub key_pairs: Vec<(u64, u64)>,
}

/// One scheme's full attack evaluation.
#[derive(Debug, Clone)]
pub struct AttackReport {
    pub scheme: String,
    pub shape: ShapeScore,
    /// Kendall τ between original and visible keys (None when no key
    /// material is visible).
    pub order_leakage: Option<f64>,
    /// Repeated 16-byte cryptogram chunks across the image.
    pub repeated_chunks: usize,
    /// Mean Shannon entropy of non-empty blocks (bits/byte).
    pub mean_entropy: f64,
    /// Blocks exposing key material / only metadata / nothing.
    pub readable_nodes: usize,
    pub metadata_only_nodes: usize,
    pub opaque_blocks: usize,
}

impl AttackReport {
    /// Runs the complete attack battery against one image.
    pub fn run(
        scheme: impl Into<String>,
        image: &DiskImage,
        knowledge: &FormatKnowledge,
        truth: &GroundTruth,
    ) -> Self {
        let parsed = parse_image(image, knowledge);
        let reconstruction = reconstruct_shape(&parsed);
        let shape = score(&reconstruction, &truth.edges);
        let order_leakage = if truth.key_pairs.len() >= 2 {
            kendall_tau(&truth.key_pairs)
        } else {
            None
        };
        let (repeats, _) = repeated_chunks(image, 16);
        AttackReport {
            scheme: scheme.into(),
            shape,
            order_leakage,
            repeated_chunks: repeats,
            mean_entropy: mean_block_entropy(image),
            readable_nodes: reconstruction.readable_nodes,
            metadata_only_nodes: reconstruction.metadata_only_nodes,
            opaque_blocks: reconstruction.opaque_blocks,
        }
    }

    /// One row of the E5 table.
    pub fn row(&self) -> String {
        format!(
            "{:<22} {:>7} {:>7} {:>9.2} {:>8.2} {:>8} {:>8} {:>9.2}",
            self.scheme,
            self.shape.true_edges,
            self.shape.correct,
            self.shape.recall,
            self.order_leakage.map(|t| t.abs()).unwrap_or(0.0),
            self.readable_nodes,
            self.repeated_chunks,
            self.mean_entropy,
        )
    }

    pub fn header() -> String {
        format!(
            "{:<22} {:>7} {:>7} {:>9} {:>8} {:>8} {:>8} {:>9}",
            "scheme", "edges", "found", "recall", "|tau|", "readable", "repeats", "entropy"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_runs_on_synthetic_image() {
        let image = DiskImage::new(64, vec![vec![0u8; 64]; 3]);
        let truth = GroundTruth::default();
        let r = AttackReport::run("test", &image, &FormatKnowledge::default(), &truth);
        assert_eq!(r.shape.inferred, 0);
        assert_eq!(r.order_leakage, None);
        assert!(!AttackReport::header().is_empty());
        assert!(r.row().contains("test"));
    }

    #[test]
    fn order_leakage_reflects_pairs() {
        let image = DiskImage::new(64, vec![]);
        let truth = GroundTruth {
            edges: vec![],
            key_pairs: (0..20).map(|i| (i, i + 100)).collect(),
        };
        let r = AttackReport::run("op", &image, &FormatKnowledge::default(), &truth);
        assert!((r.order_leakage.unwrap() - 1.0).abs() < 1e-9);
    }
}
