//! The opponent's input: a raw disk image.
//!
//! §4.1: "Having access only to the B-Tree representation on a sequential
//! set of disk blocks, the opponent will face difficulty in determining the
//! most likely children node blocks of a given parent block." This module
//! parses whatever is *visible* in each block under Kerckhoffs' assumption —
//! the opponent knows the node formats (tags, header layout, seal widths)
//! but none of the keys or design parameters.

/// A raw disk image: every block of the stolen medium.
#[derive(Debug, Clone)]
pub struct DiskImage {
    pub block_size: usize,
    pub blocks: Vec<Vec<u8>>,
}

impl DiskImage {
    pub fn new(block_size: usize, blocks: Vec<Vec<u8>>) -> Self {
        DiskImage { block_size, blocks }
    }
}

/// What a block reveals without any secret material.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VisibleBlock {
    /// Substitution-codec node: plaintext header + disguised key fields.
    SubstitutionNode {
        block: u32,
        is_leaf: bool,
        /// The raw (disguised) key-field values, in on-disk order.
        raw_keys: Vec<u64>,
    },
    /// Bayer–Metzger node: header metadata visible, all triplets sealed.
    SealedNode { block: u32, is_leaf: bool, n: usize },
    /// No recognisable structure (whole-page encipherment, data blocks,
    /// free blocks, superblocks).
    Opaque,
}

/// Format knowledge the opponent is assumed to have (Kerckhoffs): the codec
/// tag values and the pointer-seal width used by the installation.
#[derive(Debug, Clone, Copy)]
pub struct FormatKnowledge {
    /// Seal width in bytes for the substitution codec (16 for DES/Speck,
    /// modulus width for RSA).
    pub seal_len: usize,
}

impl Default for FormatKnowledge {
    fn default() -> Self {
        FormatKnowledge { seal_len: 16 }
    }
}

const TAG_SUBSTITUTION: u8 = 0x53;
const TAG_BAYER_METZGER: u8 = 0x42;
const TAG_PLAIN: u8 = 0x00;
const HEADER_LEN: usize = 8;
const BM_SEALED_TRIPLET: usize = 24;

/// Parses one block into its visible content.
pub fn parse_block(data: &[u8], knowledge: &FormatKnowledge) -> VisibleBlock {
    if data.len() < HEADER_LEN {
        return VisibleBlock::Opaque;
    }
    let tag = data[0];
    let is_leaf = match data[1] {
        0 => false,
        1 => true,
        _ => return VisibleBlock::Opaque,
    };
    let n = u16::from_be_bytes([data[2], data[3]]) as usize;
    let block = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
    match tag {
        TAG_SUBSTITUTION | TAG_PLAIN => {
            let seal_len = if tag == TAG_PLAIN {
                0
            } else {
                knowledge.seal_len
            };
            let entry_len = 8 + if tag == TAG_PLAIN { 8 } else { seal_len };
            let base = HEADER_LEN
                + if is_leaf || tag == TAG_PLAIN {
                    0
                } else {
                    seal_len
                };
            let mut raw_keys = Vec::with_capacity(n);
            for i in 0..n {
                let off = base + i * entry_len;
                if off + 8 > data.len() {
                    return VisibleBlock::Opaque;
                }
                raw_keys.push(u64::from_be_bytes(
                    data[off..off + 8].try_into().expect("fixed width"),
                ));
            }
            VisibleBlock::SubstitutionNode {
                block,
                is_leaf,
                raw_keys,
            }
        }
        TAG_BAYER_METZGER => {
            // Sanity: the sealed payload must fit.
            let body =
                HEADER_LEN + if is_leaf { 0 } else { BM_SEALED_TRIPLET } + n * BM_SEALED_TRIPLET;
            if body > data.len() {
                return VisibleBlock::Opaque;
            }
            VisibleBlock::SealedNode { block, is_leaf, n }
        }
        _ => VisibleBlock::Opaque,
    }
}

/// Parses the whole image.
pub fn parse_image(image: &DiskImage, knowledge: &FormatKnowledge) -> Vec<VisibleBlock> {
    image
        .blocks
        .iter()
        .map(|b| parse_block(b, knowledge))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_substitution_block(block: u32, is_leaf: bool, keys: &[u64]) -> Vec<u8> {
        let seal = 16usize;
        let mut page = vec![0u8; 256];
        page[0] = TAG_SUBSTITUTION;
        page[1] = is_leaf as u8;
        page[2..4].copy_from_slice(&(keys.len() as u16).to_be_bytes());
        page[4..8].copy_from_slice(&block.to_be_bytes());
        let base = HEADER_LEN + if is_leaf { 0 } else { seal };
        for (i, &k) in keys.iter().enumerate() {
            let off = base + i * (8 + seal);
            page[off..off + 8].copy_from_slice(&k.to_be_bytes());
        }
        page
    }

    #[test]
    fn parses_substitution_node() {
        let page = fake_substitution_block(5, false, &[10, 20, 30]);
        let parsed = parse_block(&page, &FormatKnowledge::default());
        assert_eq!(
            parsed,
            VisibleBlock::SubstitutionNode {
                block: 5,
                is_leaf: false,
                raw_keys: vec![10, 20, 30],
            }
        );
    }

    #[test]
    fn parses_bm_header_only() {
        let mut page = vec![0u8; 256];
        page[0] = TAG_BAYER_METZGER;
        page[1] = 1;
        page[2..4].copy_from_slice(&4u16.to_be_bytes());
        page[4..8].copy_from_slice(&9u32.to_be_bytes());
        let parsed = parse_block(&page, &FormatKnowledge::default());
        assert_eq!(
            parsed,
            VisibleBlock::SealedNode {
                block: 9,
                is_leaf: true,
                n: 4
            }
        );
    }

    #[test]
    fn garbage_is_opaque() {
        let page = vec![0xABu8; 256];
        assert_eq!(
            parse_block(&page, &FormatKnowledge::default()),
            VisibleBlock::Opaque
        );
        assert_eq!(
            parse_block(&[1, 2, 3], &FormatKnowledge::default()),
            VisibleBlock::Opaque
        );
    }

    #[test]
    fn overclaimed_n_is_opaque() {
        let mut page = vec![0u8; 64];
        page[0] = TAG_SUBSTITUTION;
        page[1] = 1;
        page[2..4].copy_from_slice(&1000u16.to_be_bytes());
        assert_eq!(
            parse_block(&page, &FormatKnowledge::default()),
            VisibleBlock::Opaque
        );
    }
}
