//! Rank statistics quantifying how much key *order* a disguise leaks.
//!
//! Kendall's τ over (original key, disguised key) pairs is the cleanest
//! measure of the §4.1/§4.3 trade-off: the sum-of-treatments substitution is
//! order-preserving (τ = 1, shape reconstructible), the oval substitution
//! scrambles order (τ ≈ 0, shape hidden).

/// Kendall's τ-a between paired sequences. Returns a value in `[-1, 1]`;
/// `None` when fewer than two pairs are supplied.
pub fn kendall_tau(pairs: &[(u64, u64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let (a1, b1) = pairs[i];
            let (a2, b2) = pairs[j];
            let x = (a1.cmp(&a2)) as i64;
            let y = (b1.cmp(&b2)) as i64;
            match x * y {
                v if v > 0 => concordant += 1,
                v if v < 0 => discordant += 1,
                _ => {} // tie in either coordinate contributes nothing (τ-a)
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / total)
}

/// Spearman's ρ (rank correlation) between paired sequences.
pub fn spearman_rho(pairs: &[(u64, u64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let rank = |vals: Vec<u64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by_key(|&i| vals[i]);
        let mut ranks = vec![0f64; vals.len()];
        let mut i = 0;
        while i < idx.len() {
            // Average ranks over ties.
            let mut j = i;
            while j + 1 < idx.len() && vals[idx[j + 1]] == vals[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let ra = rank(pairs.iter().map(|&(a, _)| a).collect());
    let rb = rank(pairs.iter().map(|&(_, b)| b).collect());
    let mean = (n as f64 + 1.0) / 2.0;
    let mut num = 0f64;
    let mut da = 0f64;
    let mut db = 0f64;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da == 0.0 || db == 0.0 {
        return None;
    }
    Some(num / (da * db).sqrt())
}

/// Shannon entropy of a byte string, in bits per byte (0..=8).
pub fn shannon_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_of_identity_is_one() {
        let pairs: Vec<(u64, u64)> = (0..50).map(|i| (i, i * 13 + 7)).collect();
        assert!((kendall_tau(&pairs).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&pairs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_of_reversal_is_minus_one() {
        let pairs: Vec<(u64, u64)> = (0..50).map(|i| (i, 1000 - i)).collect();
        assert!((kendall_tau(&pairs).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman_rho(&pairs).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_of_multiplicative_scramble_is_small() {
        // k -> k*t mod v (the oval substitution) destroys most order.
        let v = 10303u64;
        let t = 4999u64;
        let pairs: Vec<(u64, u64)> = (0..500).map(|k| (k, k * t % v)).collect();
        let tau = kendall_tau(&pairs).unwrap();
        assert!(tau.abs() < 0.15, "expected near-zero, got {tau}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(kendall_tau(&[]), None);
        assert_eq!(kendall_tau(&[(1, 2)]), None);
        assert_eq!(spearman_rho(&[(1, 2)]), None);
        // Constant second coordinate: rho undefined.
        let pairs: Vec<(u64, u64)> = (0..10).map(|i| (i, 5)).collect();
        assert_eq!(spearman_rho(&pairs), None);
        // Kendall with all ties on one side -> 0.
        assert_eq!(kendall_tau(&pairs), Some(0.0));
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[7u8; 1024]), 0.0);
        let all: Vec<u8> = (0..=255u8).collect();
        assert!((shannon_entropy(&all) - 8.0).abs() < 1e-12);
        // Ciphertext should be close to 8 bits/byte.
        let pseudo: Vec<u8> = (0..4096u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9e3779b97f4a7c15);
                x ^= x >> 29;
                x as u8
            })
            .collect();
        assert!(shannon_entropy(&pseudo) > 7.5);
    }
}
