//! Cryptogram frequency analysis.
//!
//! §2/§3: deriving each page's key from its page id ensures "the encryption
//! of two identical data items within two different nodes will result in two
//! different cryptograms, making the attacks by an opponent harder"; the
//! paper's own scheme achieves the same by binding the block number `b`
//! inside `E(b ‖ a ‖ p)`. This module counts repeated ciphertext chunks
//! across a disk image — a positive count is exactly the repetition signal a
//! classical frequency attack feeds on.

use std::collections::HashMap;

use crate::image::DiskImage;

/// Counts chunks (aligned, `chunk_len` bytes) that occur more than once
/// across the whole image. Returns (distinct repeated chunks, total extra
/// occurrences).
pub fn repeated_chunks(image: &DiskImage, chunk_len: usize) -> (usize, usize) {
    assert!(chunk_len > 0);
    let mut counts: HashMap<&[u8], usize> = HashMap::new();
    for block in &image.blocks {
        for chunk in block.chunks_exact(chunk_len) {
            // Skip all-zero padding chunks — trivially repeated and carry
            // no plaintext information.
            if chunk.iter().all(|&b| b == 0) {
                continue;
            }
            *counts.entry(chunk).or_insert(0) += 1;
        }
    }
    let mut distinct = 0usize;
    let mut extra = 0usize;
    for (_, c) in counts {
        if c > 1 {
            distinct += 1;
            extra += c - 1;
        }
    }
    (distinct, extra)
}

/// Mean Shannon entropy (bits/byte) over the non-empty blocks of the image.
pub fn mean_block_entropy(image: &DiskImage) -> f64 {
    let mut total = 0f64;
    let mut n = 0usize;
    for block in &image.blocks {
        if block.iter().any(|&b| b != 0) {
            total += crate::correlation::shannon_entropy(block);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_plaintext_is_detected() {
        // Two blocks containing the same 16-byte run.
        let run: Vec<u8> = (1..=16).collect();
        let mut b1 = vec![0u8; 64];
        b1[0..16].copy_from_slice(&run);
        let mut b2 = vec![0u8; 64];
        b2[16..32].copy_from_slice(&run); // aligned at chunk 1
        let image = DiskImage::new(64, vec![b1, b2]);
        let (distinct, extra) = repeated_chunks(&image, 16);
        assert_eq!((distinct, extra), (1, 1));
    }

    #[test]
    fn zero_padding_is_ignored() {
        let image = DiskImage::new(64, vec![vec![0u8; 64]; 10]);
        assert_eq!(repeated_chunks(&image, 16), (0, 0));
    }

    #[test]
    fn unique_ciphertext_has_no_repeats() {
        // SplitMix64 stream: 8 fresh bytes per step, no chunk repetition.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let blocks: Vec<Vec<u8>> = (0..8)
            .map(|_| (0..8).flat_map(|_| next().to_be_bytes()).collect())
            .collect();
        let image = DiskImage::new(64, blocks);
        let (distinct, _) = repeated_chunks(&image, 16);
        assert_eq!(distinct, 0);
    }

    #[test]
    fn entropy_of_structured_vs_random() {
        let structured = DiskImage::new(64, vec![vec![0x41u8; 64]; 4]);
        assert!(mean_block_entropy(&structured) < 1.0);
        let random: Vec<Vec<u8>> = (0..4u64)
            .map(|i| {
                (0..64u64)
                    .map(|j| ((i * 131 + j * 2654435761) % 251) as u8)
                    .collect()
            })
            .collect();
        let image = DiskImage::new(64, random);
        assert!(mean_block_entropy(&image) > 4.0);
        assert_eq!(mean_block_entropy(&DiskImage::new(64, vec![])), 0.0);
    }
}
