//! Process-wide governance at the engine level: one record-cache clock
//! across all partitions, one dirty-page budget for the whole process,
//! and node-device compaction riding every checkpoint.

use sks_core::{Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, SksDb};
use sks_storage::SyncPolicy;

const CAPACITY: u64 = 8_192;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_glob_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn file_config(dir: &std::path::Path, partitions: usize) -> EngineConfig {
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, CAPACITY)
        .partitions(partitions)
        .backend(StorageBackend::File {
            dir: dir.to_path_buf(),
            pool_pages: 256,
        });
    EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32))
}

fn rec(k: u64) -> Vec<u8> {
    format!("global-budget-record-{k:06}").into_bytes()
}

/// One shared clock: the total decoded-record RAM across every partition
/// obeys a single process-wide budget, reads stay correct, and
/// cross-partition traffic cannot leak records between namespaces.
#[test]
fn global_record_cache_bounds_the_whole_process() {
    let dir = tmpdir("shared_cache");
    let cfg = {
        let scheme = SchemeConfig::with_capacity(Scheme::Oval, CAPACITY)
            .partitions(4)
            .global_record_cache(64);
        EngineConfig::new(scheme)
    };
    let db = SksDb::open(&dir, cfg).unwrap();
    let session = db.session();
    for k in 0..500u64 {
        session.insert(k, rec(k)).unwrap();
    }
    for k in 0..500u64 {
        assert_eq!(session.get(k).unwrap().unwrap(), rec(k));
    }
    let held = db.shared_record_cache_len().expect("shared cache is on");
    assert!(held <= 64, "global budget breached: {held}");
    assert!(held > 0, "hot records are cached");
    // Overwrites invalidate exactly the right namespace entry.
    for k in (0..500u64).step_by(7) {
        session.insert(k, b"rewritten".to_vec()).unwrap();
    }
    for k in 0..500u64 {
        let want = if k % 7 == 0 {
            b"rewritten".to_vec()
        } else {
            rec(k)
        };
        assert_eq!(session.get(k).unwrap().unwrap(), want, "key {k}");
    }
    // A hot set smaller than the global budget is served from the shared
    // clock across partitions: round one fills, round two hits.
    let before = db.snapshot();
    for _ in 0..3 {
        for k in 0..20u64 {
            assert!(session.get(k).unwrap().is_some());
        }
    }
    let delta = db.snapshot().delta(&before);
    assert!(
        delta.record_cache_hits >= 20,
        "the shared cache served the hot set: {} hits",
        delta.record_cache_hits
    );
    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// The process-wide dirty budget sheds pinned pages in the background:
/// under the same write load, an engine with a global budget ends up
/// pinning strictly fewer dirty pages (and paying extra physical page
/// writes for the background flushes), while an unbudgeted engine pins
/// everything until checkpoint.
#[test]
fn global_dirty_budget_flushes_the_dirtiest_partition() {
    let run = |budget: usize, name: &str| -> (u64, usize) {
        let dir = tmpdir(name);
        let mut cfg = file_config(&dir, 4);
        cfg.scheme = cfg.scheme.global_dirty_budget(budget);
        let db = SksDb::open(&dir, cfg).unwrap();
        let session = db.session();
        for k in 0..1_500u64 {
            session.insert(k, rec(k)).unwrap();
        }
        db.wait_for_auto_checkpoint();
        assert_eq!(db.take_auto_checkpoint_error(), None);
        let writes = db.snapshot().block_writes;
        let pinned = db.global_dirty_pages();
        // Engine state stays fully correct under background flushing.
        for k in (0..1_500u64).step_by(13) {
            assert_eq!(session.get(k).unwrap().unwrap(), rec(k));
        }
        db.validate().unwrap();
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
        (writes, pinned)
    };
    let (unbudgeted_writes, unbudgeted_pinned) = run(0, "no_budget");
    let (budgeted_writes, budgeted_pinned) = run(16, "with_budget");
    // Identical workloads pay identical WAL writes; only the background
    // page flushes add physical block writes on top.
    assert!(
        budgeted_writes > unbudgeted_writes,
        "the global budget must trigger background page flushes \
         ({budgeted_writes} vs {unbudgeted_writes})"
    );
    assert!(
        budgeted_pinned < unbudgeted_pinned,
        "budgeted engine pins fewer dirty pages ({budgeted_pinned} vs {unbudgeted_pinned})"
    );
}

/// The proportional controller: one governance kick flushes partitions
/// dirtiest-first *until the process is back under budget*, instead of
/// shedding a single partition per breach. With eight partitions all
/// dirty at once, the old one-flush-per-kick controller needed ~one kick
/// per partition; the proportional sweep must converge within a couple
/// of settle rounds.
#[test]
fn global_dirty_budget_converges_proportionally() {
    const BUDGET: usize = 64;
    let dir = tmpdir("converge");
    let mut cfg = file_config(&dir, 8);
    cfg.scheme = cfg.scheme.global_dirty_budget(BUDGET);
    let db = SksDb::open(&dir, cfg).unwrap();
    let session = db.session();
    // Dirty every partition well beyond the budget.
    for k in 0..4_000u64 {
        session.insert(k, rec(k)).unwrap();
    }
    db.wait_for_auto_checkpoint();
    // Settle: each round performs just enough mutations to guarantee the
    // sampled budget probe fires, then joins the background sweep. One
    // sweep flushes dirtiest-first until under budget, so convergence
    // must not take anywhere near one round per dirty partition.
    let mut rounds = 0;
    while db.global_dirty_pages() > BUDGET {
        rounds += 1;
        assert!(
            rounds <= 3,
            "proportional controller failed to converge: {} dirty pages \
             after {rounds} rounds (budget {BUDGET})",
            db.global_dirty_pages()
        );
        for k in 0..16u64 {
            session.insert(k, b"nudge".to_vec()).unwrap();
        }
        db.wait_for_auto_checkpoint();
    }
    assert_eq!(db.take_auto_checkpoint_error(), None);
    // Correctness is untouched by the sweeps.
    for k in (16..4_000u64).step_by(37) {
        assert_eq!(session.get(k).unwrap().unwrap(), rec(k));
    }
    db.validate().unwrap();
    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Node-device compaction rides the checkpoint: after a shrink-heavy
/// workload, a checkpoint reports moved/truncated node blocks and the
/// partitions' `nodes.sks` files physically shrink.
#[test]
fn checkpoint_compacts_and_shrinks_the_node_device() {
    let dir = tmpdir("node_shrink");
    let db = SksDb::open(&dir, file_config(&dir, 2)).unwrap();
    let session = db.session();
    for k in 0..4_000u64 {
        session.insert(k, rec(k)).unwrap();
    }
    db.checkpoint().unwrap();
    let nodes_len = |dir: &std::path::Path| -> u64 {
        (0..2)
            .map(|i| {
                let p = dir.join(format!("part-{i:03}")).join("nodes.sks");
                std::fs::metadata(p).map(|m| m.len()).unwrap_or(0)
            })
            .sum()
    };
    let high_water = nodes_len(&dir);
    // Shrink to 10%, deleting the *early-inserted* key range: the
    // surviving late keys live in high-numbered node blocks, so packing
    // them needs real relocations, not just tail truncation.
    for k in 0..3_600u64 {
        session.delete(k).unwrap();
    }
    // Checkpoints run the budgeted passes; loop until quiescent.
    let mut governed = sks_core::CompactionReport::default();
    for _ in 0..200 {
        db.checkpoint().unwrap();
        let r = db.last_compaction_report();
        governed.absorb(r);
        if r.freed_blocks == 0 && r.moved_nodes == 0 && r.node_blocks_truncated == 0 {
            break;
        }
    }
    assert!(governed.moved_nodes > 0, "sliding passes ran: {governed:?}");
    assert!(governed.node_blocks_truncated > 0, "{governed:?}");
    assert!(governed.freed_blocks > 0, "{governed:?}");
    let shrunk = nodes_len(&dir);
    assert!(
        shrunk * 4 < high_water,
        "nodes.sks should shrink well below the high-water mark: {shrunk} vs {high_water}"
    );
    for k in 3_600..4_000u64 {
        assert_eq!(session.get(k).unwrap().unwrap(), rec(k), "key {k}");
    }
    db.validate().unwrap();
    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Reopening after governed churn tail-replays and serves everything —
/// the shrunken devices are a valid persisted image.
#[test]
fn shrunken_database_reopens_cleanly() {
    let dir = tmpdir("shrunk_reopen");
    {
        let db = SksDb::open(&dir, file_config(&dir, 2)).unwrap();
        let session = db.session();
        for k in 0..1_000u64 {
            session.insert(k, rec(k)).unwrap();
        }
        for k in 0..900u64 {
            session.delete(k).unwrap();
        }
        for _ in 0..50 {
            db.checkpoint().unwrap();
            let r = db.last_compaction_report();
            if r.freed_blocks == 0 && r.moved_nodes == 0 {
                break;
            }
        }
    }
    {
        let db = SksDb::open(&dir, file_config(&dir, 2)).unwrap();
        assert_eq!(db.len(), 100);
        let session = db.session();
        for k in 900..1_000u64 {
            assert_eq!(session.get(k).unwrap().unwrap(), rec(k));
        }
        db.validate().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}
