//! The fuzzy-checkpoint contract, end to end: clients make progress while
//! a checkpoint is in flight, writes racing the checkpoint are never
//! lost, and a crash at any phase boundary recovers a consistent image.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sks_core::{Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, SksDb};
use sks_storage::SyncPolicy;

const CAPACITY: u64 = 20_000;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_ckpt_conc_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(dir: &std::path::Path, file_backend: bool) -> EngineConfig {
    let mut scheme = SchemeConfig::with_capacity(Scheme::Oval, CAPACITY).partitions(4);
    if file_backend {
        scheme = scheme.backend(StorageBackend::File {
            dir: dir.to_path_buf(),
            pool_pages: 64,
        });
    }
    EngineConfig::new(scheme).sync(SyncPolicy::EveryN(16))
}

/// Drives reads and writes from a worker thread while a checkpoint runs,
/// and — crucially — makes the checkpoint *wait* for that progress via
/// the mid-checkpoint hook. Under the old stop-the-world checkpoint
/// (all partitions write-locked for the duration) this deadlocks; the
/// fuzzy checkpoint completes because clients are never globally blocked.
fn progress_during_checkpoint(file_backend: bool, name: &str) {
    let dir = tmpdir(name);
    let db = SksDb::open(&dir, config(&dir, file_backend)).expect("open");
    let session = db.session();
    for k in 0..2_000u64 {
        session.insert(k, format!("base-{k}").into_bytes()).unwrap();
    }

    let ops_done = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let session = session.clone();
        let ops_done = Arc::clone(&ops_done);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let read_key = i % 2_000;
                assert!(session.get(read_key).unwrap().is_some(), "key {read_key}");
                let write_key = 10_000 + (i % 5_000);
                session
                    .insert(write_key, format!("during-{write_key}").into_bytes())
                    .unwrap();
                ops_done.fetch_add(1, Ordering::Release);
                i += 1;
            }
            i
        })
    };

    // The checkpoint may only complete after the worker has demonstrably
    // progressed *while it was in flight*.
    let before = ops_done.load(Ordering::Acquire);
    db.checkpoint_with_hook(|| {
        while ops_done.load(Ordering::Acquire) < before + 20 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    })
    .expect("checkpoint");

    stop.store(true, Ordering::Release);
    let total = worker.join().expect("worker");
    assert!(total >= before + 20);
    db.validate().unwrap();

    // Nothing racing the checkpoint was lost — including writes that
    // landed mid-flight (the fuzzy tail) — across a "crash" (drop with
    // no further checkpoint or flush) and reopen.
    let written: Vec<u64> = (10_000..10_000 + total.min(5_000)).collect();
    drop(session);
    drop(db);
    let db = SksDb::open(&dir, config(&dir, file_backend)).expect("reopen");
    for k in written {
        assert_eq!(
            db.get(k).unwrap(),
            Some(format!("during-{k}").into_bytes()),
            "mid-checkpoint write {k} lost"
        );
    }
    assert!(db.len() >= 2_000);
    db.validate().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_clients_progress_during_checkpoint() {
    progress_during_checkpoint(true, "file_progress");
}

#[test]
fn memory_backend_clients_progress_during_checkpoint() {
    progress_during_checkpoint(false, "mem_progress");
}

/// A crash *between* the partition-flush phase and the WAL cut (pages
/// durable, log untrimmed) must recover every record: replaying the full
/// old log over the newer images converges.
#[test]
fn crash_between_flush_and_wal_cut_recovers() {
    let dir = tmpdir("crash_between_phases");
    {
        let db = SksDb::open(&dir, config(&dir, true)).expect("open");
        let session = db.session();
        for k in 0..1_000u64 {
            session.insert(k, format!("a-{k}").into_bytes()).unwrap();
        }
        db.checkpoint().expect("first checkpoint");
        for k in 1_000..1_500u64 {
            session.insert(k, format!("b-{k}").into_bytes()).unwrap();
        }
        for k in (0..1_000u64).step_by(5) {
            session.delete(k).unwrap();
        }
        // Phase 2 of a checkpoint without its phase 3: pages flushed, WAL
        // left untrimmed. Then crash.
        db.flush_pages().expect("flush pages");
    }
    let db = SksDb::open(&dir, config(&dir, true)).expect("recover");
    for k in 0..1_000u64 {
        let want = if k % 5 == 0 {
            None
        } else {
            Some(format!("a-{k}").into_bytes())
        };
        assert_eq!(db.get(k).unwrap(), want, "key {k}");
    }
    for k in 1_000..1_500u64 {
        assert_eq!(db.get(k).unwrap(), Some(format!("b-{k}").into_bytes()));
    }
    db.validate().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Sustained writes with a dirty high-water mark: background checkpoints
/// keep the WAL (and the pinned dirty set) from growing without bound,
/// and lose nothing.
#[test]
fn dirty_high_water_auto_checkpoint_bounds_growth() {
    let dir = tmpdir("auto_ckpt");
    let mut cfg = config(&dir, true);
    // Small pages so a sustained write run really accumulates a dirty
    // set, and a low mark so the trigger must fire along the way.
    cfg.scheme.block_size = 512;
    cfg.scheme = cfg.scheme.dirty_high_water(32);
    let record = |k: u64| format!("auto-checkpoint-record-{k:06}").into_bytes();
    {
        let db = SksDb::open(&dir, cfg.clone()).expect("open");
        let session = db.session();
        let mut prev_wal_len = db.wal_len_bytes();
        let mut saw_cut = false;
        let mut max_dirty = 0usize;
        for k in 0..4_000u64 {
            session.insert(k, record(k)).unwrap();
            // A background cut is visible as the only way the log ever
            // shrinks (appends are monotone).
            let len = db.wal_len_bytes();
            if len < prev_wal_len {
                saw_cut = true;
            }
            prev_wal_len = len;
            max_dirty = max_dirty.max(db.dirty_pages_per_partition().iter().sum());
        }
        db.wait_for_auto_checkpoint();
        assert_eq!(db.take_auto_checkpoint_error(), None);
        assert!(saw_cut, "no background checkpoint ever cut the log");
        assert!(
            max_dirty > 32,
            "workload never breached the high-water mark (max dirty {max_dirty}); \
             the trigger was not exercised"
        );
        db.validate().unwrap();
    }
    // Everything survives a reopen.
    let db = SksDb::open(&dir, cfg).expect("reopen");
    assert_eq!(db.len(), 4_000);
    for k in (0..4_000u64).step_by(271) {
        assert_eq!(db.get(k).unwrap(), Some(record(k)));
    }
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Readers and writers make progress while *node-device compaction* runs
/// inside the fuzzy checkpoint: after a shrink-heavy prelude, the
/// checkpoint's compaction passes must do real sliding work (relocations
/// and/or tail truncation) while a worker thread demonstrably reads and
/// writes mid-flight — and nothing racing the governed checkpoint is
/// lost.
fn progress_during_node_compaction(file_backend: bool, name: &str) {
    let dir = tmpdir(name);
    let db = SksDb::open(&dir, config(&dir, file_backend)).expect("open");
    let session = db.session();
    // Grow, then delete the early-inserted range: the survivors live in
    // high-numbered node blocks, so the checkpoint's sliding pass has
    // real relocations to do (not just truncation).
    for k in 0..4_000u64 {
        session.insert(k, format!("base-{k}").into_bytes()).unwrap();
    }
    for k in 0..3_200u64 {
        session.delete(k).unwrap();
    }

    let ops_done = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let session = session.clone();
        let ops_done = Arc::clone(&ops_done);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let read_key = 3_200 + (i % 800);
                assert!(session.get(read_key).unwrap().is_some(), "key {read_key}");
                let write_key = 10_000 + (i % 5_000);
                session
                    .insert(write_key, format!("during-{write_key}").into_bytes())
                    .unwrap();
                ops_done.fetch_add(1, Ordering::Release);
                i += 1;
            }
            i
        })
    };

    // Checkpoint until the governance passes go quiescent, each pass
    // required to overlap demonstrable client progress.
    let mut governed = sks_core::CompactionReport::default();
    for _ in 0..200 {
        let before = ops_done.load(Ordering::Acquire);
        db.checkpoint_with_hook(|| {
            while ops_done.load(Ordering::Acquire) < before + 10 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
        .expect("checkpoint");
        let r = db.last_compaction_report();
        governed.absorb(r);
        if r.freed_blocks == 0 && r.moved_nodes == 0 && r.node_blocks_truncated == 0 {
            break;
        }
    }
    assert!(
        governed.moved_nodes > 0,
        "node compaction never slid a node: {governed:?}"
    );
    assert!(
        governed.node_blocks_truncated > 0,
        "the node device never shrank: {governed:?}"
    );

    stop.store(true, Ordering::Release);
    let total = worker.join().expect("worker");
    db.validate().unwrap();
    // Nothing racing the governed checkpoints was lost.
    for k in 3_200..4_000u64 {
        assert_eq!(db.get(k).unwrap(), Some(format!("base-{k}").into_bytes()));
    }
    for k in 10_000..10_000 + total.min(5_000) {
        assert_eq!(
            db.get(k).unwrap(),
            Some(format!("during-{k}").into_bytes()),
            "racing write {k} lost"
        );
    }
    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_clients_progress_during_node_compaction() {
    progress_during_node_compaction(true, "file_node_compact");
}

#[test]
fn memory_backend_clients_progress_during_node_compaction() {
    progress_during_node_compaction(false, "mem_node_compact");
}
