//! Crash probes over a fault-injecting WAL device: a [`FailStore`]
//! wrapped around the log's [`FileDisk`] tears a commit-record write
//! mid-group-commit, and recovery must scrub the torn tail *and* name it
//! in the flight-recorder dump that travels with the [`RecoveryReport`].

use sks_core::{Scheme, SchemeConfig};
use sks_engine::{EngineConfig, EventKind, RecoveryPath, SksDb, Wal};
use sks_storage::{FailMode, FailPlan, FailStore, FileDisk, OpCounters, SyncPolicy};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_wal_probe_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn torn_commit_record_mid_group_commit_is_scrubbed_and_named() {
    let dir = tmpdir("torn_commit");
    let config = EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, 4096))
        .sync(SyncPolicy::EveryN(8));
    let wal_path = dir.join("wal.sks");

    // Build the engine's WAL over a fault-injecting device, with the
    // exact key the engine will later use to recover it.
    const BLOCK: usize = 512;
    let counters = OpCounters::new();
    let disk = FileDisk::create_with_counters(&wal_path, BLOCK, counters.clone()).unwrap();
    let (fail, plan) = FailStore::new(disk);
    let mut wal = Wal::create_on_device(
        fail,
        BLOCK,
        config.wal_key(),
        SyncPolicy::EveryN(8),
        counters,
    )
    .unwrap();

    // A short committed prefix, durably flushed (well under half a
    // block, so the torn write below cuts inside the *next* record).
    for k in 0..3u64 {
        wal.append_insert(k, format!("v-{k}").as_bytes()).unwrap();
        wal.commit().unwrap();
    }
    wal.flush().unwrap();
    let intact = wal.len_bytes();
    assert!(intact < BLOCK as u64 / 2, "prefix must fit the torn half");

    // Arm the device: the very next block write — the group-commit's
    // tail write carrying the doomed record — lands only its first half.
    plan.arm_nth_write(1, FailMode::Torn);
    wal.append_insert(3, &[0xD0; 150]).unwrap(); // frame straddles the cut
    let err = wal.commit().unwrap_err();
    assert!(plan.tripped(), "the armed write fired: {err}");
    assert!(wal.is_poisoned(), "a torn append fail-stops the handle");
    drop(wal);

    // Recovery through the engine: the intact prefix replays, the torn
    // record is discarded, and the scrub is on the recovery timeline.
    let db = SksDb::open(&dir, config).unwrap();
    let report = db.recovery_report();
    assert_eq!(report.path, RecoveryPath::FullReplay);
    assert_eq!(report.records_replayed, 3);
    assert!(report.torn_tail, "the half-written record is a torn tail");
    assert!(report.bytes_discarded > 0);

    let scrub = report
        .events
        .iter()
        .find(|e| e.kind == EventKind::TornTailScrub)
        .expect("the recovery timeline records the scrub");
    assert_eq!(
        scrub.a, intact,
        "the scrub names where the valid stream ended"
    );
    assert_eq!(
        scrub.b, report.bytes_discarded,
        "the scrub names the bytes it discarded"
    );
    let dump = report.render_events();
    assert!(
        dump.contains(&format!("torn_tail_scrub p=* a={} b={}", scrub.a, scrub.b)),
        "the rendered dump names the scrubbed tail:\n{dump}"
    );

    // The committed prefix survived; the torn record did not.
    for k in 0..3u64 {
        assert_eq!(db.get(k).unwrap().unwrap(), format!("v-{k}").into_bytes());
    }
    assert_eq!(db.get(3).unwrap(), None, "the torn record must not replay");

    // The scrubbed log accepts appends again and stays clean on reopen.
    db.insert(3, b"after-recovery".to_vec()).unwrap();
    db.flush().unwrap();
    drop(db);
    let db = SksDb::open(&dir, {
        let scheme = SchemeConfig::with_capacity(Scheme::Oval, 4096);
        EngineConfig::new(scheme).sync(SyncPolicy::EveryN(8))
    })
    .unwrap();
    assert!(!db.recovery_report().torn_tail, "the scrub was durable");
    assert_eq!(db.get(3).unwrap().unwrap(), b"after-recovery".to_vec());
}

/// Crash-probe sweep over the *pipelined* write path: batch sealing and
/// the double-buffered writer thread both on, a fault — torn write,
/// clean write error, or a killed fsync — armed at a seed-derived stage
/// boundary, twelve seeds, with fsync-overlapped sealing both off and
/// on. Every reopen must recover a *consistent prefix* of the logical
/// stream: some whole number of leading group commits, never a partial
/// batch, never a record out of order, and a log that accepts writes
/// again.
#[test]
fn pipelined_wal_fault_sweep_recovers_consistent_prefixes() {
    const BLOCK: usize = 512;
    const BATCHES: u64 = 30;
    const PER_BATCH: u64 = 3;
    let value = |k: u64| format!("sweep-record-{k:04}").into_bytes();

    let mut faults_fired = 0u32;
    for run in 0..24u64 {
        let (overlap, seed) = (run >= 12, run % 12);
        let dir = tmpdir(&format!("sweep_{overlap}_{seed}"));
        let config = EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, 4096))
            .sync(SyncPolicy::EveryN(4));
        let wal_path = dir.join("wal.sks");

        let counters = OpCounters::new();
        let disk = FileDisk::create_with_counters(&wal_path, BLOCK, counters.clone()).unwrap();
        let (fail, plan): (FailStore<FileDisk>, FailPlan) = FailStore::new(disk);
        let mut wal = Wal::create_on_device(
            fail,
            BLOCK,
            config.wal_key(),
            SyncPolicy::EveryN(4),
            counters,
        )
        .unwrap();
        wal.set_seal_batch(true);
        wal.enable_pipeline();
        wal.set_overlap(overlap);

        // Seed-derived fault: two thirds hit a block write (alternating
        // torn and clean-error — the batch-seal/device-write boundary),
        // one third kills an fsync (the group-commit barrier; with
        // overlap on it dies on the writer thread and must surface
        // through the sync ticket).
        match seed % 3 {
            0 => drop(plan.arm_from_seed(seed, 35, FailMode::Torn)),
            1 => drop(plan.arm_from_seed(seed, 35, FailMode::Error)),
            _ => plan.arm_nth_flush(seed / 3 + 1),
        }

        // Drive group commits until the fault surfaces (the pipeline may
        // report it one commit late — that is the point of the sweep).
        'workload: for batch in 0..BATCHES {
            for i in 0..PER_BATCH {
                let k = batch * PER_BATCH + i;
                if wal.append_insert(k, &value(k)).is_err() {
                    break 'workload;
                }
            }
            let committed = if overlap {
                match wal.commit_pipelined() {
                    Ok(Some(ticket)) => ticket.wait().is_ok(),
                    Ok(None) => true,
                    Err(_) => false,
                }
            } else {
                wal.commit().is_ok()
            };
            if !committed {
                break 'workload;
            }
        }
        let _ = wal.flush();
        if plan.tripped() {
            faults_fired += 1;
        }
        drop(wal);

        // "Reboot": recover through the engine over whatever the medium
        // holds, with the same knobs (the reopened WAL re-enters batch +
        // pipeline mode).
        let db = SksDb::open(&dir, config).unwrap();
        let report = db.recovery_report();
        let n = report.records_replayed;
        assert_eq!(report.path, RecoveryPath::FullReplay, "seed {seed}");
        assert_eq!(
            n % PER_BATCH,
            0,
            "seed {seed}: a sealed batch replays all-or-nothing, got {n} records"
        );
        // The replayed set is exactly the leading keys — a prefix, no
        // holes, no reordering, no resurrections past the cut.
        for k in 0..n {
            assert_eq!(
                db.get(k).unwrap().as_deref(),
                Some(value(k).as_slice()),
                "seed {seed}: key {k} inside the recovered prefix"
            );
        }
        for k in n..BATCHES * PER_BATCH {
            assert_eq!(
                db.get(k).unwrap(),
                None,
                "seed {seed}: key {k} past the recovered prefix"
            );
        }
        // The scrubbed log keeps working and the repair is durable.
        db.insert(1_000 + seed, b"post-recovery".to_vec()).unwrap();
        db.flush().unwrap();
        drop(db);
        let db = SksDb::open(
            &dir,
            EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, 4096))
                .sync(SyncPolicy::EveryN(4)),
        )
        .unwrap();
        assert!(
            !db.recovery_report().torn_tail,
            "seed {seed}: scrub durable"
        );
        assert_eq!(
            db.get(1_000 + seed).unwrap().unwrap(),
            b"post-recovery".to_vec(),
            "seed {seed}"
        );
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        faults_fired >= 20,
        "the sweep must actually exercise the fault plans: {faults_fired}/24 fired"
    );
}

/// The overlapped-fsync fault window, surgically: group N's fsync is
/// killed on the writer thread while group N+1 is already sealed behind
/// it. The failure must surface on N's ticket (a killed overlapped fsync
/// is never silently acked), every commit behind it must fail through
/// the sticky error, and the reopened log must hold a consistent
/// whole-batch prefix containing everything that was acked durable.
#[test]
fn killed_overlapped_fsync_with_next_group_sealed_recovers() {
    const BLOCK: usize = 512;
    let dir = tmpdir("overlap_kill");
    let config =
        EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, 4096)).sync(SyncPolicy::Always);
    let wal_path = dir.join("wal.sks");
    let value = |k: u64| format!("overlap-record-{k:04}").into_bytes();

    let counters = OpCounters::new();
    let disk = FileDisk::create_with_counters(&wal_path, BLOCK, counters.clone()).unwrap();
    let (fail, plan) = FailStore::new(disk);
    let mut wal =
        Wal::create_on_device(fail, BLOCK, config.wal_key(), SyncPolicy::Always, counters).unwrap();
    wal.set_seal_batch(true);
    wal.enable_pipeline();
    wal.set_overlap(true);

    // Group 0: committed, fsync overlapped, acked durable.
    for k in 0..3u64 {
        wal.append_insert(k, &value(k)).unwrap();
    }
    let t0 = wal
        .commit_pipelined()
        .unwrap()
        .expect("Always policy syncs every commit");
    t0.wait().unwrap();

    // Arm the kill: the next fsync — group 1's — dies on the writer
    // thread.
    plan.arm_nth_flush(1);

    // Group 1 seals and submits its doomed fsync…
    for k in 3..6u64 {
        wal.append_insert(k, &value(k)).unwrap();
    }
    let t1 = wal
        .commit_pipelined()
        .unwrap()
        .expect("ticket for the doomed sync");

    // …and group 2 seals behind it while that fsync is in flight (or
    // already dead — the race is the point: whichever side observes the
    // error first, it must never be lost).
    let g2 = (|| {
        for k in 6..9u64 {
            wal.append_insert(k, &value(k))?;
        }
        wal.commit_pipelined()
    })();

    // The doomed group's waiter sees the failure.
    assert!(t1.wait().is_err(), "group 1's ticket must surface the kill");
    assert!(plan.tripped(), "the armed fsync fired");
    match g2 {
        // If group 2 got in before the error landed, its sync sits
        // behind the dead one in the FIFO and inherits the failure.
        Ok(Some(t2)) => assert!(t2.wait().is_err(), "a sync behind a killed fsync must fail"),
        Ok(None) => panic!("Always policy returns a ticket"),
        // Or the seal already observed the sticky error — also correct.
        Err(_) => {}
    }
    // The handle fail-stops rather than acking over the hole.
    let _ = wal.append_insert(99, b"must-not-commit");
    assert!(
        wal.commit_pipelined().is_err(),
        "the stream is poisoned after the kill"
    );
    drop(wal);

    // Reopen through the engine: a whole-batch prefix that includes at
    // least the acked group and nothing past the poison point.
    let db = SksDb::open(&dir, config).unwrap();
    let report = db.recovery_report();
    assert_eq!(report.path, RecoveryPath::FullReplay);
    let n = report.records_replayed;
    assert!(n >= 3, "the acked group is durable: {n} records");
    assert_eq!(n % 3, 0, "whole group commits only, got {n}");
    assert!(n <= 9, "nothing past the poisoned commit replays");
    for k in 0..n {
        assert_eq!(
            db.get(k).unwrap().as_deref(),
            Some(value(k).as_slice()),
            "key {k} inside the recovered prefix"
        );
    }
    for k in n..10 {
        assert_eq!(db.get(k).unwrap(), None, "key {k} past the prefix");
    }
    assert_eq!(
        db.get(99).unwrap(),
        None,
        "the post-poison record must not commit"
    );
    // The log accepts writes again after recovery.
    db.insert(500, b"post-recovery".to_vec()).unwrap();
    db.flush().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
