//! Multi-key transactions end to end: snapshot isolation semantics,
//! first-committer-wins conflicts, atomic cross-partition commits under
//! concurrency and crash, checkpoint interaction, and the cost-model pin
//! that autocommit ops stayed byte-identical to the pre-transaction
//! engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

use proptest::prelude::*;
use sks_core::{Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, EngineError, SksDb, Wal};
use sks_storage::{FailMode, FailPlan, FailStore, FileDisk, OpCounters, OpSnapshot, SyncPolicy};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_txn_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Backend-generic config, driven by the CI matrix's `SKS_TEST_BACKEND`
/// axis (unset = memory).
fn env_backend() -> Option<StorageBackend> {
    match std::env::var("SKS_TEST_BACKEND").as_deref() {
        Ok("file") => Some(StorageBackend::File {
            dir: std::env::temp_dir(),
            pool_pages: 64,
        }),
        Ok("memory") | Err(_) => None,
        Ok(other) => panic!("SKS_TEST_BACKEND must be 'memory' or 'file', got {other:?}"),
    }
}

fn config(partitions: usize, capacity: u64) -> EngineConfig {
    let mut scheme = SchemeConfig::with_capacity(Scheme::Oval, capacity).partitions(partitions);
    if let Some(backend) = env_backend() {
        scheme = scheme.backend(backend);
    }
    EngineConfig::new(scheme)
}

fn rec(k: u64) -> Vec<u8> {
    format!("txn-record-{k:05}").into_bytes()
}

fn enc(n: u64) -> Vec<u8> {
    n.to_be_bytes().to_vec()
}

fn dec(v: &[u8]) -> u64 {
    u64::from_be_bytes(v.try_into().expect("8-byte balance"))
}

/// Keys routed to `want` distinct partitions, one key each, scanning up
/// from 1 (0 is outside some disguise domains).
fn keys_in_distinct_partitions(db: &SksDb, want: usize) -> Vec<u64> {
    let mut seen = std::collections::BTreeMap::new();
    for k in 1..2000u64 {
        let p = db.partition_of(k).unwrap();
        seen.entry(p).or_insert(k);
        if seen.len() == want {
            break;
        }
    }
    assert_eq!(
        seen.len(),
        want,
        "router must spread keys over {want} partitions"
    );
    seen.into_values().collect()
}

/// Snapshot isolation basics: read-your-own-writes, snapshot stability
/// against later commits, abort/drop semantics, the finished/poisoned
/// state machine, and an overlay that drains to zero.
#[test]
fn txn_snapshot_reads_and_state_machine() {
    let dir = tmpdir("semantics");
    let db = SksDb::open(&dir, config(4, 4096)).unwrap();
    let session = db.session();
    for k in 1..40u64 {
        session.insert(k, rec(k)).unwrap();
    }

    // Snapshot stability: a txn begun now never sees later autocommit
    // traffic, while read-committed sessions do.
    let t = session.begin();
    assert_eq!(t.get(7).unwrap().unwrap(), rec(7));
    session
        .insert(7, b"overwritten-after-snapshot".to_vec())
        .unwrap();
    session.insert(500, rec(500)).unwrap();
    session.delete(9).unwrap();
    assert_eq!(t.get(7).unwrap().unwrap(), rec(7), "snapshot must not move");
    assert_eq!(t.get(500).unwrap(), None, "post-snapshot insert invisible");
    assert_eq!(
        t.get(9).unwrap().unwrap(),
        rec(9),
        "post-snapshot delete invisible"
    );
    let scan = t.range(1, 40).unwrap();
    assert_eq!(scan.len(), 39, "snapshot scan sees the begin-time key set");
    assert!(
        scan.iter().all(|(k, v)| *v == rec(*k)),
        "scan rewinds overwrites"
    );
    drop(t); // drop-abort
    assert!(
        db.txn_overlay_len() == 0,
        "overlay drains when the last snapshot dies"
    );
    assert_eq!(
        session.get(7).unwrap().unwrap(),
        b"overwritten-after-snapshot".to_vec()
    );

    // Read-your-own-writes + buffered deletes, invisible until commit.
    let mut t = session.begin();
    t.insert(100, b"buffered".to_vec()).unwrap();
    t.delete(11).unwrap();
    assert_eq!(t.get(100).unwrap().unwrap(), b"buffered".to_vec());
    assert_eq!(t.get(11).unwrap(), None);
    let scan = t.range(10, 100).unwrap();
    assert!(
        scan.iter().any(|(k, _)| *k == 100),
        "own insert visible to own scan"
    );
    assert!(
        scan.iter().all(|(k, _)| *k != 11),
        "own delete visible to own scan"
    );
    assert_eq!(
        session.get(100).unwrap(),
        None,
        "buffered writes invisible outside"
    );
    assert_eq!(session.get(11).unwrap().unwrap(), rec(11));
    t.commit().unwrap();
    assert_eq!(session.get(100).unwrap().unwrap(), b"buffered".to_vec());
    assert_eq!(session.get(11).unwrap(), None);

    // The handle is spent after commit.
    assert!(matches!(t.get(1), Err(EngineError::TxnAborted)));
    assert!(matches!(t.insert(1, vec![1]), Err(EngineError::TxnAborted)));
    assert!(matches!(t.commit(), Err(EngineError::TxnAborted)));

    // Explicit abort discards everything.
    let mut t = session.begin();
    t.insert(200, b"doomed".to_vec()).unwrap();
    t.abort().unwrap();
    assert_eq!(session.get(200).unwrap(), None);
    assert!(matches!(t.abort(), Err(EngineError::TxnAborted)));

    // Empty commit is a no-op that still counts.
    let mut t = session.begin();
    t.commit().unwrap();

    let snap = db.snapshot();
    assert_eq!(snap.txn_begins, 4);
    assert_eq!(snap.txn_commits, 2);
    assert_eq!(snap.txn_aborts, 2);
    assert_eq!(db.txn_overlay_len(), 0);
    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// First-committer-wins: a commit whose written key was committed by
/// someone else after its snapshot aborts with the key and partition,
/// nothing is applied, and a fresh txn retries cleanly.
#[test]
fn conflicts_are_first_committer_wins() {
    let dir = tmpdir("conflict");
    let db = SksDb::open(&dir, config(4, 4096)).unwrap();
    let keys = keys_in_distinct_partitions(&db, 2);
    let (a, b) = (keys[0], keys[1]);
    db.insert(a, enc(1)).unwrap();
    db.insert(b, enc(2)).unwrap();

    let mut loser = db.begin();
    let mut winner = db.begin();
    winner.insert(a, enc(10)).unwrap();
    winner.commit().unwrap();

    loser.insert(a, enc(99)).unwrap();
    loser.insert(b, enc(98)).unwrap();
    match loser.commit() {
        Err(EngineError::Conflict { key, partition }) => {
            assert_eq!(key, a);
            assert_eq!(partition, db.partition_of(a).unwrap());
        }
        other => panic!("expected Conflict, got {other:?}"),
    }
    // Nothing from the losing txn landed — not even its non-conflicting
    // write.
    assert_eq!(db.get(a).unwrap().unwrap(), enc(10));
    assert_eq!(db.get(b).unwrap().unwrap(), enc(2));
    // The conflicted handle is finished (retry = new txn), not poisoned.
    assert!(matches!(loser.get(a), Err(EngineError::TxnAborted)));

    let mut retry = db.begin();
    assert_eq!(
        retry.get(a).unwrap().unwrap(),
        enc(10),
        "fresh snapshot sees the winner"
    );
    retry.insert(a, enc(99)).unwrap();
    retry.insert(b, enc(98)).unwrap();
    retry.commit().unwrap();
    assert_eq!(db.get(a).unwrap().unwrap(), enc(99));
    assert_eq!(db.get(b).unwrap().unwrap(), enc(98));

    let snap = db.snapshot();
    assert_eq!(snap.txn_conflicts, 1);
    // Exactly one commit above was multi-key (the retry); the winner's
    // single write kept legacy framing.
    assert_eq!(snap.wal_txn_frames, 1, "multi-key commits seal txn frames");
    assert_eq!(db.txn_overlay_len(), 0);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Snapshot readers never block on a commit in flight: while a
/// cross-partition commit holds its write locks (mid-commit hook), a
/// snapshot read of a *third* partition must complete — the commit is
/// gated on that progress.
#[test]
fn snapshot_reader_progresses_while_commit_holds_its_locks() {
    let dir = tmpdir("progress");
    let db = SksDb::open(&dir, config(4, 4096)).unwrap();
    let keys = keys_in_distinct_partitions(&db, 3);
    let (a, b, c) = (keys[0], keys[1], keys[2]);
    for &k in &[a, b, c] {
        db.insert(k, rec(k)).unwrap();
    }

    // The reader's snapshot exists before the commit starts.
    let reader_txn = db.begin();
    let (start_tx, start_rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        start_rx.recv().unwrap();
        let v = reader_txn.get(c).unwrap();
        done_tx.send(v).unwrap();
    });

    let mut writer = db.begin();
    writer.insert(a, b"committed-a".to_vec()).unwrap();
    writer.insert(b, b"committed-b".to_vec()).unwrap();
    writer
        .commit_with_hook(|| {
            // Partitions of `a` and `b` are write-locked right now.
            start_tx.send(()).unwrap();
            let v = done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("snapshot reader must progress while the commit is in flight");
            assert_eq!(v.unwrap(), rec(c));
        })
        .unwrap();
    reader.join().unwrap();
    assert_eq!(db.get(a).unwrap().unwrap(), b"committed-a".to_vec());
    assert_eq!(db.get(b).unwrap().unwrap(), b"committed-b".to_vec());
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// One checkpoint's WAL cut must carry a transaction committed after the
/// mark as a *single frame* (the cut re-seals txn groups), and reopening
/// replays it all-or-nothing alongside autocommit traffic.
#[test]
fn checkpoint_cut_preserves_txn_frames_and_reopen_converges() {
    let dir = tmpdir("ckpt");
    let make = || config(3, 4096).sync(SyncPolicy::Always);
    let keys;
    {
        let db = SksDb::open(&dir, make()).unwrap();
        for k in 1..60u64 {
            db.insert(k, rec(k)).unwrap();
        }
        keys = keys_in_distinct_partitions(&db, 3);
        // A multi-partition txn committed before the mark…
        let mut t = db.begin();
        t.insert(keys[0], b"pre-mark-0".to_vec()).unwrap();
        t.insert(keys[1], b"pre-mark-1".to_vec()).unwrap();
        t.commit().unwrap();
        // …and one committed *mid-checkpoint*, after the mark: it lands in
        // the fuzzy tail and the cut must re-seal it as one txn frame.
        let db2 = Arc::clone(&db);
        let k0 = keys[0];
        let k2 = keys[2];
        db.checkpoint_with_hook(move || {
            let mut t = db2.begin();
            t.insert(k0, b"mid-ckpt-0".to_vec()).unwrap();
            t.insert(k2, b"mid-ckpt-2".to_vec()).unwrap();
            t.commit().unwrap();
        })
        .unwrap();
        // Post-checkpoint txn traffic on the fresh log.
        let mut t = db.begin();
        t.insert(keys[1], b"post-ckpt-1".to_vec()).unwrap();
        t.insert(keys[2], b"post-ckpt-2".to_vec()).unwrap();
        t.commit().unwrap();
        assert!(db.snapshot().wal_txn_frames >= 3);
        // Kill: drop without flush (Always already made commits durable).
    }
    let db = SksDb::open(&dir, make()).unwrap();
    assert_eq!(db.get(keys[0]).unwrap().unwrap(), b"mid-ckpt-0".to_vec());
    assert_eq!(db.get(keys[1]).unwrap().unwrap(), b"post-ckpt-1".to_vec());
    assert_eq!(db.get(keys[2]).unwrap().unwrap(), b"post-ckpt-2".to_vec());
    for k in 1..60u64 {
        if !keys.contains(&k) {
            assert_eq!(db.get(k).unwrap().unwrap(), rec(k), "key {k}");
        }
    }
    db.validate().unwrap();
    // A second full cycle over the recovered database.
    db.checkpoint().unwrap();
    drop(db);
    let db = SksDb::open(&dir, make()).unwrap();
    assert_eq!(db.get(keys[0]).unwrap().unwrap(), b"mid-ckpt-0".to_vec());
    db.validate().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-probe sweep over multi-key commit frames: a fault-injecting
/// device kills the log mid-stream — torn block write, clean write
/// error, or a dead fsync — at seed-derived kill points, and every
/// reopen must observe each transaction either fully applied or fully
/// absent (and the survivors a prefix in commit order).
#[test]
fn txn_commit_kill_point_sweep_is_all_or_nothing() {
    const BLOCK: usize = 512;
    const TXNS: u64 = 16;
    let mut faults_fired = 0u32;
    for run in 0..18u64 {
        let seed = run / 3;
        let dir = tmpdir(&format!("kill_{run}"));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = config(4, 4096).sync(SyncPolicy::Always);
        let wal_path = dir.join("wal.sks");

        let counters = OpCounters::new();
        let disk = FileDisk::create_with_counters(&wal_path, BLOCK, counters.clone()).unwrap();
        let (fail, plan): (FailStore<FileDisk>, FailPlan) = FailStore::new(disk);
        let mut wal =
            Wal::create_on_device(fail, BLOCK, cfg.wal_key(), SyncPolicy::Always, counters)
                .unwrap();

        // Committed autocommit prelude, then arm the fault and drive txn
        // commit frames into it.
        for k in 1..=4u64 {
            wal.append_insert(k, &rec(k)).unwrap();
            wal.commit().unwrap();
        }
        wal.flush().unwrap();
        match run % 3 {
            0 => drop(plan.arm_from_seed(seed, 12, FailMode::Torn)),
            1 => drop(plan.arm_from_seed(seed, 12, FailMode::Error)),
            _ => plan.arm_nth_flush(seed + 1),
        }
        'workload: for t in 0..TXNS {
            let ops: Vec<sks_engine::WalOp> = [100 + t, 200 + t, 300 + t]
                .iter()
                .map(|&k| sks_engine::WalOp::Insert {
                    key: k,
                    value: enc(t),
                })
                .collect();
            if wal.append_txn(&ops).is_err() || wal.commit().is_err() {
                break 'workload;
            }
        }
        let _ = wal.flush();
        if plan.tripped() {
            faults_fired += 1;
        }
        drop(wal);

        // Reboot through the engine over whatever the medium holds.
        let db = SksDb::open(&dir, cfg).unwrap();
        for k in 1..=4u64 {
            assert_eq!(db.get(k).unwrap().unwrap(), rec(k), "run {run}: prelude");
        }
        let mut alive_prefix = true;
        for t in 0..TXNS {
            let present: Vec<bool> = [100 + t, 200 + t, 300 + t]
                .iter()
                .map(|&k| db.get(k).unwrap().is_some())
                .collect();
            assert!(
                present.iter().all(|&p| p) || present.iter().all(|&p| !p),
                "run {run}: txn {t} replayed partially: {present:?}"
            );
            if present[0] {
                assert!(
                    alive_prefix,
                    "run {run}: txn {t} survived after an earlier txn was lost"
                );
                for &k in &[100 + t, 200 + t, 300 + t] {
                    assert_eq!(db.get(k).unwrap().unwrap(), enc(t), "run {run}");
                }
            } else {
                alive_prefix = false;
            }
        }
        // The scrubbed log accepts transactional traffic again.
        let mut t = db.begin();
        t.insert(900, b"post-recovery-a".to_vec()).unwrap();
        t.insert(901, b"post-recovery-b".to_vec()).unwrap();
        t.commit().unwrap();
        assert_eq!(db.get(900).unwrap().unwrap(), b"post-recovery-a".to_vec());
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        faults_fired >= 15,
        "the sweep must exercise its fault plans: {faults_fired}/18 fired"
    );
}

/// The cost-model pin: autocommit ops through `SksDb`, through `Session`
/// wrappers, and as explicit singleton transactions must agree on every
/// logical counter (the txn bookkeeping counters masked for the explicit
/// run — they are the only thing allowed to move), with zero txn frames
/// in the log, for every measured scheme.
#[test]
fn transactions_preserve_logical_counters_exactly() {
    for scheme in Scheme::MEASURED {
        let run = |mode: u8| -> OpSnapshot {
            let dir = tmpdir(&format!("pin_{}_{mode}", scheme.name()));
            let cfg = SchemeConfig::with_capacity(scheme, 4096).partitions(2);
            let db = SksDb::open(&dir, EngineConfig::new(cfg).sync(SyncPolicy::EveryN(4))).unwrap();
            let session = db.session();
            let put = |k: u64, v: Vec<u8>| match mode {
                0 => {
                    db.insert(k, v).unwrap();
                }
                1 => {
                    session.insert(k, v).unwrap();
                }
                _ => {
                    let mut t = session.begin();
                    t.insert(k, v).unwrap();
                    t.commit().unwrap();
                }
            };
            let del = |k: u64| match mode {
                0 => {
                    db.delete(k).unwrap();
                }
                1 => {
                    session.delete(k).unwrap();
                }
                _ => {
                    let mut t = session.begin();
                    t.delete(k).unwrap();
                    t.commit().unwrap();
                }
            };
            let read = |k: u64| match mode {
                0 => {
                    let _ = db.get(k).unwrap();
                }
                1 => {
                    let _ = session.get(k).unwrap();
                }
                _ => {
                    let mut t = session.begin();
                    let _ = t.get(k).unwrap();
                    t.commit().unwrap();
                }
            };
            for k in 1..120u64 {
                put(k, rec(k));
            }
            // Batches ride the same path in every mode (a batch group is
            // one implicit transaction either way).
            session
                .insert_batch((120..160u64).map(|k| (k, rec(k))).collect())
                .unwrap();
            for k in (1..120u64).step_by(4) {
                put(k, rec(k + 1));
            }
            for k in (1..120u64).step_by(7) {
                del(k);
            }
            for k in (1..160u64).step_by(3) {
                read(k);
            }
            let _ = match mode {
                0 => db.range(20, 90).unwrap(),
                1 => session.range(20, 90).unwrap(),
                _ => {
                    let mut t = session.begin();
                    let rows = t.range(20, 90).unwrap();
                    t.commit().unwrap();
                    rows
                }
            };
            let snap = db.snapshot();
            drop(session);
            drop(db);
            std::fs::remove_dir_all(&dir).ok();
            snap
        };
        let direct = run(0);
        let auto = run(1);
        let explicit = run(2);

        assert_eq!(
            direct,
            auto,
            "{}: Session autocommit wrappers diverged from SksDb",
            scheme.name()
        );
        assert_eq!(
            direct.wal_txn_frames,
            0,
            "{}: autocommit must keep legacy framing",
            scheme.name()
        );
        assert_eq!(
            explicit.wal_txn_frames,
            0,
            "{}: singleton txns must keep legacy framing",
            scheme.name()
        );
        assert_eq!(direct.txn_begins, 0, "{}", scheme.name());
        assert!(explicit.txn_begins > 0, "{}", scheme.name());
        // The explicit run may move only the txn bookkeeping counters.
        let mut masked = explicit;
        masked.txn_begins = 0;
        masked.txn_commits = 0;
        masked.txn_aborts = 0;
        assert_eq!(
            masked,
            direct,
            "{}: explicit singleton txns changed the logical cost model",
            scheme.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized concurrent transfers: writer threads move value between
    /// accounts under retry-on-conflict while snapshot scanners run
    /// throughout. Every snapshot scan must see the exact conserved total
    /// (an atomicity violation or torn cross-partition commit breaks the
    /// sum), and — because first-committer-wins forbids lost updates —
    /// the final state must equal the initial state plus the net of the
    /// logged successful transfers, i.e. *some* serial order of them.
    #[test]
    fn concurrent_transfers_serialize_and_never_tear(
        seed in 0u64..1_000_000,
        writers in 2usize..5,
        transfers in 4usize..12,
    ) {
        const ACCOUNTS: u64 = 8;
        const INITIAL: u64 = 1_000;
        let dir = tmpdir(&format!("prop_{seed}_{writers}_{transfers}"));
        let db = SksDb::open(&dir, config(4, 4096).sync(SyncPolicy::EveryN(2))).unwrap();
        for k in 1..=ACCOUNTS {
            db.insert(k, enc(INITIAL)).unwrap();
        }
        let total = ACCOUNTS * INITIAL;
        let stop = Arc::new(AtomicBool::new(false));

        // Snapshot scanners: the sum invariant must hold on every scan.
        let scanners: Vec<_> = (0..2)
            .map(|_| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scans = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let t = db.begin();
                        let rows = t.range(1, ACCOUNTS).unwrap();
                        assert_eq!(rows.len() as u64, ACCOUNTS, "accounts vanished mid-scan");
                        let sum: u64 = rows.iter().map(|(_, v)| dec(v)).sum();
                        assert_eq!(sum, total, "a snapshot scan saw a torn commit");
                        scans += 1;
                    }
                    scans
                })
            })
            .collect();

        let workers: Vec<_> = (0..writers)
            .map(|w| {
                let db = Arc::clone(&db);
                let mut rng = seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                std::thread::spawn(move || {
                    let mut log = Vec::new();
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    for _ in 0..transfers {
                        let from = next() % ACCOUNTS + 1;
                        let mut to = next() % ACCOUNTS + 1;
                        if to == from {
                            to = to % ACCOUNTS + 1;
                        }
                        let amt = next() % 50 + 1;
                        let mut attempts = 0;
                        loop {
                            attempts += 1;
                            let mut t = db.begin();
                            let bal_from = dec(&t.get(from).unwrap().unwrap());
                            if bal_from < amt {
                                break; // insufficient funds: skip
                            }
                            let bal_to = dec(&t.get(to).unwrap().unwrap());
                            t.insert(from, enc(bal_from - amt)).unwrap();
                            t.insert(to, enc(bal_to + amt)).unwrap();
                            match t.commit() {
                                Ok(()) => {
                                    log.push((from, to, amt));
                                    break;
                                }
                                Err(EngineError::Conflict { .. }) if attempts < 100 => continue,
                                Err(e) => panic!("commit failed: {e}"),
                            }
                        }
                    }
                    log
                })
            })
            .collect();

        let mut committed = Vec::new();
        for w in workers {
            committed.extend(w.join().unwrap());
        }
        stop.store(true, Ordering::Release);
        for s in scanners {
            prop_assert!(s.join().unwrap() > 0, "scanners must have run");
        }

        // No lost updates: the final balances are exactly the initial
        // state plus the net of the committed transfers.
        let mut expect: std::collections::BTreeMap<u64, u64> =
            (1..=ACCOUNTS).map(|k| (k, INITIAL)).collect();
        for (from, to, amt) in &committed {
            *expect.get_mut(from).unwrap() -= amt;
            *expect.get_mut(to).unwrap() += amt;
        }
        for (k, want) in &expect {
            prop_assert_eq!(dec(&db.get(*k).unwrap().unwrap()), *want, "account {}", k);
        }
        prop_assert_eq!(db.txn_overlay_len(), 0);

        // Durability: the committed state survives a reopen (multi-
        // partition commits force their fsync regardless of the lazy
        // policy; same-partition ones are covered by the final flush).
        db.flush().unwrap();
        drop(db);
        let db = SksDb::open(&dir, config(4, 4096).sync(SyncPolicy::EveryN(2))).unwrap();
        for (k, want) in &expect {
            prop_assert_eq!(dec(&db.get(*k).unwrap().unwrap()), *want, "reopened account {}", k);
        }
        db.validate().unwrap();
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}
