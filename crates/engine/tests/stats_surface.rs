//! The first-class stats surface end to end: per-op latency histograms,
//! the stage-attributed write-path breakdown (the PR's acceptance bar:
//! the breakdown must explain ≥90% of measured insert wall time on the
//! file backend), observability levels, the no-plaintext telemetry
//! guarantee, and batch commit amortisation.

use std::time::Instant;

use sks_core::{ObsLevel, Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, EventKind, SksDb, Stage};
use sks_storage::SyncPolicy;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_stats_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Acceptance: with stage timing on, the write-path breakdown — record
/// seal + WAL append + WAL fsync + node seal + node unseal, each
/// nanosecond counted once — explains at least 90% of the wall time the
/// caller actually measured across inserts on the file backend.
#[test]
fn write_path_breakdown_explains_insert_wall_time() {
    let dir = tmpdir("write_path");
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, 4096)
        .backend(StorageBackend::File {
            dir: dir.clone(),
            pool_pages: 64,
        })
        .observability(ObsLevel::Histograms);
    let db = SksDb::open(&dir, EngineConfig::new(scheme).sync(SyncPolicy::Always)).unwrap();

    const N: u64 = 200;
    let wall = Instant::now();
    for k in 0..N {
        db.insert(k, vec![k as u8; 256]).unwrap();
    }
    let wall_ns = wall.elapsed().as_nanos() as u64;

    let stats = db.stats();
    let put = stats.op("put").expect("put histogram present");
    assert_eq!(put.count, N, "every insert was measured");
    assert!(put.p50() > 0 && put.p99() >= put.p50() && put.max >= put.p99());

    let attributed = stats.write_path_ns();
    assert!(
        attributed >= wall_ns / 10 * 9,
        "write-path stages explain {attributed} of {wall_ns} ns ({:.1}%); need >= 90%",
        attributed as f64 * 100.0 / wall_ns as f64
    );
    assert!(
        attributed <= wall_ns,
        "stages nest inside the measured wall: {attributed} vs {wall_ns} ns"
    );
    // With per-commit fsync the sync stage dominates, and each top-level
    // stage saw every insert.
    assert!(stats.stage_ns(Stage::WalFsync) > 0);
    // Appends time both the record build and each commit's tail write.
    assert!(stats.stage(Stage::WalAppend).unwrap().count >= N);
    assert_eq!(stats.stage(Stage::RecordSeal).unwrap().count, N);

    // The JSON rendering carries the whole surface.
    let json = stats.to_json();
    for key in [
        "\"write_path\"",
        "\"wal_fsync\"",
        "\"record_seal\"",
        "\"counters\"",
        "\"compact_sweep_slots\"",
        "\"compact_orphans_collected\"",
        "\"partitions\"",
        "\"p99_ns\"",
    ] {
        assert!(json.contains(key), "stats JSON missing {key}:\n{json}");
    }
}

/// `Off` means off: no histograms, no events — while the logical
/// counters keep counting exactly as always.
#[test]
fn off_level_records_nothing_but_still_counts() {
    let dir = tmpdir("off_level");
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, 4096).observability(ObsLevel::Off);
    let db = SksDb::open(&dir, EngineConfig::new(scheme)).unwrap();
    for k in 0..50u64 {
        db.insert(k, vec![k as u8; 32]).unwrap();
        db.get(k).unwrap();
    }
    db.checkpoint().unwrap();

    let stats = db.stats();
    assert_eq!(stats.level, ObsLevel::Off);
    assert!(stats.ops.iter().all(|(_, h)| h.count == 0));
    assert!(stats.stages.iter().all(|(_, h)| h.count == 0));
    assert!(db.recent_events().is_empty());
    assert!(stats.counters.disguise_ops > 0, "paper counters still run");
    assert!(stats.counters.wal_appends >= 50);
}

/// The no-plaintext telemetry guarantee, attack-sweep style: plant a
/// sentinel value and a distinctive key, drive every op and maintenance
/// pass at `FullTrace`, then grep the full stats JSON and the rendered
/// flight recorder for any trace of them.
#[test]
fn telemetry_leaks_no_key_or_value_plaintext() {
    let dir = tmpdir("no_plaintext");
    const SPY_KEY: u64 = 424_242;
    let sentinel = b"TOP-SECRET-PAYROLL-ROW".to_vec();
    let scheme =
        SchemeConfig::with_capacity(Scheme::Oval, 500_000).observability(ObsLevel::FullTrace);
    let db = SksDb::open(&dir, EngineConfig::new(scheme)).unwrap();

    db.insert(SPY_KEY, sentinel.clone()).unwrap();
    for k in 0..40u64 {
        db.insert(k, sentinel.clone()).unwrap();
    }
    db.get(SPY_KEY).unwrap();
    db.range(0, 50).unwrap();
    for k in (0..40u64).step_by(2) {
        db.delete(k).unwrap();
    }
    db.insert_batch((100..140).map(|k| (k, sentinel.clone())).collect())
        .unwrap();
    db.compact(8).unwrap();
    db.checkpoint().unwrap();

    let events = db.recent_events();
    assert!(!events.is_empty(), "FullTrace records client ops");
    assert!(events.iter().any(|e| e.kind == EventKind::Put));
    let rendered = events
        .iter()
        .map(|e| e.render())
        .collect::<Vec<_>>()
        .join("\n");
    let json = db.stats().to_json();

    for doc in [&rendered, &json] {
        assert!(
            !doc.contains("TOP-SECRET"),
            "value plaintext leaked:\n{doc}"
        );
        assert!(!doc.contains("PAYROLL"), "value plaintext leaked:\n{doc}");
        // The key may appear only as a magnitude field, never does: the
        // recorder carries byte lengths and counts, not key material.
        assert!(
            !doc.contains(&format!("={SPY_KEY}")) && !doc.contains(&format!(": {SPY_KEY}")),
            "key material leaked:\n{doc}"
        );
    }
}

/// `insert_batch` pays one group commit per partition group instead of
/// one per record, and the batch histogram sees it.
#[test]
fn insert_batch_amortises_commits() {
    let dir = tmpdir("batch");
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, 4096)
        .partitions(2)
        .observability(ObsLevel::Histograms);
    let db = SksDb::open(&dir, EngineConfig::new(scheme).sync(SyncPolicy::Always)).unwrap();

    let before = db.snapshot();
    let written = db
        .insert_batch((0..100u64).map(|k| (k, vec![k as u8; 16])).collect())
        .unwrap();
    assert_eq!(written, 100);
    let delta = db.snapshot().delta(&before);
    assert_eq!(delta.wal_appends, 100, "every record hit the log");
    assert!(
        delta.wal_fsyncs <= 2,
        "one commit per partition group, not per record: {} fsyncs",
        delta.wal_fsyncs
    );
    for k in 0..100u64 {
        assert_eq!(db.get(k).unwrap().unwrap(), vec![k as u8; 16]);
    }

    let stats = db.stats();
    let batch = stats.op("batch").expect("batch histogram");
    assert!(batch.count >= 1 && batch.count <= 2);
    // Maintenance events (checkpoint begin/end) are visible from the
    // default-adjacent levels up — no FullTrace needed.
    db.checkpoint().unwrap();
    let kinds: Vec<EventKind> = db.recent_events().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::CheckpointBegin));
    assert!(kinds.contains(&EventKind::CheckpointEnd));
}
