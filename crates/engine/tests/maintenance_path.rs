//! Change-proportional maintenance end to end: incremental checkpoints
//! must stream only dirty partitions, fsync-overlapped sealing must move
//! *when* durability is paid — never what the paper's counters say — and
//! the snapshot-plus-tail replay the memory backend now recovers through
//! must converge on exactly the pre-kill state, deletions included.

use sks_core::{Scheme, SchemeConfig};
use sks_engine::{EngineConfig, RecoveryPath, SksDb};
use sks_storage::{OpSnapshot, SyncPolicy};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_maint_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn rec(k: u64) -> Vec<u8> {
    format!("maintenance-record-{k:05}").into_bytes()
}

/// The tentpole's contract: run the same workload with incremental
/// checkpoints + overlapped fsyncs on, then both off, for every measured
/// scheme. The write phase must agree to the byte — overlap moves the
/// fsync onto the writer thread, not a single counter. The second
/// checkpoint over an unchanged database must stream zero records in
/// incremental mode (and the full live set in rewrite mode). And the
/// post-maintenance read phase must cost identically in every logical
/// counter, physical telemetry masked.
#[test]
fn maintenance_preserves_logical_counters_exactly() {
    for scheme in Scheme::MEASURED {
        let run = |maintained: bool| -> (OpSnapshot, u64, u64, OpSnapshot) {
            let name = format!("pin_{}_{}", scheme.name(), maintained);
            let dir = tmpdir(&name);
            let cfg = SchemeConfig::with_capacity(scheme, 4096).partitions(2);
            let db = SksDb::open(
                &dir,
                EngineConfig::new(cfg)
                    .sync(SyncPolicy::EveryN(4))
                    .overlap(maintained)
                    .incremental_checkpoints(maintained),
            )
            .unwrap();
            // Write phase (keys start at 1: some disguise domains
            // exclude 0).
            for k in 1..200u64 {
                db.insert(k, rec(k)).unwrap();
            }
            db.insert_batch((200..260u64).map(|k| (k, rec(k))).collect())
                .unwrap();
            for k in (1..200u64).step_by(5) {
                db.insert(k, rec(k + 1)).unwrap();
            }
            for k in (1..200u64).step_by(9) {
                db.delete(k).unwrap();
            }
            db.flush().unwrap();
            let write_snap = db.snapshot();
            // First checkpoint: every partition is dirty in both modes.
            let ck1 = db.checkpoint().unwrap();
            // Read-only interlude, then a second checkpoint over the
            // unchanged database.
            for k in (1..260u64).step_by(3) {
                let _ = db.get(k).unwrap();
            }
            let ck2 = db.checkpoint().unwrap();
            // Measured read phase after all maintenance ran.
            let before = db.snapshot();
            for _ in 0..3 {
                for k in (1..260u64).step_by(5) {
                    let _ = db.get(k).unwrap();
                }
                assert!(!db.range(40, 120).unwrap().is_empty());
            }
            let read_delta = db.snapshot().delta(&before);
            drop(db);
            std::fs::remove_dir_all(&dir).ok();
            (write_snap, ck1, ck2, read_delta)
        };
        let (w_on, ck1_on, ck2_on, r_on) = run(true);
        let (w_off, ck1_off, ck2_off, r_off) = run(false);

        // Overlap relocates the fsync, nothing else: the whole write
        // phase agrees without masking a single field.
        assert_eq!(
            w_on,
            w_off,
            "{}: overlapped sealing changed a counter on the write path",
            scheme.name()
        );
        assert!(
            w_on.wal_fsyncs > 0,
            "{}: no group commit ran",
            scheme.name()
        );

        // Both modes stream everything the first time…
        assert!(ck1_on > 0, "{}", scheme.name());
        assert_eq!(ck1_on, ck1_off, "{}", scheme.name());
        // …then incremental mode streams change-proportionally: zero for
        // an unchanged database, while rewrite mode pays the full set
        // again.
        assert_eq!(
            ck2_on,
            0,
            "{}: a clean checkpoint must stream nothing",
            scheme.name()
        );
        assert_eq!(
            ck2_off,
            ck1_off,
            "{}: rewrite mode re-streams the live set",
            scheme.name()
        );

        // Post-maintenance reads: every logical counter identical, only
        // cache/IO telemetry (the skipped compaction's footprint) masked.
        let mut on_masked = r_on;
        on_masked.block_reads = r_off.block_reads;
        on_masked.block_writes = r_off.block_writes;
        on_masked.cache_hits = r_off.cache_hits;
        on_masked.cache_misses = r_off.cache_misses;
        on_masked.cache_evicts = r_off.cache_evicts;
        on_masked.node_cache_hits = r_off.node_cache_hits;
        on_masked.node_cache_misses = r_off.node_cache_misses;
        on_masked.record_cache_hits = r_off.record_cache_hits;
        on_masked.record_cache_misses = r_off.record_cache_misses;
        assert_eq!(
            on_masked,
            r_off,
            "{}: maintenance changed the logical cost model",
            scheme.name()
        );
    }
}

/// The memory backend's recovery image is now snapshot files plus the
/// WAL tail. A kill after a checkpoint — with post-checkpoint inserts
/// *and deletions of snapshotted keys* in the tail — must converge on
/// exactly the pre-kill state: the tail's deletes override the snapshot
/// (the resurrection hazard), and a second checkpoint cycle re-snaps
/// cleanly.
#[test]
fn snapshots_plus_tail_replay_converges_after_kill() {
    let dir = tmpdir("snap_tail");
    let config = || {
        let scheme = SchemeConfig::with_capacity(Scheme::Oval, 4096).partitions(3);
        EngineConfig::new(scheme).sync(SyncPolicy::Always)
    };
    let mut model = std::collections::BTreeMap::new();
    {
        let db = SksDb::open(&dir, config()).unwrap();
        for k in 0..200u64 {
            db.insert(k, rec(k)).unwrap();
            model.insert(k, rec(k));
        }
        for k in (0..200u64).step_by(3) {
            db.delete(k).unwrap();
            model.remove(&k);
        }
        assert!(db.checkpoint().unwrap() > 0, "the cut snapshots live state");
        // Post-checkpoint churn that dies with the process: new keys,
        // overwrites of snapshotted keys, and deletes of snapshotted
        // keys — the tail must win over the snapshot for all three.
        for k in 200..260u64 {
            db.insert(k, rec(k)).unwrap();
            model.insert(k, rec(k));
        }
        for k in (1..200u64).step_by(10) {
            db.insert(k, rec(k + 7)).unwrap();
            model.insert(k, rec(k + 7));
        }
        for k in (2..200u64).step_by(7) {
            if db.delete(k).unwrap().is_some() {
                model.remove(&k);
            } else {
                assert!(!model.contains_key(&k));
            }
        }
        // The kill: drop without checkpoint or flush (SyncPolicy::Always
        // already made every commit durable).
    }
    let db = SksDb::open(&dir, config()).unwrap();
    assert_eq!(db.recovery_report().path, RecoveryPath::FullReplay);
    assert_eq!(db.len(), model.len() as u64);
    for (k, v) in &model {
        assert_eq!(db.get(*k).unwrap().as_ref(), Some(v), "key {k}");
    }
    for k in (0..200u64).step_by(3) {
        if !model.contains_key(&k) {
            assert_eq!(db.get(k).unwrap(), None, "key {k} resurrected");
        }
    }
    db.validate().unwrap();
    // The recovered database checkpoints and survives another reopen.
    db.checkpoint().unwrap();
    drop(db);
    let db = SksDb::open(&dir, config()).unwrap();
    assert_eq!(db.len(), model.len() as u64);
    for (k, v) in model.iter().step_by(7) {
        assert_eq!(db.get(*k).unwrap().as_ref(), Some(v), "key {k}");
    }
    db.validate().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
