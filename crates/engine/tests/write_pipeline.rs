//! The pipelined write path end to end: batch-sealed group commits,
//! the double-buffered log writer and write-behind node re-sealing must
//! move *physical* work only — every logical paper counter byte-identical
//! with the pipeline on or off, for every measured scheme — and the
//! plaintext staged in memory (batch bodies, deferred nodes) must never
//! reach the medium or the flight recorder. Plus the sorted-ingest
//! `bulk_load` fast path riding the same machinery.

use sks_core::{ObsLevel, Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, SksDb};
use sks_storage::{OpSnapshot, SyncPolicy};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_pipe_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn rec(k: u64) -> Vec<u8> {
    format!("pipeline-record-{k:05}").into_bytes()
}

/// The tentpole's contract, engine-wide: run one mixed workload twice —
/// batching + double-buffering + write-behind all on, then all off — and
/// demand byte-identical logical counters for every measured scheme.
/// Only the physical telemetry (block I/O, cache traffic, reseals, the
/// batch tally) may move; that difference *is* the optimisation.
#[test]
fn write_pipeline_preserves_logical_counters_exactly() {
    for scheme in Scheme::MEASURED {
        let run = |pipelined: bool| -> OpSnapshot {
            let name = format!("pin_{}_{}", scheme.name(), pipelined);
            let dir = tmpdir(&name);
            let cfg = SchemeConfig::with_capacity(scheme, 4096)
                .partitions(2)
                .seal_batch(pipelined)
                .write_behind(if pipelined { 8 } else { 0 });
            let db = SksDb::open(&dir, EngineConfig::new(cfg).sync(SyncPolicy::EveryN(4))).unwrap();
            // Keys start at 1: some disguise domains exclude 0.
            for k in 1..200u64 {
                db.insert(k, rec(k)).unwrap();
            }
            db.insert_batch((200..260u64).map(|k| (k, rec(k))).collect())
                .unwrap();
            for k in (1..200u64).step_by(5) {
                db.insert(k, rec(k + 1)).unwrap();
            }
            for k in (1..200u64).step_by(9) {
                db.delete(k).unwrap();
            }
            for k in (1..260u64).step_by(3) {
                let _ = db.get(k).unwrap();
            }
            assert!(!db.range(40, 120).unwrap().is_empty());
            db.flush().unwrap();
            let snap = db.snapshot();
            drop(db);
            std::fs::remove_dir_all(&dir).ok();
            snap
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(off.wal_sealed_batches, 0, "{}", scheme.name());
        assert!(
            on.wal_sealed_batches > 0,
            "{}: batch sealing never engaged",
            scheme.name()
        );
        assert!(
            on.node_writes_deferred > 0,
            "{}: write-behind never engaged",
            scheme.name()
        );
        // Mask exactly the physical fields; everything else — disguise
        // ops, key/pointer/page encipherments, record seals, WAL appends,
        // logical WAL bytes, fsync cadence — must agree to the byte.
        let mut on_masked = on;
        // `allocs` is physical too: batch frames amortise the per-record
        // header, so the batched log consumes fewer WAL blocks.
        on_masked.allocs = off.allocs;
        on_masked.block_reads = off.block_reads;
        on_masked.block_writes = off.block_writes;
        on_masked.cache_hits = off.cache_hits;
        on_masked.cache_misses = off.cache_misses;
        on_masked.cache_evicts = off.cache_evicts;
        on_masked.node_cache_hits = off.node_cache_hits;
        on_masked.node_cache_misses = off.node_cache_misses;
        on_masked.node_writes_deferred = off.node_writes_deferred;
        on_masked.node_reseals = off.node_reseals;
        on_masked.wal_sealed_batches = off.wal_sealed_batches;
        assert_eq!(
            on_masked,
            off,
            "{}: the pipeline changed the logical cost model",
            scheme.name()
        );
    }
}

/// Attack sweep over the staging windows the pipeline introduces: while
/// record plaintext sits in the batch-staging buffer and dirty nodes sit
/// unsealed in the write-behind set, nothing readable may exist on the
/// medium — and nothing readable may ever enter the flight recorder or
/// the stats surface, before or after the seals land.
#[test]
fn staged_plaintext_never_reaches_medium_or_recorder() {
    let dir = tmpdir("staged_leak");
    let needle = b"EXTREMELY-SECRET-STAGED-ROW";
    let scan_medium = |dir: &std::path::Path| {
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                let raw = std::fs::read(&path).unwrap();
                assert!(
                    !raw.windows(needle.len()).any(|w| w == &needle[..]),
                    "staged plaintext reached the medium: {}",
                    path.display()
                );
            }
        }
    };

    let cfg = SchemeConfig::with_capacity(Scheme::Oval, 4096)
        .partitions(2)
        .write_behind(64)
        .backend(StorageBackend::File {
            dir: dir.clone(),
            pool_pages: 64,
        })
        .observability(ObsLevel::FullTrace);
    let db = SksDb::open(&dir, EngineConfig::new(cfg).sync(SyncPolicy::EveryN(8))).unwrap();

    // Group commits stage multi-record plaintext bodies; the small fsync
    // period leaves committed-but-unsynced tails; write-behind holds the
    // mutated nodes unsealed. Scan the medium in exactly that state.
    db.insert_batch((0..60u64).map(|k| (k, needle.to_vec())).collect())
        .unwrap();
    for k in 60..90u64 {
        db.insert(k, needle.to_vec()).unwrap();
    }
    scan_medium(&dir);

    // Seal everything (deferred nodes included) and scan again — the
    // sealed image must be just as silent.
    db.flush().unwrap();
    db.checkpoint().unwrap();
    scan_medium(&dir);

    // The telemetry surfaces never carry the plaintext either.
    let rendered = db
        .recent_events()
        .iter()
        .map(|e| e.render())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(!rendered.is_empty(), "FullTrace records the workload");
    let json = db.stats().to_json();
    for doc in [&rendered, &json] {
        assert!(
            !doc.contains("EXTREMELY-SECRET") && !doc.contains("STAGED-ROW"),
            "staged plaintext leaked into telemetry:\n{doc}"
        );
    }

    // And the data is all there, readable, through the sealed path.
    for k in 0..90u64 {
        assert_eq!(db.get(k).unwrap().unwrap(), needle.to_vec());
    }
    db.validate().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// `bulk_load` end to end on the file backend: sorted ingest pays one
/// group commit per partition, builds every tree bottom-up, and the
/// result reads, validates, checkpoints and reopens like any other
/// database.
#[test]
fn bulk_load_sorted_ingest_end_to_end() {
    let dir = tmpdir("bulk_load");
    let config = || {
        let scheme = SchemeConfig::with_capacity(Scheme::Oval, 8192)
            .partitions(3)
            .backend(StorageBackend::File {
                dir: dir.clone(),
                pool_pages: 128,
            });
        EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32))
    };
    let db = SksDb::open(&dir, config()).unwrap();
    let items: Vec<(u64, Vec<u8>)> = (0..1_200u64).map(|k| (k * 3, rec(k))).collect();

    let before = db.snapshot();
    assert_eq!(db.bulk_load(items.clone()).unwrap(), 1_200);
    let delta = db.snapshot().delta(&before);
    assert_eq!(delta.wal_appends, 1_200, "every record hit the log");
    assert!(
        delta.wal_fsyncs <= 3,
        "one group commit per partition, not per record: {} fsyncs",
        delta.wal_fsyncs
    );

    assert_eq!(db.len(), 1_200);
    for (k, v) in &items {
        assert_eq!(db.get(*k).unwrap().unwrap(), *v, "key {k}");
    }
    assert_eq!(db.get(1).unwrap(), None);
    let span = db.range(300, 600).unwrap();
    assert_eq!(span.len(), 101, "lo..=hi over every third key");
    assert!(span.windows(2).all(|w| w[0].0 < w[1].0));
    db.validate().unwrap();

    // Mutations compose on top of a bulk-built tree.
    db.insert(1, b"inserted-after".to_vec()).unwrap();
    db.delete(0).unwrap();
    assert_eq!(db.get(1).unwrap().unwrap(), b"inserted-after".to_vec());
    assert_eq!(db.get(0).unwrap(), None);

    db.checkpoint().unwrap();
    drop(db);
    let db = SksDb::open(&dir, config()).unwrap();
    assert_eq!(db.len(), 1_200);
    for (k, v) in items.iter().step_by(17) {
        if *k != 0 {
            assert_eq!(db.get(*k).unwrap().unwrap(), *v);
        }
    }
    db.validate().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash right after `bulk_load` (no flush, no checkpoint) loses no
/// committed group: the load's WAL records replay into the reopened
/// partitions.
#[test]
fn bulk_load_replays_from_the_log_after_a_crash() {
    let dir = tmpdir("bulk_crash");
    let config = || {
        let scheme = SchemeConfig::with_capacity(Scheme::Oval, 8192)
            .partitions(2)
            .backend(StorageBackend::File {
                dir: dir.clone(),
                pool_pages: 64,
            });
        EngineConfig::new(scheme).sync(SyncPolicy::Always)
    };
    {
        let db = SksDb::open(&dir, config()).unwrap();
        db.bulk_load((0..500u64).map(|k| (k, rec(k))).collect())
            .unwrap();
        // Simulated kill: drop with dirty pages still pinned.
    }
    let db = SksDb::open(&dir, config()).unwrap();
    assert_eq!(db.recovery_report().records_replayed, 500);
    assert_eq!(db.len(), 500);
    for k in (0..500u64).step_by(11) {
        assert_eq!(db.get(k).unwrap().unwrap(), rec(k));
    }
    db.validate().unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// `bulk_load` fails closed: unsorted input and non-empty databases are
/// rejected before anything — log or trees — is touched.
#[test]
fn bulk_load_rejects_unsorted_and_non_empty() {
    let dir = tmpdir("bulk_reject");
    let db = SksDb::open(
        &dir,
        EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, 4096)),
    )
    .unwrap();

    let before = db.snapshot();
    let err = db
        .bulk_load(vec![(5, rec(5)), (5, rec(5))])
        .unwrap_err()
        .to_string();
    assert!(err.contains("strictly ascending"), "{err}");
    let err = db
        .bulk_load(vec![(9, rec(9)), (3, rec(3))])
        .unwrap_err()
        .to_string();
    assert!(err.contains("strictly ascending"), "{err}");
    let delta = db.snapshot().delta(&before);
    assert_eq!(delta.wal_appends, 0, "rejection must not touch the log");
    assert_eq!(db.len(), 0);

    db.insert(7, rec(7)).unwrap();
    let err = db
        .bulk_load(vec![(1, rec(1)), (2, rec(2))])
        .unwrap_err()
        .to_string();
    assert!(err.contains("empty"), "{err}");
    assert_eq!(db.len(), 1, "failed load changed nothing");
    assert_eq!(db.get(7).unwrap().unwrap(), rec(7));
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
